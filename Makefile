# Developer entry points.  Everything runs from a plain clone — no
# install needed; PYTHONPATH picks up the src/ layout.

PYTHON      ?= python
PYTHONPATH  := src
export PYTHONPATH

.PHONY: test bench-smoke bench-stream bench docs-check check

## Full test suite (tier-1 gate; fast).
test:
	$(PYTHON) -m pytest -x -q

## Scalability + streaming gates: sparse-vs-python backend speedup
## (>= 5x at the largest planted size) and incremental-engine speedup
## over snapshot recompute (>= 3x at the largest event count), both
## with answer-parity checks.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_scalability.py benchmarks/bench_streaming.py -q

## Streaming benchmark only — incremental engine vs naive recompute,
## alert parity and the >= 3x speedup gate.
bench-stream:
	$(PYTHON) -m pytest benchmarks/bench_streaming.py -q

## Every table/figure reproduction benchmark (slow; writes rendered
## artefacts to benchmarks/output/).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Documentation examples must execute: doctest over the README's
## code blocks fails the build on any broken example.
docs-check:
	$(PYTHON) -m doctest README.md
	@echo "README examples OK"

## Everything a PR should pass.
check: test docs-check bench-smoke
