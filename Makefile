# Developer entry points.  Everything runs from a plain clone — no
# install needed; PYTHONPATH picks up the src/ layout.

PYTHON      ?= python
PYTHONPATH  := src
export PYTHONPATH

.PHONY: test coverage lint lint-invariants bench-smoke bench-stream bench-batch bench-service bench-sessions bench-scale serve-smoke session-smoke obs-smoke scale-smoke bench docs-check check

## Full test suite (tier-1 gate; fast).
test:
	$(PYTHON) -m pytest -x -q

## Minimum line coverage enforced in CI (pytest-cov; see `make coverage`).
COV_MIN ?= 88

## Test suite under pytest-cov with the coverage floor CI enforces.
## Requires pytest-cov (`pip install pytest-cov`); plain `make test`
## stays dependency-light.
coverage:
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null || \
		{ echo "pytest-cov is not installed: pip install pytest-cov"; exit 1; }
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term-missing \
		--cov-fail-under=$(COV_MIN)

## Repo-specific invariant checker (src/repro/lintkit): AST rules for
## the concurrency/determinism contracts past PRs fixed by hand —
## blocking calls on the event loop, expensive builds under a lock,
## unrestored signal swaps, leaked shm mappings, nondeterministic
## canonical payloads, backend string ladders.  Stdlib-only; always
## runnable from a plain clone.
lint-invariants:
	$(PYTHON) -m repro.lintkit src/repro

## Lint + type gates: the invariant checker above, ruff
## (runtime-correctness rule tier, see ruff.toml) over the library,
## and a `mypy --strict` pass over the engine layer (the dispatch seam
## every other layer builds on), the service layer (the network-facing
## surface, including the multi-tenant session module
## service/sessions.py), the observability layer (repro/obs/), the
## batch layer (resume/dedup correctness rides on its annotations)
## and the lintkit itself (the checker must clear the strictest bar
## it enforces on others).  Requires ruff + mypy
## (`pip install ruff mypy`); plain `make test` stays dependency-light.
lint: lint-invariants
	@$(PYTHON) -c "import ruff" 2>/dev/null || \
		{ echo "ruff is not installed: pip install ruff"; exit 1; }
	$(PYTHON) -m ruff check src examples
	@$(PYTHON) -c "import mypy" 2>/dev/null || \
		{ echo "mypy is not installed: pip install mypy"; exit 1; }
	$(PYTHON) -m mypy --strict src/repro/engine src/repro/service src/repro/obs src/repro/batch src/repro/lintkit

## Scalability + streaming + batch + service + session gates:
## sparse-vs-python backend speedup (>= 5x at the largest planted
## size), incremental-engine speedup over snapshot recompute (>= 3x at
## the largest event count), batch-service speedup over the per-query
## serial loop (>= 2x on a 16-query sweep), warm query-service
## throughput over a per-query CLI subprocess loop (>= 5x on a
## 32-query sweep), and 8-tenant session throughput over 8 naive
## replays (>= 3x events/sec) — all with answer-parity checks.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_scalability.py benchmarks/bench_streaming.py benchmarks/bench_batch.py benchmarks/bench_service.py benchmarks/bench_sessions.py benchmarks/bench_service_scale.py -q

## Streaming benchmark only — incremental engine vs naive recompute,
## alert parity and the >= 3x speedup gate.
bench-stream:
	$(PYTHON) -m pytest benchmarks/bench_streaming.py -q

## Batch-service benchmark only — shared-prep executor vs per-query
## serial loop: >= 2x speedup, byte-identical results, cache-hit
## resubmission; writes benchmarks/output/batch_results.jsonl.
bench-batch:
	$(PYTHON) -m pytest benchmarks/bench_batch.py -q

## Query-service benchmark only — resident `repro serve` vs per-query
## CLI subprocess loop: >= 5x warm-cache throughput, envelopes
## byte-identical to `repro --json`.
bench-service:
	$(PYTHON) -m pytest benchmarks/bench_service.py -q

## Service smoke: spawn a real server, run the client round-trip tour
## (upload, solve, cached re-solve, batch, stream replay, /metrics).
serve-smoke:
	$(PYTHON) examples/service_client.py

## Session benchmark only — K live tenants vs K naive replays:
## >= 3x events/sec, per-tenant alert parity, charge accounting.
bench-sessions:
	$(PYTHON) -m pytest benchmarks/bench_sessions.py -q

## Session smoke: spawn a real server, run the live-session tour
## (create, event batches, cursor + long-poll alerts, info, close).
session-smoke:
	$(PYTHON) examples/stream_session_client.py

## Cluster smoke: spawn `repro serve --workers 2`, walk the sharded
## topology (owner routing, shared-memory attach, session sid routing,
## merged /metrics), check byte-identity against --workers 1 and clean
## /dev/shm teardown on SIGTERM.
scale-smoke:
	$(PYTHON) examples/scale_smoke.py

## Multi-worker scale-out benchmark only — concurrent mixed traffic
## against 1 process vs a 4-worker cluster: sustained-throughput floor
## (CPU-count-aware), p95 report, byte-identical probe envelopes,
## prepare-once-per-host counters, clean segment teardown.
bench-scale:
	$(PYTHON) -m pytest benchmarks/bench_service_scale.py -q

## Observability smoke: spawn a real server, assert X-Request-Id
## echo/generation, traced per-phase solve timings, and a valid
## Prometheus /metrics exposition with non-zero phase counters.
obs-smoke:
	$(PYTHON) examples/obs_tour.py

## Every table/figure reproduction benchmark (slow; writes rendered
## artefacts to benchmarks/output/).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Documentation examples must execute: doctest over the README's
## code blocks (and the doctested custom-backend example) fails the
## build on any broken example.
docs-check:
	$(PYTHON) -m doctest README.md
	$(PYTHON) -m doctest examples/custom_backend.py
	@echo "README + example doctests OK"

## Everything a PR should pass.
check: test docs-check bench-smoke
