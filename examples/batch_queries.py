"""Serve a mixed batch of DCS queries through the batch service layer.

The paper's studies are sweeps — many (dataset, measure, backend, k)
combinations over shared inputs.  This script issues such a sweep the
way the service layer receives it: a flat list of typed queries, each
naming its own dataset and parameters.  The executor plans them into a
deduplicated work DAG (each difference graph assembled once), fans the
solves out, memoises the answers, and the script shows all three
effects: the shared-prep plan, the speedup over resolving each query
end-to-end on its own, and the free resubmission from the cache.

Run with::

    python examples/batch_queries.py
"""

from __future__ import annotations

import time

from repro.batch import BatchExecutor, BatchPlan, BatchQuery, GraphSource
from repro.batch.executor import execute_payload
from repro.datasets.registry import build_named

SCALE = 0.25
DATASETS = (
    "Book/-/Interest-Social",
    "Book/-/Social-Interest",
    "Movie/-/Interest-Social",
    "Movie/-/Social-Interest",
)


def build_queries() -> list:
    """A 16-query sweep: both measures x both backends x four datasets."""
    queries = []
    for dataset in DATASETS:
        source = GraphSource.from_registry(dataset, SCALE)
        for tag, kind, backend in (
            ("ad-py", "dcsad", "python"),
            ("ad-sp", "dcsad", "sparse"),
            ("ga-sp", "dcsga", "sparse"),
            ("ga-py", "dcsga", "python"),
        ):
            queries.append(
                BatchQuery(
                    kind=kind,
                    source=source,
                    backend=backend,
                    qid=f"{dataset.split('/')[0]}-{dataset.split('/')[-1]}|{tag}",
                )
            )
    return queries


def main() -> None:
    queries = build_queries()
    print(BatchPlan(queries).describe())
    print()

    # The pre-batch baseline: every query resolved end-to-end on its own.
    start = time.perf_counter()
    for query in queries:
        gd = build_named(query.source.dataset, scale=query.source.scale).graph
        execute_payload(query.kind, query.solve_params(), gd)
    serial_seconds = time.perf_counter() - start

    executor = BatchExecutor(workers=4)
    start = time.perf_counter()
    results = executor.run(queries)
    batch_seconds = time.perf_counter() - start

    print(f"serial loop : {serial_seconds:.3f}s  (16 preps, 16 solves)")
    print(f"batched     : {batch_seconds:.3f}s  ({executor.stats.summary()})")
    print(f"speedup     : {serial_seconds / batch_seconds:.2f}x")
    print()

    for result in results[:4]:
        # Every graph query returns the same typed envelope: the
        # headline score is always under "density", whatever the measure.
        answer = result.payload
        print(
            f"  {result.qid:38s} {result.status:5s} "
            f"{answer['measure']} {answer['density']:.3f}"
        )
    print(f"  ... and {len(results) - 4} more")
    print()

    start = time.perf_counter()
    resubmitted = executor.run(queries)
    resubmit_seconds = time.perf_counter() - start
    assert all(r.cached for r in resubmitted)
    print(
        f"resubmission: {resubmit_seconds:.3f}s — "
        f"{executor.stats.cache_hits}/16 served from the result cache"
    )


if __name__ == "__main__":
    main()
