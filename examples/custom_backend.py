"""Register a custom solver backend — the engine's extension point.

The engine registry (:mod:`repro.engine`) is how new compute backends
plug into *every* layer at once: subclass
:class:`~repro.engine.SolverBackend`, override the capabilities you
provide, register the instance, and the core solvers, the CLI
(``--backend``), batch query records and the streaming engine all
accept the new name — no solver edits anywhere.

This example builds a toy **instrumented** backend: it delegates the
actual work to the built-in pure-Python backend but counts every
capability call, the kind of wrapper you would use to profile which
kernels a workload actually exercises.

The module is doctested (``python -m doctest examples/custom_backend.py``
runs in CI's docs check)::

    >>> backend = CountingBackend()
    >>> _ = register_backend(backend)

    A difference graph with an emerging triangle:

    >>> g1 = Graph.from_edges([("a", "b", 1.0)], vertices="abcd")
    >>> g2 = Graph.from_edges(
    ...     [("a", "b", 3.0), ("b", "c", 2.0), ("a", "c", 2.5)],
    ...     vertices="d",
    ... )
    >>> gd = difference_graph(g1, g2)

    The registered name now works everywhere a backend is accepted —
    here through the top-level DCSAD solver (which peels both GD and
    GD+) and the DCSGA pipeline:

    >>> sorted(dcs_greedy(gd, backend="counting").subset)
    ['a', 'b', 'c']
    >>> result = new_sea(gd.positive_part(), backend="counting")
    >>> sorted(result.support)
    ['a', 'b', 'c']
    >>> backend.counts["peel"]
    2
    >>> backend.counts["new_sea"]
    1

    Unknown names stay loud (the registry raises the standard
    ``UnknownBackendError``, a ``ValueError``):

    >>> dcs_greedy(gd, backend="no-such-backend")
    Traceback (most recent call last):
        ...
    repro.exceptions.UnknownBackendError: unknown backend 'no-such-backend'; registered backends: counting, heap, native, numba, python, segment_tree, sparse

    ...and capabilities the backend does not override raise a clear
    capability error instead of silently misbehaving:

    >>> from repro.engine import get_backend
    >>> get_backend("segment_tree").seacd(gd, {"a": 1.0})
    Traceback (most recent call last):
        ...
    repro.exceptions.BackendCapabilityError: backend 'segment_tree' does not implement 'seacd'

    Clean up so repeated doctest runs start fresh:

    >>> _ = unregister_backend("counting")

Run as a script for a narrated version::

    python examples/custom_backend.py
"""

from __future__ import annotations

from collections import Counter

from repro.core.dcsad import dcs_greedy
from repro.core.difference import difference_graph
from repro.core.newsea import new_sea
from repro.engine import (
    SolverBackend,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.graph.graph import Graph


class CountingBackend(SolverBackend):
    """Delegate every capability to ``python``, counting the calls."""

    name = "counting"

    def __init__(self) -> None:
        self.counts: Counter = Counter()
        self._inner = get_backend("python")

    def peel(self, graph, adjacency=None):
        self.counts["peel"] += 1
        return self._inner.peel(graph, adjacency=adjacency)

    def seacd(self, graph, x0, **kwargs):
        self.counts["seacd"] += 1
        return self._inner.seacd(graph, x0, **kwargs)

    def refine(self, graph, x0, **kwargs):
        self.counts["refine"] += 1
        return self._inner.refine(graph, x0, **kwargs)

    def new_sea(self, gd_plus, **kwargs):
        self.counts["new_sea"] += 1
        return self._inner.new_sea(gd_plus, **kwargs)

    def vertex_solver(self, gd_plus, **kwargs):
        self.counts["vertex_solver"] += 1
        return self._inner.vertex_solver(gd_plus, **kwargs)

    def initialization_plan(self, gd_plus, adjacency=None):
        self.counts["initialization_plan"] += 1
        return self._inner.initialization_plan(gd_plus, adjacency=adjacency)

    def replicator(self, graph, x0, **kwargs):
        self.counts["replicator"] += 1
        return self._inner.replicator(graph, x0, **kwargs)

    def mean_graph(self, graphs):
        self.counts["mean_graph"] += 1
        return self._inner.mean_graph(graphs)


def main() -> None:
    backend = CountingBackend()
    register_backend(backend)
    try:
        g1 = Graph.from_edges([("a", "b", 1.0)], vertices="abcd")
        g2 = Graph.from_edges(
            [("a", "b", 3.0), ("b", "c", 2.0), ("a", "c", 2.5)],
            vertices="d",
        )
        gd = difference_graph(g1, g2)

        ad = dcs_greedy(gd, backend="counting")
        ga = new_sea(gd.positive_part(), backend="counting")
        print(f"DCSAD subset : {sorted(map(str, ad.subset))}")
        print(f"DCSGA support: {sorted(map(str, ga.support))}")
        print("capability calls through the instrumented backend:")
        for capability, count in sorted(backend.counts.items()):
            print(f"  {capability:20s} {count}")
    finally:
        unregister_backend("counting")


if __name__ == "__main__":
    main()
