"""Find emerging and disappearing co-author groups in a two-era network.

Reproduces the Section VI-B workflow on the synthetic DBLP substitute:
mine both difference-graph orientations under both density measures and
report the paper's Table IV statistics for each answer, then check the
answers against the planted ground truth.

Run with::

    python examples/emerging_communities.py
"""

from __future__ import annotations

from repro.analysis.metrics import (
    affinity,
    average_degree,
    edge_density,
)
from repro.analysis.reporting import Table, format_ratio, yes_no
from repro.core.dcsad import dcs_greedy
from repro.core.difference import (
    DBLP_DISCRETE,
    difference_graph,
    discrete_difference_graph,
    flip,
)
from repro.core.newsea import new_sea
from repro.datasets.synthetic_dblp import coauthor_snapshots
from repro.graph.cliques import is_positive_clique


def main() -> None:
    dataset = coauthor_snapshots(n_authors=600, n_communities=30, seed=3)
    weighted = difference_graph(dataset.g1, dataset.g2)
    discrete = discrete_difference_graph(dataset.g1, dataset.g2, DBLP_DISCRETE)

    table = Table(
        title="Co-author groups by setting / GD type / density measure",
        columns=[
            "Setting",
            "GD Type",
            "Density",
            "#Authors",
            "PosClique?",
            "AvgDeg diff",
            "Approx ratio",
            "Affinity diff",
            "EdgeDens diff",
        ],
    )

    planted = {
        "Emerging": dataset.emerging_groups,
        "Disappearing": dataset.disappearing_groups,
    }
    recovered = {}
    for setting, base in (("Weighted", weighted), ("Discrete", discrete)):
        for gd_type in ("Emerging", "Disappearing"):
            gd = base if gd_type == "Emerging" else flip(base)
            ad = dcs_greedy(gd)
            ga = new_sea(gd.positive_part())
            for measure, subset, extra in (
                ("Average Degree", ad.subset, format_ratio(ad.ratio_bound)),
                ("Graph Affinity", ga.support, "-"),
            ):
                table.add_row(
                    [
                        setting,
                        gd_type,
                        measure,
                        len(subset),
                        yes_no(is_positive_clique(gd, subset)),
                        f"{average_degree(gd, subset):.2f}",
                        extra,
                        f"{affinity(gd, ga.x):.2f}"
                        if measure == "Graph Affinity"
                        else "-",
                        f"{edge_density(gd, subset):.3f}",
                    ]
                )
                recovered[(setting, gd_type, measure)] = subset

    print(table.render())

    print("\nGround-truth check (Weighted / Graph Affinity answers):")
    for gd_type, groups in planted.items():
        subset = recovered[("Weighted", gd_type, "Graph Affinity")]
        hits = [g for g in groups if subset <= g or g <= subset]
        status = "matches a planted group" if hits else "no planted match"
        print(f"  {gd_type:13s}: |S| = {len(subset):2d} -> {status}")


if __name__ == "__main__":
    main()
