"""Quickstart: mine a density contrast subgraph from two small graphs.

Builds the two-snapshot toy from the README, runs both solvers and
prints the answers with their quality certificates.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Graph, dcs_average_degree, dcs_graph_affinity
from repro.analysis.metrics import (
    affinity_contrast,
    average_degree_contrast,
    edge_density_contrast,
)
from repro.analysis.reporting import format_embedding


def build_pair():
    """Two collaboration snapshots over the same six people.

    Between the snapshots, {ana, bob, cho} started working together
    intensively while {dee, eli} drifted apart.
    """
    people = ["ana", "bob", "cho", "dee", "eli", "fay"]
    g1 = Graph.from_edges(
        [
            ("ana", "bob", 1.0),
            ("dee", "eli", 4.0),
            ("eli", "fay", 1.0),
        ],
        vertices=people,
    )
    g2 = Graph.from_edges(
        [
            ("ana", "bob", 4.0),
            ("bob", "cho", 3.0),
            ("ana", "cho", 3.5),
            ("dee", "eli", 1.0),
            ("eli", "fay", 1.0),
        ],
        vertices=people,
    )
    return g1, g2


def main() -> None:
    g1, g2 = build_pair()

    print("=== DCSAD: average-degree contrast (DCSGreedy) ===")
    ad = dcs_average_degree(g1, g2)
    print(f"subset            : {sorted(ad.subset)}")
    print(f"density contrast  : {ad.density:.3f}")
    print(f"ratio certificate : optimum <= {ad.ratio_bound:.2f} x achieved")
    print(
        "check via the pair : "
        f"{average_degree_contrast(g1, g2, ad.subset):.3f}"
    )

    print("\n=== DCSGA: graph-affinity contrast (NewSEA) ===")
    ga = dcs_graph_affinity(g1, g2)
    print(f"embedding         : {format_embedding(ga.x.items())}")
    print(f"affinity contrast : {ga.objective:.3f}")
    print(f"positive clique?  : {ga.is_positive_clique}")
    print(
        "edge-density gap  : "
        f"{edge_density_contrast(g1, g2, ga.support):.3f}"
    )
    print(
        "affinity via pair : "
        f"{affinity_contrast(g1, g2, ga.x):.3f}"
    )

    print("\n=== The other direction: what cooled down? ===")
    fading = dcs_average_degree(g2, g1)  # swap the arguments
    print(f"subset            : {sorted(fading.subset)}")
    print(f"density contrast  : {fading.density:.3f}")


if __name__ == "__main__":
    main()
