"""Drive a live stream session on the DCS service, end to end.

Where ``examples/service_client.py`` tours the request/response routes
(solve, batch, replay), this tour exercises the *session* layer: a
resident, stateful stream engine per tenant that survives across
requests.  The client

1. creates a session over an explicit vertex universe,
2. appends event batches — each POST returns the alerts those steps
   fired,
3. polls ``/alerts`` with a cursor (and once with ``wait=`` long-poll),
4. reads the session's ranking and the ``/metrics`` sessions block,
5. closes the session and shows that its id is gone (404).

Two modes, same as the service client:

* **self-contained demo** (default): spawns ``repro serve`` on an
  ephemeral port and shuts it down afterwards.
* **client mode** (``--url http://host:port``): the same tour against a
  server you already started::

      python -m repro serve --port 8765 &
      python examples/stream_session_client.py --url http://127.0.0.1:8765

Run with::

    python examples/stream_session_client.py
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import urllib.error
import urllib.request


def call(base: str, method: str, path: str, body=None, timeout=120):
    """One JSON round-trip; returns (status, payload)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{base}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


#: Collaboration burst: (ada, bob) spikes at t=5..6 over a quiet base.
def batches():
    quiet = [
        {"t": t, "u": "ada", "v": "bob", "w": 1.0} for t in range(5)
    ] + [{"t": t, "u": "bob", "v": "cy", "w": 1.0} for t in range(5)]
    spike = [
        {"t": 5, "u": "ada", "v": "bob", "w": 6.0},
        {"t": 5, "u": "ada", "v": "cy", "w": 4.0},
        {"t": 6, "u": "ada", "v": "bob", "w": 6.0},
    ]
    calm = [{"t": 8, "u": "bob", "v": "cy", "w": 1.0}]
    return [sorted(quiet, key=lambda r: r["t"]), spike, calm]


def tour(base: str) -> None:
    status, health = call(base, "GET", "/healthz")
    print(f"healthz          -> {status} sessions={health['sessions']}")

    status, created = call(base, "POST", "/v1/stream/sessions", {
        "universe": ["ada", "bob", "cy", "dee"],
        "window": 3,
        "threshold": 2.0,
        "policy": "exact",
        "k": 2,
    })
    sid = created["session"]
    print(f"create           -> {status} session={sid}")

    cursor = 0
    for index, events in enumerate(batches()):
        body = {"events": events}
        if index == len(batches()) - 1:
            body["advance_to"] = 8  # close the steps behind the calm
        status, reply = call(
            base, "POST", f"/v1/stream/sessions/{sid}/events", body
        )
        print(
            f"batch {index}          -> {status} step={reply['step']} "
            f"alerts={[a['step'] for a in reply['alerts']]}"
        )

    status, page = call(
        base, "GET", f"/v1/stream/sessions/{sid}/alerts?cursor={cursor}"
    )
    for alert in page["alerts"]:
        print(
            f"alert            -> step={alert['step']} "
            f"score={alert['score']:.2f} subset={alert['subset']}"
        )
    cursor = page["cursor"]
    # Nothing new: a long-poll waits briefly, then returns empty.
    status, page = call(
        base, "GET",
        f"/v1/stream/sessions/{sid}/alerts?cursor={cursor}&wait=0.2",
    )
    print(f"long-poll        -> {status} new={len(page['alerts'])}")

    status, info = call(base, "GET", f"/v1/stream/sessions/{sid}")
    print(
        f"info             -> {status} step={info['step']} "
        f"events={info['events']} topk={info.get('topk', [])}"
    )

    status, metrics = call(base, "GET", "/metrics")
    block = metrics["sessions"]
    print(
        f"metrics          -> {status} active={block['active']} "
        f"events={block['events']} alerts={block['alerts']} "
        f"charged_cells={block['charged_cells']}"
    )

    status, closed = call(base, "DELETE", f"/v1/stream/sessions/{sid}")
    final = closed["final"]
    print(
        f"close            -> {status} events={final['events']} "
        f"alerts={final['alerts']}"
    )
    status, _ = call(base, "GET", f"/v1/stream/sessions/{sid}")
    print(f"after close      -> {status} (expected 404)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--url", default=None,
        help="an already-running server (default: spawn one)",
    )
    args = parser.parse_args()
    if args.url:
        tour(args.url.rstrip("/"))
        return 0
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--scale", "0.0"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        banner = server.stdout.readline()
        match = re.search(r"http://[\d.]+:\d+", banner)
        if not match:
            raise SystemExit(f"server did not start: {banner!r}")
        print(f"spawned {match.group(0)}")
        tour(match.group(0))
    finally:
        server.terminate()
        server.wait(timeout=10)
    return 0


if __name__ == "__main__":
    sys.exit(main())
