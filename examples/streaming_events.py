"""Serve DCS anomaly alerts over a live event stream, incrementally.

The event-native upgrade of ``streaming_monitor.py``: instead of
handing the monitor a full snapshot per step, the network emits sparse
``EdgeEvent`` observations and the incremental engine maintains the
expectation window, the difference graph, and the DCS answer by deltas.
The script runs the engine and the naive per-step snapshot recompute on
the same planted-burst workload, checks they raise identical alerts,
and reports the speedup and the engine's internal work counters.

Run with::

    python examples/streaming_events.py
"""

from __future__ import annotations

import time

from repro.datasets.streaming import burst_event_stream
from repro.stream import StreamingDCSEngine, alert_keys, snapshot_recompute

THRESHOLD = 2.0


def main() -> None:
    stream = burst_event_stream(
        n_vertices=400,
        n_steps=36,
        base_p=0.05,
        reobserve_p=0.004,
        anomaly_size=7,
        anomaly_start=20,
        anomaly_duration=3,
        seed=13,
    )
    print(
        f"workload: {stream.n_events} events over {stream.n_steps} steps, "
        f"{len(stream.universe)} nodes; planted burst of "
        f"{len(stream.anomaly_members)} nodes at steps "
        f"{stream.anomaly_start}..{stream.anomaly_end - 1}\n"
    )

    engine = StreamingDCSEngine(
        stream.universe, window=5, min_score=1e-6, policy="gated"
    )
    start = time.perf_counter()
    alerts = engine.run(stream.log.events, n_steps=stream.n_steps)
    t_engine = time.perf_counter() - start

    start = time.perf_counter()
    naive = snapshot_recompute(
        stream.log.events,
        stream.universe,
        n_steps=stream.n_steps,
        window=5,
        min_score=1e-6,
    )
    t_naive = time.perf_counter() - start

    print("step  score    source     flagged")
    for alert in alerts:
        if not alert.exceeds(THRESHOLD):
            continue
        members = " ".join(sorted(map(str, alert.subset))[:7])
        live = "<- burst live" if stream.is_anomalous_step(alert.step) else ""
        print(
            f"{alert.step:4d}  {alert.score:7.2f}  {alert.source:9s}  "
            f"{members}  {live}"
        )

    same = alert_keys(alerts.fired(THRESHOLD)) == alert_keys(
        naive.fired(THRESHOLD)
    )
    stats = engine.stats
    print(
        f"\nincremental engine: {t_engine:.3f}s   "
        f"naive snapshot recompute: {t_naive:.3f}s   "
        f"speedup: {t_naive / t_engine:.1f}x"
    )
    print(f"identical fired alerts: {same}")
    print(
        f"engine work: {stats.full_solves} full solves, "
        f"{stats.incumbent_holds} incumbent holds, "
        f"{stats.local_probes} local probes, "
        f"{stats.cache_hits} cache hits over {stats.steps} steps "
        f"({stats.diff_edits} difference edits from {stats.events} events)"
    )


if __name__ == "__main__":
    main()
