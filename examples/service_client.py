"""Talk to the long-running DCS query service, end to end.

Two modes:

* **self-contained demo** (default): starts ``repro serve`` as a
  subprocess on an ephemeral port, uploads a graph pair, runs the full
  route tour — solve, cached re-solve, top-k, a batch submission, a
  stream replay, ``/metrics`` — and shuts the server down.
* **client mode** (``--url http://host:port``): the same tour against a
  server you already started (skipping the subprocess), e.g.::

      python -m repro serve --port 8765 &
      python examples/service_client.py --url http://127.0.0.1:8765

Run with::

    python examples/service_client.py
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import urllib.error
import urllib.request


def call(base: str, method: str, path: str, body=None, timeout=120):
    """One JSON round-trip; returns (status, payload)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{base}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


#: A small collaboration network: ada-bob-cy tighten, cy-dee weakens.
G1 = "ada bob 1.0\nbob cy 1.0\ncy dee 2.0\neve\n"
G2 = (
    "ada bob 3.0\nbob cy 3.0\nada cy 2.0\n"
    "cy dee 1.0\ndee eve 1.0\n"
)
EVENTS = "\n".join(
    [
        "0 ada bob 1.0",
        "3 ada bob 6.0",
        "3 bob cy 4.0",
        "3 ada cy 5.0",
        "cy",
        "dee",
    ]
) + "\n"


def tour(base: str) -> None:
    status, health = call(base, "GET", "/healthz")
    print(f"healthz          -> {status} {health}")

    status, upload = call(base, "POST", "/v1/graphs", {
        "name": "collab", "g1": G1, "g2": G2,
    })
    print(f"upload           -> {status} fingerprint={upload['fingerprint'][:12]}…")

    solve = {"graph": "collab", "kind": "dcsad"}
    status, body = call(base, "POST", "/v1/solve", solve)
    print(
        f"dcsad            -> {status} vertices={body['result']['vertices']} "
        f"density={body['result']['density']}"
    )
    status, body = call(base, "POST", "/v1/solve", solve)
    print(f"dcsad again      -> {status} cached={body['cached']}")

    status, body = call(base, "POST", "/v1/solve", {
        "graph": "collab", "kind": "dcsga", "k": 2,
    })
    ranked = body["result"]["detail"]["results"]
    print(f"dcsga top-2      -> {status} answers={len(ranked)}")

    status, body = call(base, "POST", "/v1/batch", {"queries": [
        {"kind": "dcsad", "graph": "collab"},
        {"kind": "dcsga", "graph": "collab"},
        {"kind": "dcsad", "graph": "collab", "k": 2},
    ]})
    print(
        f"batch x3         -> {status} "
        f"statuses={[r['status'] for r in body['results']]} "
        f"cache_hits={body['stats']['cache_hits']}"
    )

    status, body = call(base, "POST", "/v1/stream/replay", {
        "events": EVENTS, "window": 2, "threshold": 2.0,
    })
    print(
        f"stream replay    -> {status} "
        f"alerts={[a['step'] for a in body['result']['alerts']]}"
    )

    status, _ = call(base, "POST", "/v1/solve", {"graph": "ghost"})
    print(f"unknown graph    -> {status} (expected 404)")

    status, metrics = call(base, "GET", "/metrics")
    print(
        f"metrics          -> {status} requests={metrics['requests']['total']} "
        f"cache_hit_rate={metrics['cache']['hit_rate']:.2f} "
        f"warm_prepared={metrics['warm']['prepared']} "
        f"p95={metrics['latency']['p95_seconds'] * 1000:.1f}ms"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--url", default=None,
        help="an already-running server (default: spawn one)",
    )
    args = parser.parse_args()
    if args.url:
        tour(args.url.rstrip("/"))
        return 0
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--scale", "0.0"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        banner = server.stdout.readline()
        match = re.search(r"http://[\d.]+:\d+", banner)
        if not match:
            raise SystemExit(f"server did not start: {banner!r}")
        print(f"spawned {match.group(0)}")
        tour(match.group(0))
    finally:
        server.terminate()
        server.wait(timeout=10)
    return 0


if __name__ == "__main__":
    sys.exit(main())
