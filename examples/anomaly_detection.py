"""Detect an emerging anomaly against historical expectations.

The paper's second motivating application (Section I): build one graph
of *expected* connection strengths from history, observe the *current*
strengths, and mine the DCS of (expected, observed).  Here: a road-
sensor network where a planted cluster of sensors suddenly reports far
more co-congestion than history predicts — an "emerging traffic hotspot
clutter".

Run with::

    python examples/anomaly_detection.py
"""

from __future__ import annotations

import random

from repro import Graph, dcs_average_degree, dcs_graph_affinity
from repro.graph.generators import gnp_graph


def build_expected_network(n: int, seed: int) -> Graph:
    """Historical co-congestion rates between nearby sensors."""
    rng = random.Random(seed)
    base = gnp_graph(n, 0.06, seed=seed, weight=lambda r: r.uniform(0.5, 3.0))
    expected = Graph()
    expected.add_vertices(f"sensor{i:03d}" for i in range(n))
    for u, v, w in base.edges():
        expected.add_edge(f"sensor{u:03d}", f"sensor{v:03d}", round(w, 2))
    return expected


def observe_with_anomaly(expected: Graph, hotspot_size: int, seed: int) -> Graph:
    """Current observations: small noise everywhere, plus one hotspot
    cluster whose pairwise co-congestion jumps well above expectation."""
    rng = random.Random(seed)
    observed = Graph()
    observed.add_vertices(expected.vertices())
    for u, v, w in expected.edges():
        observed.add_edge(u, v, max(0.1, w + rng.uniform(-0.4, 0.4)))
    hotspot = rng.sample(sorted(expected.vertices()), hotspot_size)
    for i, u in enumerate(hotspot):
        for v in hotspot[i + 1 :]:
            observed.increment_edge(u, v, rng.uniform(3.0, 5.0))
    return observed, set(hotspot)


def main() -> None:
    expected = build_expected_network(n=200, seed=21)
    observed, hotspot = observe_with_anomaly(expected, hotspot_size=7, seed=22)
    print(
        f"network: {expected.num_vertices} sensors, "
        f"{expected.num_edges} expected links; planted hotspot of "
        f"{len(hotspot)} sensors\n"
    )

    ad = dcs_average_degree(expected, observed)
    print("DCSAD (average degree):")
    print(f"  flagged : {sorted(ad.subset)}")
    print(f"  contrast: {ad.density:.2f} above expectation")

    ga = dcs_graph_affinity(expected, observed)
    print("\nDCSGA (graph affinity, positive-clique answer):")
    print(f"  flagged : {sorted(ga.support)}")
    print(f"  contrast: {ga.objective:.2f}")

    for name, flagged in (("DCSAD", ad.subset), ("DCSGA", ga.support)):
        precision = len(flagged & hotspot) / len(flagged)
        recall = len(flagged & hotspot) / len(hotspot)
        print(
            f"\n{name} vs planted hotspot: "
            f"precision {precision:.2f}, recall {recall:.2f}"
        )


if __name__ == "__main__":
    main()
