"""Multi-worker cluster smoke tour, end to end.

Spawns ``repro serve --workers 2`` — the sharded worker-pool topology
of :mod:`repro.service.cluster` — on an ephemeral port and walks the
full surface:

* ``/healthz`` shows the cluster topology (two live workers);
* uploads route to their shard owners, re-solves hit the owner's cache;
* a batch mixing both graphs is served by one worker attaching the
  other's shared-memory segment (zero copies, no rebuild);
* stream sessions shard round-robin and route back by sid prefix;
* ``/metrics`` merges per-worker snapshots (JSON aggregate +
  worker-labelled Prometheus exposition);
* solve envelopes are byte-identical to a ``--workers 1`` server;
* SIGTERM tears down every ``/dev/shm`` segment the cluster created.

Run with::

    python examples/scale_smoke.py
"""

from __future__ import annotations

import glob
import json
import os
import re
import signal
import subprocess
import sys
import urllib.error
import urllib.request

G1A = "ada bob 1.0\nbob cy 1.0\ncy dee 2.0\neve\n"
G2A = "ada bob 3.0\nbob cy 3.0\nada cy 2.0\ncy dee 1.0\ndee eve 1.0\n"
G1B = "kim lee 2.0\nlee mo 1.0\nmo nia 1.0\nora\n"
G2B = "kim lee 1.0\nlee mo 4.0\nmo nia 3.0\nlee nia 2.0\nnia ora 1.0\n"


def call(base, method, path, body=None, timeout=120):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{base}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def text(base, path, timeout=30):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return response.read().decode("utf-8")


def spawn(workers):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"  # cross-process byte-identity
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--scale", "0.0", "--workers", str(workers)],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:\d+", banner)
    if not match:
        raise SystemExit(f"server did not start: {banner!r}")
    return proc, match.group(0)


def upload_pairs(base):
    for name, g1, g2 in (("teamA", G1A, G2A), ("teamB", G1B, G2B)):
        status, body = call(base, "POST", "/v1/graphs", {
            "name": name, "g1": g1, "g2": g2,
        })
        assert status == 200, body
    return ("teamA", "teamB")


def strip(record):
    return json.dumps(
        {k: v for k, v in record.items() if k != "timings"},
        sort_keys=True,
    )


def tour(base):
    status, health = call(base, "GET", "/healthz")
    workers = health["cluster"]["workers"]
    alive = sum(1 for w in health["workers"] if w["alive"])
    print(f"healthz          -> {status} workers={workers} alive={alive}")
    assert workers == 2 and alive == 2, health

    names = upload_pairs(base)
    print(f"uploads          -> {list(names)} (sharded to their owners)")

    envelopes = []
    for name in names:
        status, body = call(base, "POST", "/v1/solve", {
            "graph": name, "kind": "dcsad",
        })
        assert status == 200 and body["status"] == "ok", body
        envelopes.append(strip(body["result"]))
        status, again = call(base, "POST", "/v1/solve", {
            "graph": name, "kind": "dcsad",
        })
        print(
            f"solve {name}      -> {status} "
            f"vertices={body['result']['vertices']} "
            f"re-solve cached={again['cached']}"
        )
        assert again["cached"], "owner's result cache must hold"

    status, batch = call(base, "POST", "/v1/batch", {"queries": [
        {"kind": "dcsga", "graph": names[0]},
        {"kind": "dcsga", "graph": names[1]},
    ]})
    print(
        f"mixed batch      -> {status} "
        f"statuses={[r['status'] for r in batch['results']]}"
    )
    assert batch["status"] == "ok", batch

    sids = []
    for _ in range(2):
        status, body = call(base, "POST", "/v1/stream/sessions", {
            "universe": ["a", "b", "c"], "window": 3, "threshold": 2.0,
        })
        assert status == 200, body
        sids.append(body["session"])
    print(f"sessions         -> {sids} (one per worker)")
    assert {sid.split('-', 1)[0] for sid in sids} == {"w0", "w1"}
    for sid in sids:
        status, body = call(
            base, "POST", f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": 0, "u": "a", "v": "b", "w": 1.0}]},
        )
        assert status == 200 and body["session"] == sid, body
    for sid in sids:
        status, body = call(
            base, "DELETE", f"/v1/stream/sessions/{sid}"
        )
        assert status == 200 and body["closed"] == sid, body
    print("session events   -> routed by sid prefix, closed clean")

    status, metrics = call(base, "GET", "/metrics")
    aggregate = metrics["aggregate"]
    per_worker = [s["worker"] for s in metrics["workers"]]
    print(
        f"metrics          -> {status} per-worker={per_worker} "
        f"agg_requests={aggregate['requests']['total']} "
        f"cold_builds={aggregate['warm']['cold_builds']} "
        f"shared_attaches={aggregate['warm']['shared_attaches']}"
    )
    exposition = text(base, "/metrics?format=prometheus")
    labelled = 'worker="0"' in exposition and 'worker="1"' in exposition
    print(f"prometheus       -> worker-labelled families: {labelled}")
    assert labelled

    return envelopes


def main() -> int:
    cluster, cluster_base = spawn(2)
    print(f"spawned cluster {cluster_base} (pid {cluster.pid})")
    try:
        cluster_envelopes = tour(cluster_base)
    except BaseException:
        cluster.terminate()
        cluster.wait(timeout=10)
        raise

    single, single_base = spawn(1)
    try:
        names = upload_pairs(single_base)
        single_envelopes = []
        for name in names:
            status, body = call(single_base, "POST", "/v1/solve", {
                "graph": name, "kind": "dcsad",
            })
            assert status == 200, body
            single_envelopes.append(strip(body["result"]))
    finally:
        single.terminate()
        single.wait(timeout=10)
    assert cluster_envelopes == single_envelopes
    print("byte-identity    -> cluster envelopes == single-process bytes")

    cluster.send_signal(signal.SIGTERM)
    code = cluster.wait(timeout=30)
    assert code == 0, f"cluster exited {code}"
    leftovers = glob.glob(f"/dev/shm/rp{cluster.pid}_*")
    assert leftovers == [], leftovers
    print("teardown         -> exit 0, no shared-memory segments leaked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
