"""Detect emerging and disappearing research topics from paper titles.

Reproduces the workflow of Section VI-C: build keyword association
graphs for an early and a recent era, then mine the difference graph
with the DCSGA machinery.  Single-graph dense-subgraph mining falls into
the "time series trap" — topics that were *always* hot look like trends;
the contrast objective does not.

Run with::

    python examples/trend_detection.py
"""

from __future__ import annotations

from repro.analysis.reporting import Table, format_embedding
from repro.core.difference import difference_graph, flip
from repro.core.newsea import solve_all_initializations
from repro.datasets.synthetic_text import keyword_corpus


def top_topics(gd, k: int = 5):
    """Top-k positive cliques by affinity via all-vertex initialisation."""
    result = solve_all_initializations(gd.positive_part())
    return result.solutions[:k]


def main() -> None:
    corpus = keyword_corpus(n_titles_per_era=2000, seed=11)
    print(
        f"corpus: {len(corpus.titles1)} early titles, "
        f"{len(corpus.titles2)} recent titles, "
        f"{len(corpus.vocabulary)} keywords\n"
    )

    gd_emerging = difference_graph(corpus.g1, corpus.g2)
    gd_disappearing = flip(gd_emerging)

    table = Table(
        title="Top-5 emerging/disappearing topics w.r.t. graph affinity",
        columns=["Rank", "Emerging", "Disappearing"],
    )
    emerging = top_topics(gd_emerging)
    disappearing = top_topics(gd_disappearing)
    for rank in range(5):
        row = [str(rank + 1)]
        for solutions in (emerging, disappearing):
            if rank < len(solutions):
                _, x, _ = solutions[rank]
                row.append(format_embedding(x.items(), max_entries=4))
            else:
                row.append("-")
        table.add_row(row)
    print(table.render())

    # The single-graph view for contrast: what does "dense in G2" say?
    print("\nTop-5 topics mined from the recent graph alone:")
    recent = top_topics(corpus.g2)
    for rank, (_, x, value) in enumerate(recent, start=1):
        print(f"  {rank}. {format_embedding(x.items(), max_entries=4)}"
              f"  (affinity {value:.2f})")
    print(
        "\nNote how stable evergreen topics (e.g. {time, series}) rank "
        "high in the single-graph view but not in the contrast view — "
        "the motivation for DCS in the paper's introduction."
    )

    print("\nPlanted ground truth:")
    print("  emerging   :", [sorted(t) for t in corpus.emerging_topics])
    print("  disappearing:", [sorted(t) for t in corpus.disappearing_topics])
    print("  stable     :", [sorted(t) for t in corpus.stable_topics])


if __name__ == "__main__":
    main()
