"""Observability tour: tracing, request ids, and Prometheus scraping.

The end-to-end smoke for the `repro/obs/` layer (``make obs-smoke``).
It spawns ``repro serve`` on an ephemeral port and asserts the whole
observability contract a monitoring stack relies on:

* every response echoes an ``X-Request-Id`` (the client's own id when
  supplied, a generated one otherwise);
* a solve response's ``timings`` carries the traced per-phase
  breakdown, and the phase self-times sum to ``solve_seconds`` within
  10%;
* ``GET /metrics?format=prometheus`` serves valid text exposition
  (validated with the strict parser) with non-zero solve-phase
  counters, while the plain JSON form keeps its historical shape.

Client mode (``--url http://host:port``) runs the same tour against a
server you already started.

Run with::

    python examples/obs_tour.py
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import urllib.error
import urllib.request

from repro.obs.prometheus import parse_exposition

G1 = "ada bob 1.0\nbob cy 1.0\ncy dee 2.0\neve\n"
G2 = (
    "ada bob 3.0\nbob cy 3.0\nada cy 2.0\n"
    "cy dee 1.0\ndee eve 1.0\n"
)


def call(base: str, method: str, path: str, body=None, headers=None):
    """One round-trip; returns (status, headers, decoded body)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{base}{path}", data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            raw = response.read()
            kind = response.headers.get("Content-Type", "")
            payload = raw.decode() if "text/plain" in kind else json.loads(raw)
            return response.status, dict(response.headers), payload
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def tour(base: str) -> None:
    status, headers, _ = call(base, "GET", "/healthz")
    assert status == 200
    generated = headers["X-Request-Id"]
    assert re.fullmatch(r"[0-9a-f]{16}", generated), generated
    print(f"healthz          -> {status} request_id={generated} (generated)")

    status, headers, _ = call(
        base, "GET", "/healthz", headers={"X-Request-Id": "obs-tour-1"}
    )
    assert headers["X-Request-Id"] == "obs-tour-1", headers
    print(f"healthz          -> {status} request_id=obs-tour-1 (echoed)")

    status, _, upload = call(base, "POST", "/v1/graphs", {
        "name": "collab", "g1": G1, "g2": G2,
    })
    assert status == 200, upload
    print(f"upload           -> {status} fingerprint={upload['fingerprint'][:12]}…")

    status, headers, body = call(base, "POST", "/v1/solve", {
        "graph": "collab", "kind": "dcsga",
    }, headers={"X-Request-Id": "obs-tour-solve"})
    assert status == 200 and headers["X-Request-Id"] == "obs-tour-solve"
    timings = body["result"]["timings"]
    phases = timings["phases"]
    total, wall = sum(phases.values()), timings["solve_seconds"]
    assert phases and wall > 0.0, timings
    assert abs(total - wall) <= 0.10 * wall, (total, wall)
    print(
        f"traced solve     -> {status} phases={sorted(phases)} "
        f"sum/wall={total / wall:.3f}"
    )

    status, _, snapshot = call(base, "GET", "/metrics")
    assert status == 200 and isinstance(snapshot, dict)
    assert {"requests", "queries", "cache", "warm", "latency"} <= set(snapshot)
    print(
        f"metrics (json)   -> {status} requests={snapshot['requests']['total']} "
        f"phases={sorted(snapshot['solve_phases'])}"
    )

    status, headers, text = call(base, "GET", "/metrics?format=prometheus")
    assert status == 200 and "text/plain" in headers["Content-Type"]
    families = parse_exposition(text)  # raises on any grammar break
    phase_samples = families["repro_solve_phase_seconds_total"]["samples"]
    assert phase_samples and all(v > 0.0 for v in phase_samples.values()), (
        phase_samples
    )
    calls = families["repro_solve_phase_calls_total"]["samples"]
    assert sum(calls.values()) > 0, calls
    print(
        f"metrics (prom)   -> {status} families={len(families)} "
        f"phase_seconds_samples={len(phase_samples)}"
    )
    print("observability tour OK")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--url", default=None,
        help="an already-running server (default: spawn one)",
    )
    args = parser.parse_args()
    if args.url:
        tour(args.url.rstrip("/"))
        return 0
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--scale", "0.0"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        banner = server.stdout.readline()
        match = re.search(r"http://[\d.]+:\d+", banner)
        if not match:
            raise SystemExit(f"server did not start: {banner!r}")
        print(f"spawned {match.group(0)}")
        tour(match.group(0))
    finally:
        server.terminate()
        server.wait(timeout=10)
    return 0


if __name__ == "__main__":
    sys.exit(main())
