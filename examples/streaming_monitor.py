"""Monitor a stream of network snapshots for emerging contrast anomalies.

Extends the paper's anomaly application (Section I) to a temporal loop:
the expectation graph is the sliding-window mean of recent snapshots, and
each new snapshot is contrasted against it.  A planted hotspot burst in
the middle of the stream should spike the contrast score during — and
only during — its active steps.

Run with::

    python examples/streaming_monitor.py
"""

from __future__ import annotations

from repro.core.monitor import ContrastMonitor
from repro.datasets.temporal import snapshot_stream


def main() -> None:
    stream = snapshot_stream(
        n_vertices=150,
        n_steps=14,
        anomaly_size=6,
        anomaly_start=8,
        anomaly_duration=3,
        seed=7,
    )
    print(
        f"stream: {stream.length} snapshots over "
        f"{len(stream.snapshots[0].vertex_set())} nodes; "
        f"anomaly of {len(stream.anomaly_members)} nodes active at "
        f"steps {stream.anomaly_start}..{stream.anomaly_end - 1}\n"
    )

    monitor = ContrastMonitor(window=5, measure="average_degree")
    alerts = monitor.run(stream.snapshots)

    max_quiet = max(
        alert.score
        for alert in alerts
        if not stream.is_anomalous_step(alert.step)
    )
    threshold = 2.0 * max_quiet
    print(f"alert threshold = 2 x max quiet score = {threshold:.2f}\n")
    print("step  score    alert  flagged")
    for alert in alerts:
        flag = "  *ALERT*" if alert.exceeds(threshold) else ""
        members = ""
        if alert.exceeds(threshold):
            members = " " + " ".join(sorted(alert.subset)[:6])
        marker = "<- anomaly live" if stream.is_anomalous_step(alert.step) else ""
        print(f"{alert.step:4d}  {alert.score:7.2f}{flag}{members}  {marker}")

    fired = {alert.step for alert in alerts if alert.exceeds(threshold)}
    live = {
        step
        for step in range(stream.length)
        if stream.is_anomalous_step(step)
    }
    print(
        f"\nalerts fired at steps {sorted(fired)}; anomaly live at "
        f"{sorted(live)}"
    )
    hits = fired & live
    print(f"detection: {len(hits)}/{len(live)} live steps flagged")


if __name__ == "__main__":
    main()
