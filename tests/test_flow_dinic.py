"""Tests for Dinic's max-flow against brute-force min cuts."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.flow.dinic import FlowNetwork, max_flow, min_cut_side, min_st_cut_value


def brute_force_min_cut(edges, source, sink):
    """Minimum s-t cut by enumerating all vertex bipartitions."""
    nodes = {source, sink}
    for u, v, _ in edges:
        nodes.update((u, v))
    others = sorted(nodes - {source, sink}, key=repr)
    best = float("inf")
    for size in range(len(others) + 1):
        for chosen in itertools.combinations(others, size):
            side = {source, *chosen}
            value = sum(
                cap for u, v, cap in edges if u in side and v not in side
            )
            best = min(best, value)
    return best


class TestSmallNetworks:
    def test_single_arc(self):
        value, side = min_st_cut_value([("s", "t", 3.0)], "s", "t")
        assert value == 3.0
        assert side == {"s"}

    def test_two_parallel_paths(self):
        edges = [("s", "a", 2.0), ("a", "t", 2.0), ("s", "b", 3.0), ("b", "t", 1.0)]
        value, _ = min_st_cut_value(edges, "s", "t")
        assert value == 3.0

    def test_bottleneck_in_middle(self):
        edges = [("s", "a", 10.0), ("a", "b", 1.0), ("b", "t", 10.0)]
        value, side = min_st_cut_value(edges, "s", "t")
        assert value == 1.0
        assert side == {"s", "a"}

    def test_disconnected_sink(self):
        network = FlowNetwork()
        network.add_node("s")
        network.add_node("t")
        network.add_arc("s", "a", 5.0)
        assert max_flow(network, "s", "t") == 0.0

    def test_classic_cormen_network(self):
        edges = [
            ("s", "v1", 16.0),
            ("s", "v2", 13.0),
            ("v1", "v3", 12.0),
            ("v2", "v1", 4.0),
            ("v2", "v4", 14.0),
            ("v3", "v2", 9.0),
            ("v3", "t", 20.0),
            ("v4", "v3", 7.0),
            ("v4", "t", 4.0),
        ]
        value, _ = min_st_cut_value(edges, "s", "t")
        assert value == 23.0

    def test_undirected_edge_both_directions(self):
        network = FlowNetwork()
        network.add_undirected("s", "m", 4.0)
        network.add_undirected("m", "t", 2.5)
        assert max_flow(network, "s", "t") == 2.5

    def test_same_source_sink_rejected(self):
        network = FlowNetwork()
        network.add_node("s")
        with pytest.raises(ValueError):
            max_flow(network, "s", "s")

    def test_negative_capacity_rejected(self):
        network = FlowNetwork()
        with pytest.raises(ValueError):
            network.add_arc("a", "b", -1.0)
        with pytest.raises(ValueError):
            network.add_undirected("a", "b", -1.0)

    def test_missing_node_rejected(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 1.0)
        with pytest.raises(KeyError):
            max_flow(network, "s", "ghost")


class TestCutProperties:
    def test_cut_side_contains_source_not_sink(self):
        edges = [("s", "a", 1.0), ("a", "t", 2.0)]
        _, side = min_st_cut_value(edges, "s", "t")
        assert "s" in side
        assert "t" not in side

    def test_cut_value_equals_crossing_capacity(self):
        rng = random.Random(17)
        for trial in range(10):
            nodes = ["s", "t"] + [f"n{i}" for i in range(5)]
            edges = []
            for u in nodes:
                for v in nodes:
                    if u != v and rng.random() < 0.4:
                        edges.append((u, v, round(rng.uniform(0.5, 5.0), 2)))
            value, side = min_st_cut_value(edges, "s", "t")
            crossing = sum(
                cap for u, v, cap in edges if u in side and v not in side
            )
            assert value == pytest.approx(crossing, abs=1e-9)


class TestAgainstBruteForce:
    def test_random_networks_match_brute_force(self):
        rng = random.Random(23)
        for trial in range(12):
            nodes = ["s", "t"] + [f"n{i}" for i in range(4)]
            edges = []
            for u in nodes:
                for v in nodes:
                    if u != v and rng.random() < 0.45:
                        edges.append((u, v, float(rng.randint(1, 9))))
            value, _ = min_st_cut_value(edges, "s", "t")
            expected = brute_force_min_cut(edges, "s", "t")
            assert value == pytest.approx(expected, abs=1e-9)
