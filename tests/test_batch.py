"""Tests for the batch-query service layer (repro.batch)."""

from __future__ import annotations

import json

import pytest

from repro.batch import (
    BatchExecutor,
    BatchPlan,
    BatchQuery,
    GraphSource,
    ResultCache,
    cache_key,
    query_from_dict,
    query_to_dict,
    read_queries,
)
from repro.batch.plan import prep_key
from repro.core.difference import difference_graph
from repro.exceptions import InputMismatchError
from repro.graph.generators import random_signed_graph
from repro.graph.graph import Graph
from repro.graph.io import write_pair
from repro.graph.sparse import graph_fingerprint, scipy_available
from repro.stream.events import EdgeEvent, EventLog, write_events

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="sparse backend requires SciPy"
)


# ----------------------------------------------------------------------
# shared inputs
# ----------------------------------------------------------------------
@pytest.fixture
def pair():
    # String labels so file round-trips preserve content fingerprints.
    names = {i: f"v{i:02d}" for i in range(40)}
    g1 = random_signed_graph(40, 0.2, seed=11).positive_part().relabeled(names)
    g2 = random_signed_graph(40, 0.25, seed=12).positive_part().relabeled(names)
    return g1, g2


@pytest.fixture
def pair_files(tmp_path, pair):
    g1_path = tmp_path / "g1.txt"
    g2_path = tmp_path / "g2.txt"
    write_pair(pair[0], pair[1], g1_path, g2_path)
    return str(g1_path), str(g2_path)


@pytest.fixture
def events_file(tmp_path):
    events = [
        EdgeEvent(t, "a", "b", 1.0 + (4.0 if 6 <= t <= 7 else 0.0))
        for t in range(10)
    ]
    log = EventLog(events=events, declared={"a", "b", "c"})
    path = tmp_path / "events.txt"
    write_events(log, path)
    return str(path)


def mixed_queries(pair):
    src = GraphSource.from_pair(*pair)
    return [
        BatchQuery(kind="dcsad", source=src, qid="ad"),
        BatchQuery(kind="dcsad", source=src, qid="ad-k", k=3, strategy="edges"),
        BatchQuery(kind="dcsga", source=src, qid="ga"),
        BatchQuery(kind="dcsga", source=src, qid="ga-k", k=2),
        BatchQuery(kind="dcsad", source=src, qid="ad-half", alpha=0.5),
    ]


# ----------------------------------------------------------------------
# queries: validation + serialisation
# ----------------------------------------------------------------------
class TestQueryValidation:
    def test_unknown_kind_rejected(self, pair):
        with pytest.raises(InputMismatchError):
            BatchQuery(kind="dcsxx", source=GraphSource.from_pair(*pair))

    def test_unknown_backend_rejected(self, pair):
        with pytest.raises(InputMismatchError):
            BatchQuery(
                kind="dcsad",
                source=GraphSource.from_pair(*pair),
                backend="gpu",
            )

    def test_stream_needs_events_source(self, pair):
        with pytest.raises(InputMismatchError):
            BatchQuery(kind="stream", source=GraphSource.from_pair(*pair))

    def test_stream_rejects_difference_transform_fields(self):
        # These would be silently ignored (and cache-collide with the
        # untransformed query), so they must be refused up front.
        for kwargs in ({"alpha": 0.5}, {"flip": True}, {"cap": 2.0}):
            with pytest.raises(InputMismatchError):
                BatchQuery(
                    kind="stream",
                    source=GraphSource.from_events("e.txt"),
                    **kwargs,
                )

    def test_graph_query_rejects_events_source(self):
        with pytest.raises(InputMismatchError):
            BatchQuery(kind="dcsad", source=GraphSource.from_events("e.txt"))

    def test_nonpositive_k_rejected(self, pair):
        with pytest.raises(InputMismatchError):
            BatchQuery(kind="dcsga", source=GraphSource.from_pair(*pair), k=0)

    def test_bad_strategy_rejected(self, pair):
        with pytest.raises(InputMismatchError):
            BatchQuery(
                kind="dcsad",
                source=GraphSource.from_pair(*pair),
                strategy="teleport",
            )

    def test_source_needs_exactly_one_flavour(self):
        with pytest.raises(InputMismatchError):
            GraphSource(kind="files", g1="a.txt")
        with pytest.raises(InputMismatchError):
            GraphSource(kind="inline")
        with pytest.raises(InputMismatchError):
            GraphSource(kind="teleport")


class TestQuerySerialisation:
    def test_round_trip_files(self):
        query = BatchQuery(
            kind="dcsga",
            source=GraphSource.from_files("g1.txt", "g2.txt"),
            qid="x",
            alpha=0.25,
            backend="sparse",
            k=3,
            timeout=2.0,
        )
        again = query_from_dict(query_to_dict(query))
        assert again == query

    def test_round_trip_stream(self):
        query = BatchQuery(
            kind="stream",
            source=GraphSource.from_events("events.txt"),
            qid="s",
            window=7,
            policy="gated",
            threshold=1.5,
        )
        assert query_from_dict(query_to_dict(query)) == query

    def test_stream_replay_alias(self):
        query = query_from_dict(
            {"kind": "stream_replay", "events": "e.txt"}, qid="s"
        )
        assert query.kind == "stream"

    def test_inline_sources_do_not_serialise(self, pair):
        query = BatchQuery(kind="dcsad", source=GraphSource.from_pair(*pair))
        with pytest.raises(InputMismatchError):
            query_to_dict(query)

    def test_unknown_fields_rejected(self):
        with pytest.raises(InputMismatchError):
            query_from_dict({"kind": "dcsad", "g1": "a", "g2": "b", "zap": 1})

    def test_missing_input_rejected(self):
        with pytest.raises(InputMismatchError):
            query_from_dict({"kind": "dcsad"})
        with pytest.raises(InputMismatchError):
            query_from_dict({"kind": "dcsad", "g1": "only-one.txt"})

    def test_read_queries_json_array(self, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                [
                    {"kind": "dcsad", "g1": "a.txt", "g2": "b.txt"},
                    {"kind": "dcsga", "g1": "a.txt", "g2": "b.txt", "k": 2},
                ]
            )
        )
        queries = read_queries(str(path))
        assert [q.qid for q in queries] == ["q0", "q1"]
        assert queries[1].k == 2

    def test_read_queries_jsonl_with_comments(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        path.write_text(
            "# sweep\n"
            '{"kind": "dcsad", "g1": "a.txt", "g2": "b.txt"}\n'
            "\n"
            '{"kind": "dcsad", "g1": "a.txt", "g2": "b.txt", "qid": "named"}\n'
        )
        queries = read_queries(str(path))
        assert [q.qid for q in queries] == ["q0", "named"]

    def test_explicit_qid_matching_a_positional_default_is_fine(
        self, tmp_path
    ):
        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                [
                    {"kind": "dcsad", "g1": "a", "g2": "b", "qid": "q1"},
                    {"kind": "dcsad", "g1": "a", "g2": "b"},
                    {"kind": "dcsga", "g1": "a", "g2": "b"},
                ]
            )
        )
        qids = [q.qid for q in read_queries(str(path))]
        assert qids[0] == "q1"
        assert len(set(qids)) == 3

    def test_duplicate_qids_rejected(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        path.write_text(
            '{"kind": "dcsad", "g1": "a", "g2": "b", "qid": "dup"}\n'
            '{"kind": "dcsga", "g1": "a", "g2": "b", "qid": "dup"}\n'
        )
        with pytest.raises(InputMismatchError):
            read_queries(str(path))


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_insertion_order_invariant(self):
        edges = [("a", "b", 1.5), ("b", "c", -2.0), ("c", "d", 0.25)]
        forward = Graph.from_edges(edges)
        backward = Graph.from_edges(list(reversed(edges)))
        assert graph_fingerprint(forward) == graph_fingerprint(backward)

    def test_weight_sensitive(self):
        base = Graph.from_edges([("a", "b", 1.0)])
        changed = Graph.from_edges([("a", "b", 1.0 + 1e-12)])
        assert graph_fingerprint(base) != graph_fingerprint(changed)

    def test_isolated_vertices_matter(self):
        bare = Graph.from_edges([("a", "b", 1.0)])
        padded = Graph.from_edges([("a", "b", 1.0)], vertices=["c"])
        assert graph_fingerprint(bare) != graph_fingerprint(padded)

    @needs_scipy
    def test_csr_pickle_round_trip(self):
        import pickle

        from repro.graph.sparse import CSRAdjacency

        graph = random_signed_graph(25, 0.3, seed=3)
        adj = CSRAdjacency.from_graph(graph)
        again = pickle.loads(pickle.dumps(adj))
        assert again.vertices == adj.vertices
        assert again.index == adj.index
        assert (again.matrix != adj.matrix).nnz == 0
        # Raw views must alias the unpickled matrix, not stale buffers.
        assert again.indptr is again.matrix.indptr
        # The scratch buffer is derived state and must not ship.
        assert again._local_map is None


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_key_is_stable_and_param_sensitive(self):
        a = cache_key("fp", {"kind": "dcsad", "k": 1})
        assert a == cache_key("fp", {"k": 1, "kind": "dcsad"})
        assert a != cache_key("fp", {"kind": "dcsad", "k": 2})
        assert a != cache_key("fp2", {"kind": "dcsad", "k": 1})

    def test_memory_hit_miss_counters(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"status": "ok", "payload": {"x": 1}})
        assert cache.get("k") == {"status": "ok", "payload": {"x": 1}}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_disk_persistence(self, tmp_path):
        first = ResultCache(tmp_path / "cache")
        first.put("deadbeef", {"status": "ok", "payload": {"v": 2}})
        second = ResultCache(tmp_path / "cache")
        assert second.get("deadbeef") == {"status": "ok", "payload": {"v": 2}}
        assert len(second) == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        directory = tmp_path / "cache"
        cache = ResultCache(directory)
        (directory / "badkey.json").write_text("{not json")
        assert cache.get("badkey") is None

    def test_returned_payloads_are_isolated_copies(self):
        cache = ResultCache()
        stored = {"status": "ok", "payload": {"subset": ["a", "b"]}}
        cache.put("k", stored)
        stored["payload"]["subset"].append("poison-store")
        first = cache.get("k")
        first["payload"]["subset"].append("poison-hit")
        assert cache.get("k") == {
            "status": "ok", "payload": {"subset": ["a", "b"]}
        }

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k", {"status": "ok", "payload": None})
        cache.clear()
        assert len(cache) == 0
        assert ResultCache(tmp_path / "cache").get("k") is None


# ----------------------------------------------------------------------
# plan
# ----------------------------------------------------------------------
class TestBatchPlan:
    def test_dedup_groups_by_source_and_transform(self, pair):
        queries = mixed_queries(pair)
        plan = BatchPlan(queries)
        # 4 queries share the default transform; the alpha sweep is its own.
        assert len(plan.groups) == 2
        assert plan.shared_preps == 3
        assert plan.prep_of[0] == plan.prep_of[1] == plan.prep_of[2]
        assert plan.prep_of[4] != plan.prep_of[0]

    def test_describe_names_queries(self, pair):
        plan = BatchPlan(mixed_queries(pair))
        text = plan.describe()
        assert "2 shared prep nodes" in text
        assert "ad-half" in text

    def test_inline_graph_transform_fails_only_its_queries(self, pair):
        gd = difference_graph(*pair, require_same_vertices=False)
        bad = BatchQuery(
            kind="dcsad", source=GraphSource.from_graph(gd), alpha=0.5,
            qid="bad",
        )
        good = BatchQuery(
            kind="dcsad", source=GraphSource.from_graph(gd), qid="good"
        )
        results = BatchExecutor().run([bad, good])
        assert results[0].status == "error"
        assert "applied twice" in results[0].error
        assert results[1].status == "ok"

    def test_separate_from_pair_calls_share_prep(self, pair):
        g1, g2 = pair
        queries = [
            BatchQuery(kind="dcsad", source=GraphSource.from_pair(g1, g2)),
            BatchQuery(kind="dcsga", source=GraphSource.from_pair(g1, g2)),
        ]
        plan = BatchPlan(queries)
        assert len(plan.groups) == 1
        assert plan.shared_preps == 1

    def test_file_pair_read_once_across_transforms(
        self, pair_files, monkeypatch
    ):
        import repro.batch.plan as plan_module

        calls = []
        original = plan_module.read_pair

        def counting(g1, g2, parser=None):
            calls.append((g1, g2))
            return original(g1, g2, parser)

        monkeypatch.setattr(plan_module, "read_pair", counting)
        source = GraphSource.from_files(*pair_files)
        queries = [
            BatchQuery(kind="dcsad", source=source, alpha=alpha)
            for alpha in (0.5, 1.0, 2.0)
        ]
        outputs = BatchPlan(queries).run_preps()
        assert len(outputs) == 3  # three transforms, three prep nodes
        assert len(calls) == 1  # ...but one file read

    def test_identical_content_same_fingerprint(self, pair, pair_files):
        inline = BatchQuery(kind="dcsad", source=GraphSource.from_pair(*pair))
        files = BatchQuery(
            kind="dcsad", source=GraphSource.from_files(*pair_files)
        )
        outputs = BatchPlan([inline, files]).run_preps()
        fingerprints = {out.fingerprint for out in outputs.values()}
        assert len(outputs) == 2
        assert len(fingerprints) == 1

    def test_prep_failure_is_captured_not_raised(self):
        query = BatchQuery(
            kind="dcsad",
            source=GraphSource.from_files("missing1.txt", "missing2.txt"),
        )
        outputs = BatchPlan([query]).run_preps()
        (output,) = outputs.values()
        assert output.payload is None
        assert output.error is not None


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
class TestBatchExecutor:
    def test_results_in_input_order_with_qids(self, pair):
        results = BatchExecutor().run(mixed_queries(pair))
        assert [r.qid for r in results] == ["ad", "ad-k", "ga", "ga-k", "ad-half"]
        assert all(r.status == "ok" for r in results)

    def test_matches_direct_solver_calls(self, pair):
        from repro.core.dcsad import dcs_greedy

        gd = difference_graph(*pair, require_same_vertices=False)
        direct = dcs_greedy(gd)
        (result,) = BatchExecutor().run(
            [BatchQuery(kind="dcsad", source=GraphSource.from_pair(*pair))]
        )
        assert result.payload["density"] == direct.density
        assert result.payload["vertices"] == sorted(map(str, direct.subset))

    def test_serial_and_forced_process_are_byte_identical(self, pair):
        queries = mixed_queries(pair)
        serial = BatchExecutor(mode="serial").run(queries)
        pooled = BatchExecutor(workers=2, mode="process").run(queries)
        assert [r.canonical_json() for r in serial] == [
            r.canonical_json() for r in pooled
        ]

    def test_resubmission_hits_cache(self, pair):
        executor = BatchExecutor()
        queries = mixed_queries(pair)
        first = executor.run(queries)
        second = executor.run(queries)
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        assert executor.stats.cache_hits == len(queries)
        assert [r.canonical_json() for r in first] == [
            r.canonical_json() for r in second
        ]

    def test_cache_is_shared_across_sources_by_content(
        self, pair, pair_files
    ):
        executor = BatchExecutor()
        executor.run(
            [BatchQuery(kind="dcsad", source=GraphSource.from_pair(*pair))]
        )
        (result,) = executor.run(
            [
                BatchQuery(
                    kind="dcsad", source=GraphSource.from_files(*pair_files)
                )
            ]
        )
        assert result.cached  # same content, different route

    def test_prep_failure_isolates(self, pair):
        queries = [
            BatchQuery(
                kind="dcsad",
                source=GraphSource.from_files("nope1.txt", "nope2.txt"),
                qid="bad",
            ),
            BatchQuery(
                kind="dcsad", source=GraphSource.from_pair(*pair), qid="good"
            ),
        ]
        results = BatchExecutor().run(queries)
        assert results[0].status == "error"
        assert "prep failed" in results[0].error
        assert results[1].status == "ok"

    def test_solve_failure_isolates(self, tmp_path, pair):
        empty_events = tmp_path / "empty.txt"
        empty_events.write_text("# repro event log: t u v w\n")
        queries = [
            BatchQuery(
                kind="stream",
                source=GraphSource.from_events(str(empty_events)),
                qid="bad",
            ),
            BatchQuery(
                kind="dcsga", source=GraphSource.from_pair(*pair), qid="good"
            ),
        ]
        for mode, workers in (("serial", 1), ("process", 2)):
            results = BatchExecutor(workers=workers, mode=mode).run(queries)
            assert results[0].status == "error", mode
            assert results[1].status == "ok", mode

    @pytest.mark.parametrize("mode,workers", [("serial", 1), ("process", 2)])
    def test_timeout_isolates_and_is_not_cached(self, mode, workers):
        g1 = random_signed_graph(150, 0.15, seed=21).positive_part()
        g2 = random_signed_graph(150, 0.17, seed=22).positive_part()
        slow = BatchQuery(
            kind="dcsga",
            source=GraphSource.from_pair(g1, g2),
            qid="slow",
            k=5,
            timeout=0.02,
        )
        fast = BatchQuery(
            kind="dcsad", source=GraphSource.from_pair(g1, g2), qid="fast"
        )
        executor = BatchExecutor(workers=workers, mode=mode)
        results = executor.run([slow, fast])
        assert results[0].status == "timeout"
        assert results[1].status == "ok"
        assert executor.stats.timeouts == 1
        # A timeout must not poison the cache: resubmitting with a
        # generous limit gets a real answer.
        retry = BatchExecutor(cache=executor.cache).run(
            [BatchQuery(
                kind="dcsga",
                source=GraphSource.from_pair(g1, g2),
                qid="slow",
                k=5,
                timeout=60.0,
            )]
        )
        assert retry[0].status == "ok"
        assert not retry[0].cached

    def test_errors_are_never_cached(self, tmp_path):
        """Failures can be transient — resubmission must retry them."""
        empty_events = tmp_path / "empty.txt"
        empty_events.write_text("# repro event log: t u v w\n")
        query = BatchQuery(
            kind="stream", source=GraphSource.from_events(str(empty_events))
        )
        executor = BatchExecutor()
        first = executor.run([query])
        second = executor.run([query])
        assert first[0].status == "error" and not first[0].cached
        assert second[0].status == "error" and not second[0].cached
        assert len(executor.cache) == 0

    def test_stats_accounting(self, pair):
        executor = BatchExecutor()
        executor.run(mixed_queries(pair))
        stats = executor.stats
        assert stats.queries == 5
        assert stats.preps_built == 2
        assert stats.preps_shared == 3
        assert stats.solved == 5
        assert stats.wall_seconds > 0

    def test_auto_mode_single_query_stays_serial(self, pair):
        executor = BatchExecutor(workers=4, mode="auto")
        executor.run(
            [BatchQuery(kind="dcsad", source=GraphSource.from_pair(*pair))]
        )
        assert executor.stats.mode == "serial"

    def test_auto_qids_never_collide_with_explicit_ones(self, pair):
        source = GraphSource.from_pair(*pair)
        results = BatchExecutor().run(
            [
                BatchQuery(kind="dcsad", source=source, qid="q1"),
                BatchQuery(kind="dcsga", source=source),  # auto-named
                BatchQuery(kind="dcsad", source=source, k=2),  # auto-named
            ]
        )
        qids = [r.qid for r in results]
        assert qids[0] == "q1"
        assert len(set(qids)) == 3

    def test_duplicate_with_looser_timeout_is_not_fanned_a_failure(self):
        g1 = random_signed_graph(150, 0.15, seed=31).positive_part()
        g2 = random_signed_graph(150, 0.17, seed=32).positive_part()
        source = GraphSource.from_pair(g1, g2)
        tight = BatchQuery(
            kind="dcsga", source=source, qid="tight", k=5, timeout=0.02
        )
        loose = BatchQuery(
            kind="dcsga", source=source, qid="loose", k=5, timeout=120.0
        )
        results = BatchExecutor().run([tight, loose])
        assert results[0].status == "timeout"
        assert results[1].status == "ok"  # ran with its own budget

    def test_duplicate_explicit_qids_rejected(self, pair):
        source = GraphSource.from_pair(*pair)
        with pytest.raises(ValueError):
            BatchExecutor().run(
                [
                    BatchQuery(kind="dcsad", source=source, qid="same"),
                    BatchQuery(kind="dcsga", source=source, qid="same"),
                ]
            )

    def test_forced_process_mode_is_honoured(self, pair):
        executor = BatchExecutor(workers=1, mode="process")
        (result,) = executor.run(
            [BatchQuery(kind="dcsad", source=GraphSource.from_pair(*pair))]
        )
        assert result.status == "ok"
        assert executor.stats.mode == "process"

    def test_duplicate_queries_solved_once_within_a_run(self, pair):
        source = GraphSource.from_pair(*pair)
        queries = [
            BatchQuery(kind="dcsad", source=source, qid="one"),
            BatchQuery(kind="dcsga", source=source, qid="other"),
            BatchQuery(kind="dcsad", source=source, qid="two"),
            BatchQuery(kind="dcsad", source=source, qid="three"),
        ]
        executor = BatchExecutor()
        results = executor.run(queries)
        assert [r.status for r in results] == ["ok"] * 4
        assert [r.cached for r in results] == [False, False, True, True]
        assert executor.stats.solved == 2
        assert results[0].canonical_json().replace(
            '"one"', '"x"'
        ) == results[2].canonical_json().replace('"two"', '"x"')

    def test_serial_run_releases_shared_tables(self, pair):
        from repro.batch import executor as executor_module

        BatchExecutor().run(
            [BatchQuery(kind="dcsga", source=GraphSource.from_pair(*pair))]
        )
        assert executor_module._SHARED_PAYLOADS == {}
        assert executor_module._SHARED_PREPARED == {}

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor(mode="threads")
        with pytest.raises(ValueError):
            BatchExecutor(workers=0)

    @needs_scipy
    def test_shared_csr_reused_across_queries(self, pair, monkeypatch):
        from repro.graph.sparse import CSRAdjacency

        queries = [
            BatchQuery(
                kind="dcsga",
                source=GraphSource.from_pair(*pair),
                qid=f"ga{i}",
                backend="sparse",
                k=1 + i,
            )
            for i in range(3)
        ]
        builds = []
        original = CSRAdjacency.from_graph

        def counting(graph, order=None):
            builds.append(graph.num_vertices)
            return original(graph, order=order)

        monkeypatch.setattr(CSRAdjacency, "from_graph", counting)
        results = BatchExecutor(mode="serial").run(queries)
        assert all(r.status == "ok" for r in results)
        # One shared freeze serves all three sparse queries.
        assert len(builds) == 1

    def test_stream_query_matches_replay(self, events_file):
        from repro.stream.engine import replay_events
        from repro.stream.events import read_events

        query = BatchQuery(
            kind="stream",
            source=GraphSource.from_events(events_file),
            window=3,
            threshold=1.0,
        )
        (result,) = BatchExecutor().run([query])
        alerts, _ = replay_events(
            read_events(events_file), window=3, min_score=1.0
        )
        assert [a["step"] for a in result.payload["alerts"]] == [
            alert.step for alert in alerts
        ]

    def test_registry_source_resolves(self):
        query = BatchQuery(
            kind="dcsad",
            source=GraphSource.from_registry("DBLP/Weighted/Emerging", 0.05),
        )
        (result,) = BatchExecutor().run([query])
        assert result.status == "ok"
        assert result.payload["density"] > 0

    def test_registry_source_rejects_alpha(self):
        query = BatchQuery(
            kind="dcsad",
            source=GraphSource.from_registry("DBLP/Weighted/Emerging", 0.05),
            alpha=0.5,
        )
        (result,) = BatchExecutor().run([query])
        assert result.status == "error"
        assert "prebuilt difference graphs" in result.error


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestBatchCLI:
    @pytest.fixture
    def query_file(self, tmp_path, pair_files):
        g1, g2 = pair_files
        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                [
                    {"kind": "dcsad", "g1": g1, "g2": g2},
                    {"kind": "dcsga", "g1": g1, "g2": g2, "k": 2},
                    {"kind": "dcsad", "g1": g1, "g2": g2, "alpha": 0.5},
                ]
            )
        )
        return str(path)

    def test_plan_mode(self, query_file, capsys):
        from repro.cli import main

        assert main(["batch", query_file, "--plan"]) == 0
        out = capsys.readouterr().out
        assert "shared prep nodes" in out

    def test_run_emits_jsonl(self, query_file, capsys):
        from repro.cli import main

        assert main(["batch", query_file]) == 0
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert [r["qid"] for r in records] == ["q0", "q1", "q2"]
        assert all(r["status"] == "ok" for r in records)

    def test_out_file_and_cache_dir(self, query_file, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "results.jsonl"
        cache_dir = tmp_path / "cache"
        assert (
            main([
                "batch", query_file,
                "--out", str(out_path),
                "--cache-dir", str(cache_dir),
            ])
            == 0
        )
        first = out_path.read_text()
        capsys.readouterr()
        # Second invocation: same answers, all served from the disk cache.
        main([
            "batch", query_file,
            "--out", str(out_path),
            "--cache-dir", str(cache_dir),
        ])
        second = out_path.read_text()
        for line_a, line_b in zip(
            first.strip().splitlines(), second.strip().splitlines()
        ):
            a, b = json.loads(line_a), json.loads(line_b)
            assert not a["cached"] and b["cached"]
            assert a["payload"] == b["payload"]

    def test_failing_query_sets_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps([{"kind": "dcsad", "g1": "no1.txt", "g2": "no2.txt"}])
        )
        assert main(["batch", str(path)]) == 1

    def test_bad_query_file_exits(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "queries.json"
        path.write_text(json.dumps([{"kind": "dcsad"}]))
        with pytest.raises(SystemExit):
            main(["batch", str(path)])

    def test_wrong_json_type_exits_cleanly(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps([{"kind": "dcsad", "g1": "a", "g2": "b", "k": "3"}])
        )
        with pytest.raises(SystemExit):  # not a raw TypeError traceback
            main(["batch", str(path)])

    def test_empty_query_file_exits(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "queries.json"
        path.write_text("[]")
        with pytest.raises(SystemExit):
            main(["batch", str(path)])


# ----------------------------------------------------------------------
# cache-key canonicalisation (numerically equal params, one entry)
# ----------------------------------------------------------------------
class TestCacheKeyCanonicalisation:
    def test_int_valued_floats_share_a_key(self):
        assert cache_key("fp", {"alpha": 1}) == cache_key("fp", {"alpha": 1.0})
        assert cache_key("fp", {"k": 3}) == cache_key("fp", {"k": 3.0})
        assert cache_key(
            "fp", {"nested": {"cap": 2.0, "list": [0.0, 1.5]}}
        ) == cache_key("fp", {"nested": {"cap": 2, "list": [0, 1.5]}})

    def test_distinct_values_still_distinct(self):
        assert cache_key("fp", {"alpha": 1.0}) != cache_key(
            "fp", {"alpha": 1.5}
        )
        # Booleans are not coerced into the integer line.
        assert cache_key("fp", {"flip": True}) != cache_key("fp", {"flip": 1})

    def test_non_finite_params_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                cache_key("fp", {"alpha": bad})
            with pytest.raises(ValueError):
                cache_key("fp", {"nested": [bad]})

    def test_canonical_params_preserves_structure(self):
        from repro.batch import canonical_params

        original = {"a": 2.0, "b": [1.0, 0.25], "c": {"d": True}, "e": "x"}
        assert canonical_params(original) == {
            "a": 2, "b": [1, 0.25], "c": {"d": True}, "e": "x"
        }
        assert isinstance(canonical_params(2.0), int)
        assert original["a"] == 2.0  # input untouched

    def test_executor_hits_across_numeric_spellings(self, pair):
        """``tol_scale=1`` and ``tol_scale=1.0`` hit the same entry."""
        source = GraphSource.from_pair(*pair)
        cache = ResultCache()
        first = BatchExecutor(cache=cache)
        (a,) = first.run(
            [BatchQuery(kind="dcsga", source=source, tol_scale=1.0)]
        )
        second = BatchExecutor(cache=cache)
        (b,) = second.run(
            [BatchQuery(kind="dcsga", source=source, tol_scale=1)]
        )
        assert a.status == b.status == "ok"
        assert not a.cached and b.cached
        assert second.stats.cache_hits == 1 and second.stats.solved == 0
        assert a.payload == b.payload


# ----------------------------------------------------------------------
# SIGALRM handler restoration in the degrade path
# ----------------------------------------------------------------------
class TestAlarmHandlerRestoration:
    def test_handler_survives_setitimer_failure(self, monkeypatch):
        """If arming the timer fails after the handler swap, the host's
        handler must be restored — not leak the query-timeout handler."""
        import signal

        from repro.batch.executor import run_guarded

        def sentinel(signum, frame):  # pragma: no cover - never fired
            raise AssertionError("sentinel must not fire")

        def broken_setitimer(which, seconds, interval=0.0):
            raise ValueError("simulated non-main-thread race")

        previous = signal.signal(signal.SIGALRM, sentinel)
        try:
            monkeypatch.setattr(signal, "setitimer", broken_setitimer)
            status, value, _ = run_guarded(lambda: {"x": 1}, timeout=5.0)
            assert (status, value) == ("ok", {"x": 1})
            # The degrade path must have put the sentinel back.
            assert signal.getsignal(signal.SIGALRM) is sentinel
        finally:
            monkeypatch.undo()
            signal.signal(signal.SIGALRM, previous)

    def test_handler_restored_after_normal_run(self):
        import signal

        from repro.batch.executor import run_guarded

        def sentinel(signum, frame):  # pragma: no cover - never fired
            raise AssertionError("sentinel must not fire")

        previous = signal.signal(signal.SIGALRM, sentinel)
        try:
            status, _, _ = run_guarded(lambda: {"ok": True}, timeout=5.0)
            assert status == "ok"
            assert signal.getsignal(signal.SIGALRM) is sentinel
        finally:
            signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# disk entries are canonical bytes
# ----------------------------------------------------------------------
class TestCacheByteIdentity:
    def test_disk_entry_is_canonical_text(self, tmp_path):
        from repro.batch import canonical_text

        cache = ResultCache(tmp_path / "cache")
        entry = {"status": "ok", "payload": {"b": [1, 2], "a": 0.5}}
        cache.put("key", entry)
        on_disk = (tmp_path / "cache" / "key.json").read_text(
            encoding="utf-8"
        )
        assert on_disk == canonical_text(entry)
        assert " " not in on_disk  # compact separators, no padding

    def test_disk_round_trip_byte_identical_to_fresh_solve(
        self, tmp_path, pair
    ):
        """The documented contract: a hit replays the exact bytes a
        fresh solve would produce, across a disk round-trip."""
        source = GraphSource.from_pair(*pair)
        query = BatchQuery(kind="dcsad", source=source, qid="q")
        (fresh,) = BatchExecutor(
            cache=ResultCache(tmp_path / "cache")
        ).run([query])
        # A separate cache instance reads the entry back from disk.
        (replayed,) = BatchExecutor(
            cache=ResultCache(tmp_path / "cache")
        ).run([query])
        assert not fresh.cached and replayed.cached
        assert replayed.canonical_json() == fresh.canonical_json()

    def test_non_finite_param_fails_only_its_query(self, pair):
        """A NaN parameter is a per-query error, not a submission abort."""
        source = GraphSource.from_pair(*pair)
        bad = BatchQuery(
            kind="dcsga", source=source, qid="bad",
            tol_scale=float("nan"),
        )
        good = BatchQuery(kind="dcsga", source=source, qid="good")
        executor = BatchExecutor()
        results = executor.run([bad, good])
        assert results[0].status == "error"
        assert "non-finite" in results[0].error
        assert results[1].status == "ok"
        assert executor.stats.errors == 1
