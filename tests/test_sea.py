"""Tests for the original SEA baseline (loose convergence, expansion errors)."""

from __future__ import annotations

import pytest

from repro.affinity.sea import sea, sea_refine_solver
from repro.core.newsea import solve_all_initializations
from repro.core.seacd import seacd_from_vertex
from repro.graph.cliques import is_clique
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph


class TestBasics:
    def test_empty_start_rejected(self, triangle):
        with pytest.raises(ValueError):
            sea(triangle, {})

    def test_clique_optimum(self):
        result = sea(complete_graph(5), {0: 1.0})
        assert result.converged
        assert result.objective == pytest.approx(0.8, abs=1e-3)

    def test_isolated_vertex(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["z"])
        result = sea(graph, {"z": 1.0})
        assert result.converged
        assert result.objective == 0.0


class TestAgainstSEACD:
    @pytest.mark.parametrize("seed", range(8))
    def test_comparable_quality(self, seed):
        """SEA with refinement lands near the SEACD objective; the loose
        condition costs accuracy, not orders of magnitude."""
        gd_plus = random_signed_graph(20, 0.35, seed=seed).positive_part()
        start = sorted(gd_plus.vertices(), key=repr)[0]
        baseline = sea(gd_plus, {start: 1.0})
        ours = seacd_from_vertex(gd_plus, start)
        assert baseline.objective <= ours.objective + 0.15

    @pytest.mark.parametrize("seed", range(8))
    def test_strict_rule_has_no_expansion_errors(self, seed):
        gd_plus = random_signed_graph(25, 0.35, seed=seed).positive_part()
        start = sorted(gd_plus.vertices(), key=repr)[0]
        result = sea(
            gd_plus,
            {start: 1.0},
            shrink_rule="gradient",
            shrink_tol=1e-10,
        )
        assert result.stats.expansion_errors == 0

    def test_loose_rule_produces_errors_on_contrast_graphs(self):
        """Table VII / Fig. 2b: on heterogeneous difference graphs
        (planted heavy structure over background noise — where the
        replicator converges slowly) the loose Delta-f rule stops before
        local KKT points and the expansion stage errs at least once."""
        from repro.core.difference import difference_graph, flip
        from repro.datasets.synthetic_dblp import coauthor_snapshots

        total_errors = 0
        for seed in range(4):
            dataset = coauthor_snapshots(
                n_authors=280, n_communities=14, seed=seed
            )
            gd = difference_graph(dataset.g1, dataset.g2)
            for graph in (gd, flip(gd)):
                result = solve_all_initializations(
                    graph.positive_part(),
                    solver=sea_refine_solver(shrink_tol=1e-6),
                )
                total_errors += result.expansion_errors
        assert total_errors > 0

    def test_error_counter_matches_trace(self):
        """Errors are exactly the objective decreases after expansions."""
        gd_plus = random_signed_graph(
            30, 0.5, positive_fraction=1.0, seed=3
        )
        start = sorted(gd_plus.vertices(), key=repr)[0]
        result = sea(gd_plus, {start: 1.0})
        assert result.stats.expansion_errors >= 0
        assert result.stats.expansions >= result.stats.expansion_errors


class TestSolverAdapter:
    def test_adapter_returns_cliques(self):
        gd_plus = random_signed_graph(15, 0.4, seed=5).positive_part()
        solver = sea_refine_solver()
        for vertex in sorted(gd_plus.vertices(), key=repr)[:5]:
            x, objective, errors = solver(gd_plus, vertex)
            assert is_clique(gd_plus, x)
            assert objective >= 0.0
            assert errors >= 0

    def test_adapter_with_all_inits_driver(self):
        gd_plus = random_signed_graph(15, 0.4, seed=6).positive_part()
        ours = solve_all_initializations(gd_plus)
        theirs = solve_all_initializations(
            gd_plus, solver=sea_refine_solver()
        )
        # Both should find essentially the same best objective here.
        assert theirs.best.objective == pytest.approx(
            ours.best.objective, rel=0.05
        )
