"""Tests for Table II statistics and the reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import (
    Series,
    Table,
    format_embedding,
    format_ratio,
    yes_no,
)
from repro.analysis.stats import (
    NamedDifferenceGraph,
    dataset_stats_row,
    dataset_stats_table,
    positive_density_series,
)
from repro.graph.graph import Graph


@pytest.fixture
def entry():
    gd = Graph.from_edges(
        [("a", "b", 2.0), ("b", "c", -1.0), ("c", "d", 0.5)]
    )
    return NamedDifferenceGraph("Toy", "Weighted", "Emerging", gd)


class TestStatsRows:
    def test_row_fields(self, entry):
        row = dataset_stats_row(entry)
        assert row[0] == "Toy"
        assert row[3] == "4"       # n
        assert row[4] == "2"       # m+
        assert row[5] == "1"       # m-
        assert row[6] == "2"       # max w
        assert row[7] == "-1"      # min w
        assert float(row[8]) == pytest.approx(0.5)

    def test_row_with_no_edges(self):
        gd = Graph()
        gd.add_vertex("a")
        row = dataset_stats_row(NamedDifferenceGraph("E", "-", "-", gd))
        assert row[6] == row[7] == row[8] == "-"

    def test_table_renders_all_rows(self, entry):
        table = dataset_stats_table([entry, entry])
        text = table.render()
        assert text.count("Toy") == 2
        assert "Max w" in text

    def test_positive_density_series(self, entry):
        series = positive_density_series([entry])
        assert len(series) == 1
        label, value = series[0]
        assert "Toy" in label
        assert value == pytest.approx(2 / 4)


class TestTable:
    def test_row_arity_checked(self):
        table = Table(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only one"])

    def test_alignment(self):
        table = Table(title="T", columns=["col", "x"])
        table.add_row(["longvalue", "1"])
        lines = table.render().splitlines()
        # Header and row share column offsets.
        assert lines[1].index("x") == lines[3].index("1")

    def test_str_equals_render(self):
        table = Table(title="T", columns=["a"])
        table.add_row(["v"])
        assert str(table) == table.render()


class TestSeries:
    def test_sorted_points(self):
        series = Series(title="s", x_label="x", y_label="y")
        series.add(2.0, 5.0)
        series.add(1.0, 3.0)
        assert series.sorted_points() == [(1.0, 3.0), (2.0, 5.0)]

    def test_render_contains_values_and_bars(self):
        series = Series(title="curve", x_label="x", y_label="y")
        series.add(1.0, 10.0)
        series.add(2.0, 5.0)
        text = series.render(bar_width=10)
        assert "curve" in text
        assert "##########" in text  # the max bar
        assert "#####" in text

    def test_empty_series(self):
        series = Series(title="empty", x_label="x", y_label="y")
        assert "(no data)" in series.render()


class TestFormatters:
    def test_format_embedding(self):
        text = format_embedding([("social", 0.5), ("networks", 0.5)])
        assert text == "{social (0.50), networks (0.50)}"

    def test_format_embedding_truncates(self):
        items = [(f"w{i}", 1.0 / 10) for i in range(10)]
        text = format_embedding(items, max_entries=2)
        assert text.count("(") == 2

    def test_format_ratio(self):
        assert format_ratio(None) == "-"
        assert format_ratio(2.13) == "2.13"

    def test_yes_no(self):
        assert yes_no(True) == "Yes"
        assert yes_no(False) == "No"
