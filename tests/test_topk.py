"""Tests for top-k DCS mining (the future-work extension)."""

from __future__ import annotations

import pytest

from repro.core.topk import RankedDCS, coverage, top_k_dcsad, top_k_dcsga
from repro.graph.cliques import is_clique
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph


def _two_cliques_gd() -> Graph:
    """Two disjoint positive cliques of different strength + noise."""
    gd = complete_graph(4, weight=3.0)
    for u, v in (("x", "y"), ("y", "z"), ("x", "z")):
        gd.add_edge(u, v, 2.0)
    gd.add_edge(0, "n", -1.0)
    return gd


class TestTopKDCSGA:
    def test_k_must_be_positive(self, triangle):
        with pytest.raises(ValueError):
            top_k_dcsga(triangle, 0)

    def test_finds_both_cliques_in_order(self):
        gd = _two_cliques_gd()
        results = top_k_dcsga(gd.positive_part(), k=2)
        assert len(results) == 2
        assert results[0].subset == {0, 1, 2, 3}
        assert results[1].subset == {"x", "y", "z"}
        assert results[0].objective > results[1].objective

    def test_objectives_sorted(self):
        gd_plus = random_signed_graph(25, 0.3, seed=1).positive_part()
        results = top_k_dcsga(gd_plus, k=5)
        objectives = [r.objective for r in results]
        assert objectives == sorted(objectives, reverse=True)

    def test_diversified_supports_disjoint(self):
        gd_plus = random_signed_graph(25, 0.3, seed=2).positive_part()
        results = top_k_dcsga(gd_plus, k=5, diversify=True)
        seen = set()
        for item in results:
            assert not (item.subset & seen)
            seen |= item.subset

    def test_non_diversified_can_overlap(self):
        gd_plus = random_signed_graph(25, 0.35, seed=3).positive_part()
        loose = top_k_dcsga(gd_plus, k=8, diversify=False)
        tight = top_k_dcsga(gd_plus, k=8, diversify=True)
        assert len(loose) >= len(tight)

    def test_all_answers_are_cliques(self):
        gd_plus = random_signed_graph(20, 0.35, seed=4).positive_part()
        for item in top_k_dcsga(gd_plus, k=4):
            assert is_clique(gd_plus, item.subset)
            assert item.embedding is not None
            assert set(item.embedding) == item.subset

    def test_fewer_than_k_available(self):
        gd = Graph.from_edges([("a", "b", 1.0)])
        results = top_k_dcsga(gd, k=5)
        assert len(results) == 1


class TestTopKDCSAD:
    def test_k_must_be_positive(self, signed_graph):
        with pytest.raises(ValueError):
            top_k_dcsad(signed_graph, 0)

    def test_vertex_removal_gives_disjoint_answers(self):
        gd = _two_cliques_gd()
        results = top_k_dcsad(gd, k=3, strategy="vertices")
        assert len(results) == 2  # noise edge is negative: no third answer
        assert results[0].subset == {0, 1, 2, 3}
        assert results[1].subset == {"x", "y", "z"}
        assert not (results[0].subset & results[1].subset)

    def test_edge_removal_allows_overlap(self):
        # A triangle sharing vertex "b" with a heavy edge.
        gd = Graph.from_edges(
            [
                ("a", "b", 5.0),
                ("b", "c", 5.0),
                ("a", "c", 5.0),
                ("b", "d", 4.0),
            ]
        )
        results = top_k_dcsad(gd, k=2, strategy="edges")
        assert len(results) == 2
        assert results[0].subset == {"a", "b", "c"}
        assert results[1].subset == {"b", "d"}

    def test_unknown_strategy_rejected(self, signed_graph):
        with pytest.raises(ValueError):
            top_k_dcsad(signed_graph, 2, strategy="teleport")

    def test_stops_when_no_positive_structure(self):
        gd = Graph.from_edges([("a", "b", -1.0)])
        assert top_k_dcsad(gd, k=3) == []

    def test_objectives_decreasing(self):
        gd = random_signed_graph(30, 0.25, seed=5)
        results = top_k_dcsad(gd, k=4)
        objectives = [r.objective for r in results]
        assert objectives == sorted(objectives, reverse=True)

    def test_min_objective_threshold(self):
        gd = _two_cliques_gd()
        # The weaker clique has contrast 4.0; threshold above it.
        results = top_k_dcsad(gd, k=3, min_objective=5.0)
        assert len(results) == 1

    def test_edges_removal_stops_cleanly_when_positive_edges_run_out(self):
        """k far beyond the positive structure must stop, not raise/loop.

        After every positive edge has been mined out, the residual still
        holds vertices and negative edges; further rounds have nothing
        to return and the iteration must end cleanly.
        """
        gd = Graph.from_edges(
            [
                ("a", "b", 2.0),
                ("b", "c", 1.5),
                ("a", "c", -1.0),
                ("c", "d", -3.0),
            ]
        )
        results = top_k_dcsad(gd, k=50, strategy="edges")
        assert 1 <= len(results) < 50
        assert all(item.objective > 0 for item in results)
        # Each round consumed structure: no answer repeats.
        subsets = [frozenset(item.subset) for item in results]
        assert len(subsets) == len(set(subsets))

    def test_edges_removal_exhausts_with_negative_min_objective(self):
        """Even min_objective=-inf cannot make the loop spin or raise:
        the no-positive-edge stop fires once the structure is gone."""
        gd = _two_cliques_gd()
        results = top_k_dcsad(
            gd, k=100, strategy="edges", min_objective=float("-inf")
        )
        assert len(results) < 100
        positive_edges = sum(1 for _, _, w in gd.edges() if w > 0)
        # Every round removes at least one edge, bounding the rounds.
        assert len(results) <= gd.num_edges
        assert all(item.objective > 0 for item in results[: positive_edges])

    @pytest.mark.parametrize("strategy", ["vertices", "edges"])
    def test_random_exhaustion_terminates(self, strategy):
        for seed in range(5):
            gd = random_signed_graph(20, 0.3, seed=seed)
            results = top_k_dcsad(gd, k=10_000, strategy=strategy)
            assert all(item.objective > 0 for item in results)
            # Ranks are consecutive from 0.
            assert [item.rank for item in results] == list(
                range(len(results))
            )


class TestCoverage:
    def test_union_of_subsets(self):
        results = [
            RankedDCS(rank=0, subset={"a", "b"}, objective=2.0),
            RankedDCS(rank=1, subset={"c"}, objective=1.0),
        ]
        assert coverage(results) == {"a", "b", "c"}

    def test_empty(self):
        assert coverage([]) == set()
