"""Tests for top-k DCS mining (the future-work extension)."""

from __future__ import annotations

import pytest

from repro.core.topk import RankedDCS, coverage, top_k_dcsad, top_k_dcsga
from repro.graph.cliques import is_clique
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph


def _two_cliques_gd() -> Graph:
    """Two disjoint positive cliques of different strength + noise."""
    gd = complete_graph(4, weight=3.0)
    for u, v in (("x", "y"), ("y", "z"), ("x", "z")):
        gd.add_edge(u, v, 2.0)
    gd.add_edge(0, "n", -1.0)
    return gd


class TestTopKDCSGA:
    def test_k_must_be_positive(self, triangle):
        with pytest.raises(ValueError):
            top_k_dcsga(triangle, 0)

    def test_finds_both_cliques_in_order(self):
        gd = _two_cliques_gd()
        results = top_k_dcsga(gd.positive_part(), k=2)
        assert len(results) == 2
        assert results[0].subset == {0, 1, 2, 3}
        assert results[1].subset == {"x", "y", "z"}
        assert results[0].objective > results[1].objective

    def test_objectives_sorted(self):
        gd_plus = random_signed_graph(25, 0.3, seed=1).positive_part()
        results = top_k_dcsga(gd_plus, k=5)
        objectives = [r.objective for r in results]
        assert objectives == sorted(objectives, reverse=True)

    def test_diversified_supports_disjoint(self):
        gd_plus = random_signed_graph(25, 0.3, seed=2).positive_part()
        results = top_k_dcsga(gd_plus, k=5, diversify=True)
        seen = set()
        for item in results:
            assert not (item.subset & seen)
            seen |= item.subset

    def test_non_diversified_can_overlap(self):
        gd_plus = random_signed_graph(25, 0.35, seed=3).positive_part()
        loose = top_k_dcsga(gd_plus, k=8, diversify=False)
        tight = top_k_dcsga(gd_plus, k=8, diversify=True)
        assert len(loose) >= len(tight)

    def test_all_answers_are_cliques(self):
        gd_plus = random_signed_graph(20, 0.35, seed=4).positive_part()
        for item in top_k_dcsga(gd_plus, k=4):
            assert is_clique(gd_plus, item.subset)
            assert item.embedding is not None
            assert set(item.embedding) == item.subset

    def test_fewer_than_k_available(self):
        gd = Graph.from_edges([("a", "b", 1.0)])
        results = top_k_dcsga(gd, k=5)
        assert len(results) == 1


class TestTopKDCSAD:
    def test_k_must_be_positive(self, signed_graph):
        with pytest.raises(ValueError):
            top_k_dcsad(signed_graph, 0)

    def test_vertex_removal_gives_disjoint_answers(self):
        gd = _two_cliques_gd()
        results = top_k_dcsad(gd, k=3, strategy="vertices")
        assert len(results) == 2  # noise edge is negative: no third answer
        assert results[0].subset == {0, 1, 2, 3}
        assert results[1].subset == {"x", "y", "z"}
        assert not (results[0].subset & results[1].subset)

    def test_edge_removal_allows_overlap(self):
        # A triangle sharing vertex "b" with a heavy edge.
        gd = Graph.from_edges(
            [
                ("a", "b", 5.0),
                ("b", "c", 5.0),
                ("a", "c", 5.0),
                ("b", "d", 4.0),
            ]
        )
        results = top_k_dcsad(gd, k=2, strategy="edges")
        assert len(results) == 2
        assert results[0].subset == {"a", "b", "c"}
        assert results[1].subset == {"b", "d"}

    def test_unknown_strategy_rejected(self, signed_graph):
        with pytest.raises(ValueError):
            top_k_dcsad(signed_graph, 2, strategy="teleport")

    def test_stops_when_no_positive_structure(self):
        gd = Graph.from_edges([("a", "b", -1.0)])
        assert top_k_dcsad(gd, k=3) == []

    def test_objectives_decreasing(self):
        gd = random_signed_graph(30, 0.25, seed=5)
        results = top_k_dcsad(gd, k=4)
        objectives = [r.objective for r in results]
        assert objectives == sorted(objectives, reverse=True)

    def test_min_objective_threshold(self):
        gd = _two_cliques_gd()
        # The weaker clique has contrast 4.0; threshold above it.
        results = top_k_dcsad(gd, k=3, min_objective=5.0)
        assert len(results) == 1

    def test_edges_removal_stops_cleanly_when_positive_edges_run_out(self):
        """k far beyond the positive structure must stop, not raise/loop.

        After every positive edge has been mined out, the residual still
        holds vertices and negative edges; further rounds have nothing
        to return and the iteration must end cleanly.
        """
        gd = Graph.from_edges(
            [
                ("a", "b", 2.0),
                ("b", "c", 1.5),
                ("a", "c", -1.0),
                ("c", "d", -3.0),
            ]
        )
        results = top_k_dcsad(gd, k=50, strategy="edges")
        assert 1 <= len(results) < 50
        assert all(item.objective > 0 for item in results)
        # Each round consumed structure: no answer repeats.
        subsets = [frozenset(item.subset) for item in results]
        assert len(subsets) == len(set(subsets))

    def test_edges_removal_exhausts_with_negative_min_objective(self):
        """Even min_objective=-inf cannot make the loop spin or raise:
        the no-positive-edge stop fires once the structure is gone."""
        gd = _two_cliques_gd()
        results = top_k_dcsad(
            gd, k=100, strategy="edges", min_objective=float("-inf")
        )
        assert len(results) < 100
        positive_edges = sum(1 for _, _, w in gd.edges() if w > 0)
        # Every round removes at least one edge, bounding the rounds.
        assert len(results) <= gd.num_edges
        assert all(item.objective > 0 for item in results[: positive_edges])

    @pytest.mark.parametrize("strategy", ["vertices", "edges"])
    def test_random_exhaustion_terminates(self, strategy):
        for seed in range(5):
            gd = random_signed_graph(20, 0.3, seed=seed)
            results = top_k_dcsad(gd, k=10_000, strategy=strategy)
            assert all(item.objective > 0 for item in results)
            # Ranks are consecutive from 0.
            assert [item.rank for item in results] == list(
                range(len(results))
            )


class TestCoverage:
    def test_union_of_subsets(self):
        results = [
            RankedDCS(rank=0, subset={"a", "b"}, objective=2.0),
            RankedDCS(rank=1, subset={"c"}, objective=1.0),
        ]
        assert coverage(results) == {"a", "b", "c"}

    def test_empty(self):
        assert coverage([]) == set()


# ----------------------------------------------------------------------
# incremental maintenance (IncrementalTopK + the streaming engine's k)
# ----------------------------------------------------------------------
import random  # noqa: E402

from repro.core.monitor import mean_graph  # noqa: E402
from repro.core.topk import IncrementalTopK  # noqa: E402
from repro.core.difference import difference_graph  # noqa: E402
from repro.stream import (  # noqa: E402
    SOURCE_INCUMBENT,
    StreamingDCSEngine,
    solve_difference_topk,
)
from repro.stream.events import EdgeEvent  # noqa: E402


def _best_k_reference(offers, k, min_score=0.0):
    """The spec: best-k of all offers, deduped by subset at max score."""
    best = {}
    for subset, score in offers:
        key = frozenset(subset)
        if not key or score <= min_score:
            continue
        if key not in best or score > best[key]:
            best[key] = score
    ranked = sorted(
        best.items(),
        key=lambda item: (
            -item[1],
            len(item[0]),
            repr(sorted(item[0], key=repr)),
        ),
    )
    return ranked[:k]


class TestIncrementalTopK:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            IncrementalTopK(0)

    def test_empty_reads(self):
        topk = IncrementalTopK(3)
        assert len(topk) == 0
        assert topk.best is None
        assert topk.as_ranked() == []
        assert topk.worst_score == 0.0

    def test_offer_below_min_score_never_enters(self):
        topk = IncrementalTopK(3, min_score=1.0)
        assert not topk.offer({"a"}, 1.0)
        assert not topk.offer({"a"}, 0.5)
        assert len(topk) == 0

    def test_empty_subset_never_enters(self):
        topk = IncrementalTopK(3)
        assert not topk.offer(set(), 5.0)

    def test_duplicate_subset_keeps_best_score(self):
        topk = IncrementalTopK(3)
        assert topk.offer({"a", "b"}, 2.0)
        assert not topk.offer({"a", "b"}, 1.0)  # worse re-offer: no-op
        assert topk.scores() == [2.0]
        assert topk.offer({"a", "b"}, 3.0)  # better: upgrades in place
        assert topk.scores() == [3.0]
        assert len(topk) == 1

    def test_truncates_to_k_and_reports_worst(self):
        topk = IncrementalTopK(2)
        topk.offer({"a"}, 1.0)
        topk.offer({"b"}, 2.0)
        topk.offer({"c"}, 3.0)
        assert topk.subsets() == [frozenset({"c"}), frozenset({"b"})]
        assert topk.worst_score == 2.0
        assert not topk.offer({"d"}, 1.5)  # below the k-th: rejected

    def test_contains_by_membership(self):
        topk = IncrementalTopK(2)
        topk.offer({"a", "b"}, 1.0)
        assert {"b", "a"} in topk
        assert {"a"} not in topk

    def test_deterministic_tie_break(self):
        first = IncrementalTopK(4)
        second = IncrementalTopK(4)
        offers = [({"b"}, 1.0), ({"a"}, 1.0), ({"a", "c"}, 1.0)]
        for subset, score in offers:
            first.offer(subset, score)
        for subset, score in reversed(offers):
            second.offer(subset, score)
        assert first.subsets() == second.subsets()
        # smaller subsets first, then lexicographic
        assert first.subsets()[0] == frozenset({"a"})

    def test_replace_installs_fresh_answers(self):
        topk = IncrementalTopK(2)
        topk.offer({"old"}, 9.0)
        topk.replace([({"a"}, 1.0, None), ({"b"}, 2.0, None)])
        assert topk.subsets() == [frozenset({"b"}), frozenset({"a"})]

    def test_rescore_reorders_without_offers(self):
        topk = IncrementalTopK(3)
        topk.offer({"a"}, 3.0)
        topk.offer({"b"}, 2.0)
        changed = topk.rescore(
            lambda s: 1.0 if s == frozenset({"a"}) else 5.0
        )
        assert changed
        assert topk.subsets() == [frozenset({"b"}), frozenset({"a"})]

    def test_rescore_drops_none_and_below_floor(self):
        topk = IncrementalTopK(3, min_score=0.5)
        topk.offer({"a"}, 3.0)
        topk.offer({"b"}, 2.0)
        topk.offer({"c"}, 1.0)
        changed = topk.rescore(
            lambda s: None if s == frozenset({"a"}) else (
                0.5 if s == frozenset({"c"}) else 2.0
            )
        )
        assert changed
        assert topk.subsets() == [frozenset({"b"})]

    def test_rescore_unchanged_returns_false(self):
        topk = IncrementalTopK(2)
        topk.offer({"a"}, 3.0)
        changed = topk.rescore(lambda s: 3.0)
        assert not changed

    def test_embeddings_travel_with_candidates(self):
        topk = IncrementalTopK(2)
        topk.offer({"a"}, 1.0, embedding={"a": 1.0})
        ranked = topk.as_ranked()
        assert ranked[0].embedding == {"a": 1.0}
        # defensive copies both ways
        ranked[0].embedding["a"] = 9.0
        assert topk.as_ranked()[0].embedding == {"a": 1.0}

    @pytest.mark.parametrize("seed", range(6))
    def test_property_equals_batch_best_k(self, seed):
        """The invariant: after any offer sequence, the maintained set
        equals the best-k of all offers (dedup by subset, max score)."""
        rng = random.Random(seed)
        k = rng.randint(1, 4)
        topk = IncrementalTopK(k)
        offers = []
        vocabulary = "abcdef"
        for _ in range(200):
            size = rng.randint(1, 3)
            subset = frozenset(rng.sample(vocabulary, size))
            score = rng.choice([0.0, 0.5, 1.0, 1.5, 2.0, 2.5, rng.random()])
            offers.append((subset, score))
            topk.offer(subset, score)
            expected = _best_k_reference(offers, k)
            assert [
                (c, s) for c, s in zip(topk.subsets(), topk.scores())
            ] == expected


class _WindowOracle:
    """Replays raw events and recomputes the window top-k per step."""

    def __init__(self, universe, window, k, strategy="vertices"):
        from collections import deque

        self.state = Graph()
        self.state.add_vertices(universe)
        self.history = deque(maxlen=window)
        self.k = k
        self.strategy = strategy

    def observe(self, events):
        for event in events:
            self.state.add_edge(event.u, event.v, event.w)

    def close_step(self):
        """Expectation over the retained window, then batch top-k."""
        answers = []
        if self.history:
            expectation = mean_graph(list(self.history))
            diff = difference_graph(expectation, self.state).map_weights(
                lambda w: 0.0 if abs(w) <= 1e-9 else w
            )
            answers = solve_difference_topk(
                diff, "average_degree", self.k, strategy=self.strategy
            )
        self.history.append(self.state.copy())
        return answers


class TestEngineTopK:
    def _stream(self, seed, n_steps=14, n_vertices=24):
        from repro.datasets.streaming import burst_event_stream

        return burst_event_stream(
            n_vertices=n_vertices,
            n_steps=n_steps,
            base_p=0.1,
            reobserve_p=0.02,
            anomaly_size=4,
            anomaly_start=7,
            anomaly_duration=4,
            seed=seed,
        )

    def test_rejects_bad_topk_config(self):
        with pytest.raises(ValueError):
            StreamingDCSEngine({"a", "b"}, k=0)
        with pytest.raises(ValueError):
            StreamingDCSEngine({"a", "b"}, k=2, topk_strategy="bogus")

    @pytest.mark.parametrize("seed", range(3))
    def test_exact_maintained_topk_equals_window_recompute(self, seed):
        """Property (satellite): at every step past warmup, the
        engine's maintained top-k equals batch ``top_k_dcsad`` on a
        from-scratch rebuild of the same window."""
        from collections import defaultdict

        stream = self._stream(seed)
        k = 3
        engine = StreamingDCSEngine(
            stream.universe, window=5, min_score=1e-6, k=k
        )
        oracle = _WindowOracle(stream.universe, window=5, k=k)
        by_step = defaultdict(list)
        for event in stream.log.events:
            by_step[event.t].append(event)
        for t in range(stream.n_steps):
            for event in by_step[t]:
                engine.ingest(event)
            oracle.observe(by_step[t])
            engine.advance_to(t + 1)
            expected = oracle.close_step()
            if t < 5:
                continue
            mine = engine.current_topk()
            assert [frozenset(r.subset) for r in mine] == [
                o.subset for o in expected
            ], f"step {t}"
            for ranked, outcome in zip(mine, expected):
                assert ranked.objective == pytest.approx(
                    outcome.score, rel=1e-6, abs=1e-9
                )

    def test_affinity_topk_runs_and_ranks(self):
        stream = self._stream(1, n_vertices=16)
        engine = StreamingDCSEngine(
            stream.universe,
            window=4,
            measure="affinity",
            min_score=1e-6,
            k=2,
        )
        engine.run(stream.log.events, n_steps=stream.n_steps)
        ranking = engine.current_topk()
        scores = [item.objective for item in ranking]
        assert scores == sorted(scores, reverse=True)
        assert len(ranking) <= 2

    def test_gated_topk_alert_keys_match_exact(self):
        from repro.stream import alert_keys

        stream = self._stream(2)
        runs = {}
        for policy in ("exact", "gated"):
            engine = StreamingDCSEngine(
                stream.universe,
                window=5,
                policy=policy,
                min_score=1e-6,
                k=3,
            )
            runs[policy] = engine.run(
                stream.log.events, n_steps=stream.n_steps
            )
        assert alert_keys(runs["gated"]) == alert_keys(runs["exact"])

    def test_gated_topk_actually_holds(self):
        stream = self._stream(3, n_steps=20)
        engine = StreamingDCSEngine(
            stream.universe, window=5, policy="gated", min_score=1e-6, k=3
        )
        engine.run(stream.log.events, n_steps=stream.n_steps)
        assert engine.stats.incumbent_holds > 0

    def test_clean_step_cache_tracks_rank_membership(self):
        """Regression (satellite): a gated hold re-scores the maintained
        ranking, and the cached answer the next clean step would serve
        must mirror the re-sorted rank-0 — not the pre-hold incumbent.

        Decay drives the flip: after a spike goes silent, the window
        mean keeps rising toward the spike, so the incumbent's contrast
        shrinks step by step on *held* steps (dirty from decay edits,
        no new events, no full solve).  With window=3 the (a,b) spike
        rescores to exactly zero two silent steps later and is dropped
        by ``IncrementalTopK.rescore``; (c,d) — spiked one step later —
        is still positive and must take over rank 0 and the cache.
        """
        universe = {"a", "b", "c", "d", "e", "f"}
        engine = StreamingDCSEngine(
            universe,
            window=3,
            warmup=1,
            policy="gated",
            min_score=1e-6,
            drift_ratio=1.0,  # never fall back on drift
            hold_margin=0.0,  # never fall back on decay
            k=2,
        )
        # Quiet baseline, then staggered spikes.
        engine.ingest(EdgeEvent(0, "a", "b", 1.0))
        engine.ingest(EdgeEvent(0, "c", "d", 1.0))
        engine.ingest(EdgeEvent(1, "a", "b", 13.0))
        engine.ingest(EdgeEvent(2, "c", "d", 6.9))
        engine.advance_to(3)
        assert [sorted(r.subset) for r in engine.current_topk()] == [
            ["a", "b"], ["c", "d"],
        ]
        solves_before = engine.stats.full_solves
        holds_before = engine.stats.incumbent_holds
        # Silence.  Step 3 holds (both incumbents shrink, order keeps);
        # step 4 holds again and (a,b) rescores to zero — membership
        # changes on a hold, with no full solve anywhere.
        alerts = engine.advance_to(5)
        assert engine.stats.full_solves == solves_before
        assert engine.stats.incumbent_holds >= holds_before + 2
        assert alerts, "held steps above threshold must still alert"
        final = alerts[-1]
        assert final.source == SOURCE_INCUMBENT
        assert sorted(final.subset) == ["c", "d"]
        ranking = engine.current_topk()
        assert [sorted(r.subset) for r in ranking] == [["c", "d"]]
        # The satellite's fix pin: the clean-step cache mirror must have
        # followed the re-sort — a later clean step would serve (c,d).
        assert engine._cached is not None
        assert engine._cached.subset == frozenset({"c", "d"})
