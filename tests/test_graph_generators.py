"""Tests for random/deterministic graph generators."""

from __future__ import annotations

import math

import pytest

from repro.graph.components import is_connected
from repro.graph.generators import (
    barbell_graph,
    chung_lu_graph,
    complete_graph,
    cycle_graph,
    gnm_graph,
    gnp_graph,
    partition_blocks,
    path_graph,
    planted_clique_graph,
    planted_partition_graph,
    powerlaw_degree_sequence,
    random_signed_graph,
    random_spanning_tree,
    star_graph,
)
from repro.graph.cliques import is_clique


class TestDeterministicFamilies:
    def test_complete_graph_counts(self):
        graph = complete_graph(6, weight=2.0)
        assert graph.num_vertices == 6
        assert graph.num_edges == 15
        assert graph.total_weight() == 30.0

    def test_path_and_cycle(self):
        assert path_graph(5).num_edges == 4
        assert cycle_graph(5).num_edges == 5
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        graph = star_graph(4)
        assert graph.unweighted_degree(0) == 4
        assert graph.num_edges == 4

    def test_barbell_direct_bridge(self):
        graph = barbell_graph(4, bridge_length=1)
        # 2k vertices, two K4s (6 edges each) plus one bridge edge.
        assert graph.num_vertices == 8
        assert graph.num_edges == 13
        assert is_connected(graph)
        assert is_clique(graph, range(4))

    def test_barbell_long_bridge(self):
        graph = barbell_graph(3, bridge_length=3)
        assert graph.num_vertices == 2 * 3 + 3 - 1
        assert is_connected(graph)
        assert graph.num_edges == 2 * 3 + 3

    def test_barbell_too_small_rejected(self):
        with pytest.raises(ValueError):
            barbell_graph(1)


class TestGnp:
    def test_determinism_by_seed(self):
        a = gnp_graph(50, 0.2, seed=5)
        b = gnp_graph(50, 0.2, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = gnp_graph(50, 0.2, seed=5)
        b = gnp_graph(50, 0.2, seed=6)
        assert a != b

    def test_extreme_p(self):
        assert gnp_graph(20, 0.0, seed=1).num_edges == 0
        assert gnp_graph(10, 1.0, seed=1).num_edges == 45

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            gnp_graph(10, 1.5)

    def test_edge_count_near_expectation(self):
        graph = gnp_graph(200, 0.1, seed=7)
        expected = 0.1 * 200 * 199 / 2
        assert abs(graph.num_edges - expected) < 4 * math.sqrt(expected)

    def test_weight_function_applied(self):
        graph = gnp_graph(30, 0.3, seed=2, weight=lambda r: -1.5)
        assert all(w == -1.5 for _, _, w in graph.edges())


class TestGnm:
    def test_exact_edge_count(self):
        for m in (0, 10, 40):
            assert gnm_graph(15, m, seed=3).num_edges == m

    def test_dense_path(self):
        graph = gnm_graph(10, 44, seed=1)
        assert graph.num_edges == 44

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm_graph(5, 11)


class TestChungLu:
    def test_degrees_track_expectation(self):
        degrees = [10.0] * 100
        graph = chung_lu_graph(degrees, seed=4)
        mean_degree = (
            sum(graph.unweighted_degree(u) for u in graph.vertices()) / 100
        )
        assert 6.0 < mean_degree < 14.0

    def test_zero_degrees_isolated(self):
        graph = chung_lu_graph([0.0, 0.0, 5.0], seed=1)
        assert graph.num_edges == 0

    def test_powerlaw_sequence_bounds(self):
        degrees = powerlaw_degree_sequence(500, exponent=2.5, min_degree=2.0, seed=9)
        assert len(degrees) == 500
        assert all(d >= 2.0 for d in degrees)
        cap = math.sqrt(500) * 2.0
        assert all(d <= cap + 1e-9 for d in degrees)

    def test_powerlaw_bad_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, exponent=1.0)


class TestPlanted:
    def test_planted_clique_present(self):
        graph = planted_clique_graph(30, 6, 0.1, seed=5, clique_weight=3.0)
        assert is_clique(graph, range(6))
        assert graph.weight(0, 1) == 3.0

    def test_planted_clique_too_big_rejected(self):
        with pytest.raises(ValueError):
            planted_clique_graph(5, 6, 0.1)

    def test_planted_partition_blocks(self):
        blocks = partition_blocks([3, 4])
        assert blocks == [[0, 1, 2], [3, 4, 5, 6]]

    def test_planted_partition_density_gap(self):
        graph = planted_partition_graph([40, 40], p_in=0.5, p_out=0.01, seed=6)
        blocks = partition_blocks([40, 40])
        inside = graph.subgraph(blocks[0]).num_edges
        crossing = (
            graph.num_edges
            - inside
            - graph.subgraph(blocks[1]).num_edges
        )
        assert inside > crossing


class TestSignedAndTrees:
    def test_signed_graph_has_both_signs(self):
        graph = random_signed_graph(60, 0.3, positive_fraction=0.5, seed=8)
        signs = {w > 0 for _, _, w in graph.edges()}
        assert signs == {True, False}

    def test_signed_all_positive_fraction(self):
        graph = random_signed_graph(40, 0.3, positive_fraction=1.0, seed=8)
        assert all(w > 0 for _, _, w in graph.edges())

    def test_spanning_tree_is_tree(self):
        vertices = [f"v{i}" for i in range(25)]
        tree = random_spanning_tree(vertices, seed=10)
        assert tree.num_edges == 24
        assert is_connected(tree)
