"""Tests for DCSGreedy (Algorithm 2) and the DCSAD baselines."""

from __future__ import annotations

import pytest

from repro.core.dcsad import (
    dcs_greedy,
    dcs_greedy_pair,
    greedy_on_gd_only,
    greedy_on_gd_plus_only,
)
from repro.core.difference import difference_graph
from repro.core.exact import exact_dcsad
from repro.graph.components import is_connected
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph


class TestSpecialCases:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            dcs_greedy(Graph())

    def test_no_positive_edges_single_vertex(self):
        gd = Graph.from_edges([("a", "b", -1.0), ("b", "c", -2.0)])
        result = dcs_greedy(gd, seed=0)
        assert len(result.subset) == 1
        assert result.density == 0.0
        assert result.ratio_bound is None
        assert result.winner == "single_vertex"

    def test_edgeless_graph_single_vertex(self):
        gd = Graph()
        gd.add_vertices("abc")
        result = dcs_greedy(gd)
        assert len(result.subset) == 1
        assert result.density == 0.0

    def test_single_positive_edge(self):
        gd = Graph.from_edges([("a", "b", 5.0), ("b", "c", -1.0)])
        result = dcs_greedy(gd)
        assert result.subset == {"a", "b"}
        assert result.density == pytest.approx(5.0)


class TestKnownOptima:
    def test_positive_triangle(self, signed_graph):
        result = dcs_greedy(signed_graph)
        assert result.subset == {"a", "b", "c"}
        assert result.density == pytest.approx(6.0)

    def test_density_matches_subset(self, signed_graph):
        result = dcs_greedy(signed_graph)
        recomputed = signed_graph.total_degree(result.subset) / len(result.subset)
        assert recomputed == pytest.approx(result.density)

    def test_pair_interface(self, paper_pair):
        g1, g2 = paper_pair
        from_pair = dcs_greedy_pair(g1, g2)
        from_gd = dcs_greedy(difference_graph(g1, g2))
        assert from_pair.subset == from_gd.subset
        assert from_pair.density == pytest.approx(from_gd.density)

    def test_heavy_edge_candidate_wins_when_best(self):
        gd = complete_graph(6, weight=0.1)
        gd.add_edge("h1", "h2", 50.0)
        result = dcs_greedy(gd)
        assert result.density >= 50.0 - 1e-9


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(12))
    def test_data_dependent_ratio_bounds_optimum(self, seed):
        """Theorem 2: optimum <= ratio_bound * achieved density."""
        gd = random_signed_graph(11, 0.45, seed=seed)
        result = dcs_greedy(gd)
        if result.ratio_bound is None:
            return
        optimum = exact_dcsad(gd).density
        assert optimum <= result.ratio_bound * result.density + 1e-9

    @pytest.mark.parametrize("seed", range(12))
    def test_achieved_never_exceeds_optimum(self, seed):
        gd = random_signed_graph(11, 0.45, seed=seed)
        result = dcs_greedy(gd)
        optimum = exact_dcsad(gd).density
        assert result.density <= optimum + 1e-9

    @pytest.mark.parametrize("seed", range(12))
    def test_max_edge_is_order_n_approximation(self, seed):
        """Section IV-B: the heaviest edge is 1/(n-1)-optimal."""
        gd = random_signed_graph(10, 0.5, seed=seed)
        heaviest = gd.max_weight_edge()
        if heaviest is None or heaviest[2] <= 0:
            return
        optimum = exact_dcsad(gd).density
        n = gd.num_vertices
        assert heaviest[2] >= optimum / (n - 1) - 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_result_is_connected(self, seed):
        """Line 9 of Algorithm 2 guarantees a connected answer."""
        gd = random_signed_graph(25, 0.15, seed=seed)
        result = dcs_greedy(gd)
        assert is_connected(gd, result.subset)

    def test_candidates_recorded(self, signed_graph):
        result = dcs_greedy(signed_graph)
        assert set(result.candidate_densities) == {
            "max_edge",
            "greedy_gd",
            "greedy_gd_plus",
        }
        assert result.winner in result.candidate_densities
        best = max(result.candidate_densities.values())
        assert result.candidate_densities[result.winner] == pytest.approx(best)

    def test_refinement_never_hurts(self):
        """The connected-component refinement cannot lower density."""
        for seed in range(10):
            gd = random_signed_graph(20, 0.12, seed=seed)
            result = dcs_greedy(gd)
            pre = max(result.candidate_densities.values(), default=0.0)
            assert result.density >= pre - 1e-9


class TestBaselines:
    def test_gd_only_runs_greedy_on_gd(self, signed_graph):
        result = greedy_on_gd_only(signed_graph)
        assert result.winner == "greedy_gd"
        assert result.subset == {"a", "b", "c"}

    def test_gd_plus_only_evaluates_in_gd(self):
        """GD+-only peels the positive part but reports GD density."""
        gd = Graph.from_edges(
            [
                ("a", "b", 3.0),
                ("b", "c", 3.0),
                ("a", "c", 3.0),
                ("a", "d", 4.0),
                # In GD, d is dragged down by a negative edge to b.
                ("b", "d", -10.0),
            ]
        )
        result = greedy_on_gd_plus_only(gd)
        measured = gd.total_degree(result.subset) / len(result.subset)
        assert result.density == pytest.approx(measured)

    @pytest.mark.parametrize("seed", range(6))
    def test_dcs_greedy_dominates_both_baselines(self, seed):
        """DCSGreedy picks the best of the candidates, so it is at least
        as good as either single-graph baseline before refinement."""
        gd = random_signed_graph(30, 0.2, seed=seed)
        full = dcs_greedy(gd)
        gd_only = greedy_on_gd_only(gd)
        plus_only = greedy_on_gd_plus_only(gd)
        assert full.density >= gd_only.density - 1e-9
        assert full.density >= plus_only.density - 1e-9
