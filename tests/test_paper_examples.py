"""End-to-end tests of the paper's worked examples and reductions."""

from __future__ import annotations

import itertools

import pytest

from repro.core.dcsad import dcs_greedy
from repro.core.difference import difference_graph, difference_stats
from repro.core.exact import exact_dcsad, exact_dcsga
from repro.core.newsea import new_sea
from repro.graph.cliques import max_clique_number
from repro.graph.generators import gnp_graph
from repro.graph.graph import Graph


class TestFigure1:
    """The Section III difference-graph example (Fig. 1 shape)."""

    def test_difference_graph_has_mixed_signs(self, paper_pair):
        g1, g2 = paper_pair
        stats = difference_stats(difference_graph(g1, g2))
        assert stats.num_positive_edges > 0
        assert stats.num_negative_edges > 0

    def test_positive_part_drops_negative_edges(self, paper_pair):
        g1, g2 = paper_pair
        gd = difference_graph(g1, g2)
        plus = gd.positive_part()
        assert plus.num_edges == difference_stats(gd).num_positive_edges

    def test_cancelled_edges_absent(self, paper_pair):
        """Edges with equal weight in G1 and G2 vanish from GD — the
        defining property ED = {(u,v) | D(u,v) != 0}."""
        g1, g2 = paper_pair
        gd = difference_graph(g1, g2)
        for u, v, w1 in g1.edges():
            if g2.weight(u, v) == w1:
                assert not gd.has_edge(u, v)


class TestTheorem1Reduction:
    """The NP-hardness reduction: max clique -> DCSAD instance."""

    def _reduction(self, graph: Graph):
        """Build (G1, G2) from an unweighted G per the proof of Thm 1."""
        vertices = list(graph.vertices())
        m = graph.num_edges
        g1 = Graph()
        g2 = Graph()
        g1.add_vertices(vertices)
        g2.add_vertices(vertices)
        for u, v in itertools.combinations(vertices, 2):
            if graph.has_edge(u, v):
                g2.add_edge(u, v, 1.0)
            else:
                g1.add_edge(u, v, float(m + 1))
        return g1, g2

    @pytest.mark.parametrize("seed", range(5))
    def test_optimum_is_clique_number_minus_one(self, seed):
        graph = gnp_graph(9, 0.5, seed=seed)
        if graph.num_edges == 0:
            return
        g1, g2 = self._reduction(graph)
        gd = difference_graph(g1, g2)
        optimum = exact_dcsad(gd).density
        omega = max_clique_number(graph)
        assert optimum == pytest.approx(omega - 1.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_reports_valid_clique_value(self, seed):
        """Any DCSAD value k'-1 achieved on the reduction certifies a
        k'-clique in G (the approximation-hardness argument)."""
        graph = gnp_graph(9, 0.5, seed=seed)
        if graph.num_edges == 0:
            return
        g1, g2 = self._reduction(graph)
        gd = difference_graph(g1, g2)
        result = dcs_greedy(gd)
        omega = max_clique_number(graph)
        assert result.density <= omega - 1.0 + 1e-9


class TestTheorem3Reduction:
    """DCSGA with empty G1 equals plain affinity maximisation."""

    @pytest.mark.parametrize("seed", range(5))
    def test_empty_g1_reduces_to_motzkin_straus(self, seed):
        graph = gnp_graph(9, 0.5, seed=seed)
        if graph.num_edges == 0:
            return
        g1 = Graph()
        g1.add_vertices(graph.vertices())
        gd = difference_graph(g1, graph)
        assert gd == graph
        optimum = exact_dcsga(gd).objective
        omega = max_clique_number(graph)
        assert optimum == pytest.approx(1.0 - 1.0 / omega)


class TestSectionIIIDegenerate:
    """Section III-B: the no-positive-entry case."""

    def test_no_positive_entries_means_zero_optimum(self):
        gd = Graph.from_edges([("a", "b", -3.0), ("b", "c", -1.0)])
        assert exact_dcsad(gd).density == 0.0
        assert exact_dcsga(gd).objective == 0.0
        ad = dcs_greedy(gd)
        assert ad.density == 0.0 and len(ad.subset) == 1
        ga = new_sea(gd.positive_part())
        assert ga.objective == 0.0 and len(ga.support) == 1

    def test_single_positive_entry_gives_positive_optimum(self):
        gd = Graph.from_edges([("a", "b", 0.5), ("b", "c", -1.0)])
        assert exact_dcsad(gd).density > 0.0
        assert exact_dcsga(gd).objective > 0.0


class TestPublicAPI:
    def test_quickstart_flow(self):
        from repro import dcs_average_degree, dcs_graph_affinity

        g1 = Graph.from_edges([("a", "b", 1.0)], vertices="abcd")
        g2 = Graph.from_edges(
            [("a", "b", 3.0), ("b", "c", 2.0), ("a", "c", 2.5)],
            vertices="abcd",
        )
        ad = dcs_average_degree(g1, g2)
        assert ad.subset == {"a", "b", "c"}
        ga = dcs_graph_affinity(g1, g2)
        assert ga.support == {"a", "b", "c"}
        assert ga.is_positive_clique

    def test_alpha_parameter_threads_through(self):
        from repro import dcs_average_degree

        g1 = Graph.from_edges([("a", "b", 2.0), ("c", "d", 1.0)])
        g2 = Graph.from_edges([("a", "b", 3.0), ("c", "d", 3.0)])
        # alpha = 2: (a,b) difference 3-4 < 0; (c,d) difference 1 > 0.
        result = dcs_average_degree(g1, g2, alpha=2.0)
        assert result.subset == {"c", "d"}

    def test_version_exposed(self):
        import repro

        assert repro.__version__
