"""Tests for the min segment tree backend."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.segment_tree import MinSegmentTree


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MinSegmentTree([])

    def test_single_slot(self):
        tree = MinSegmentTree([4.2])
        assert tree.argmin() == (0, 4.2)
        assert len(tree) == 1

    def test_initial_argmin(self):
        tree = MinSegmentTree([5.0, 2.0, 8.0, 1.0, 9.0])
        assert tree.argmin() == (3, 1.0)

    def test_non_power_of_two_sizes(self):
        for n in (1, 2, 3, 5, 7, 13):
            tree = MinSegmentTree(list(range(n, 0, -1)))
            assert tree.argmin() == (n - 1, 1.0)
            assert tree.check_invariant()


class TestUpdates:
    def test_update_changes_argmin(self):
        tree = MinSegmentTree([5.0, 2.0, 8.0])
        tree.update(2, 0.5)
        assert tree.argmin() == (2, 0.5)

    def test_adjust_delta(self):
        tree = MinSegmentTree([5.0, 2.0])
        tree.adjust(0, -4.0)
        assert tree.argmin() == (0, 1.0)
        assert tree.key_of(0) == 1.0

    def test_negative_keys(self):
        tree = MinSegmentTree([0.0, 0.0, 0.0])
        tree.update(1, -3.5)
        assert tree.argmin() == (1, -3.5)

    def test_out_of_range_slot_raises(self):
        tree = MinSegmentTree([1.0])
        with pytest.raises(IndexError):
            tree.update(5, 0.0)
        with pytest.raises(IndexError):
            tree.key_of(-1)


class TestDeactivation:
    def test_deactivate_removes_from_queries(self):
        tree = MinSegmentTree([1.0, 2.0, 3.0])
        assert tree.deactivate(0) == 1.0
        assert tree.argmin() == (1, 2.0)
        assert not tree.is_active(0)
        assert tree.active_count == 2

    def test_deactivated_slot_rejects_operations(self):
        tree = MinSegmentTree([1.0, 2.0])
        tree.deactivate(0)
        with pytest.raises(KeyError):
            tree.update(0, 5.0)
        with pytest.raises(KeyError):
            tree.key_of(0)
        with pytest.raises(KeyError):
            tree.deactivate(0)

    def test_argmin_after_all_deactivated_raises(self):
        tree = MinSegmentTree([1.0, 2.0])
        tree.deactivate(0)
        tree.deactivate(1)
        with pytest.raises(IndexError):
            tree.argmin()

    def test_peel_simulation(self):
        """Simulate the greedy peel loop: repeated argmin + deactivate."""
        rng = random.Random(3)
        keys = [rng.uniform(-10, 10) for _ in range(37)]
        tree = MinSegmentTree(keys)
        seen = []
        while tree.active_count:
            slot, key = tree.argmin()
            seen.append(key)
            tree.deactivate(slot)
            # Neighbours' degrees shift after a removal.
            for _ in range(3):
                other = rng.randrange(37)
                if tree.is_active(other):
                    tree.adjust(other, rng.uniform(-1, 1))
        assert len(seen) == 37


@given(
    st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40),
    st.lists(
        st.tuples(st.integers(0, 39), st.floats(-1e6, 1e6)), max_size=40
    ),
)
@settings(max_examples=60, deadline=None)
def test_argmin_matches_reference(initial, updates):
    """Property: argmin equals the brute-force minimum of active slots."""
    tree = MinSegmentTree(initial)
    reference = list(initial)
    for slot, key in updates:
        if slot < len(reference):
            tree.update(slot, key)
            reference[slot] = key
    slot, key = tree.argmin()
    assert key == min(reference)
    assert reference[slot] == key
    assert tree.check_invariant()
