"""Tests for graph <-> affinity matrix conversions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InputMismatchError
from repro.graph.generators import random_signed_graph
from repro.graph.graph import Graph
from repro.graph.matrices import (
    affinity_matrix,
    embedding_to_vector,
    graph_from_affinity,
    vector_to_embedding,
)


class TestAffinityMatrix:
    def test_symmetric_zero_diagonal(self, signed_graph):
        matrix, order = affinity_matrix(signed_graph)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)
        assert len(order) == signed_graph.num_vertices

    def test_entries_match_weights(self):
        graph = Graph.from_edges([("a", "b", 2.0), ("b", "c", -1.0)])
        matrix, order = affinity_matrix(graph, order=["a", "b", "c"])
        assert matrix[0, 1] == 2.0
        assert matrix[1, 2] == -1.0
        assert matrix[0, 2] == 0.0

    def test_custom_order_must_match_vertices(self, triangle):
        with pytest.raises(InputMismatchError):
            affinity_matrix(triangle, order=["a", "b"])

    def test_roundtrip_through_matrix(self):
        graph = random_signed_graph(15, 0.4, seed=1)
        matrix, order = affinity_matrix(graph)
        back = graph_from_affinity(matrix, labels=order)
        assert back == graph


class TestGraphFromAffinity:
    def test_default_int_labels(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        graph = graph_from_affinity(matrix)
        assert graph.weight(0, 1) == 1.0

    def test_atol_drops_small_entries(self):
        matrix = np.array([[0.0, 1e-15], [1e-15, 0.0]])
        graph = graph_from_affinity(matrix, atol=1e-12)
        assert graph.num_edges == 0

    def test_asymmetric_rejected(self):
        matrix = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(InputMismatchError):
            graph_from_affinity(matrix)

    def test_nonzero_diagonal_rejected(self):
        matrix = np.array([[1.0, 0.0], [0.0, 0.0]])
        with pytest.raises(InputMismatchError):
            graph_from_affinity(matrix)

    def test_non_square_rejected(self):
        with pytest.raises(InputMismatchError):
            graph_from_affinity(np.zeros((2, 3)))

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(InputMismatchError):
            graph_from_affinity(np.zeros((2, 2)), labels=["only_one"])


class TestEmbeddingVectors:
    def test_roundtrip(self):
        order = ["a", "b", "c"]
        embedding = {"a": 0.25, "c": 0.75}
        vector = embedding_to_vector(embedding, order)
        assert np.allclose(vector, [0.25, 0.0, 0.75])
        assert vector_to_embedding(vector, order) == embedding

    def test_unknown_vertex_rejected(self):
        with pytest.raises(InputMismatchError):
            embedding_to_vector({"ghost": 1.0}, ["a"])

    def test_vector_length_checked(self):
        with pytest.raises(InputMismatchError):
            vector_to_embedding(np.array([1.0]), ["a", "b"])

    def test_affinity_agrees_with_quadratic_form(self):
        """f(x) via sparse dict equals x^T D x via numpy — the core identity."""
        from repro.analysis.metrics import affinity

        graph = random_signed_graph(12, 0.5, seed=3)
        matrix, order = affinity_matrix(graph)
        rng = np.random.default_rng(0)
        raw = rng.random(len(order))
        x = raw / raw.sum()
        embedding = vector_to_embedding(x, order)
        dense = float(x @ matrix @ x)
        assert affinity(graph, embedding) == pytest.approx(dense)
