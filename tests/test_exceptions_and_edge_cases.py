"""Exception hierarchy and cross-cutting edge-case tests."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import (
    ConvergenceError,
    EdgeNotFound,
    EmbeddingError,
    GraphError,
    InputMismatchError,
    ReproError,
    SelfLoopError,
    VertexNotFound,
)
from repro.graph.graph import Graph


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            GraphError,
            VertexNotFound,
            EdgeNotFound,
            SelfLoopError,
            EmbeddingError,
            ConvergenceError,
            InputMismatchError,
        ):
            assert issubclass(exc, ReproError)

    def test_lookup_errors_are_key_errors(self):
        """Callers may catch KeyError for missing vertices/edges."""
        assert issubclass(VertexNotFound, KeyError)
        assert issubclass(EdgeNotFound, KeyError)

    def test_value_like_errors_are_value_errors(self):
        assert issubclass(SelfLoopError, ValueError)
        assert issubclass(EmbeddingError, ValueError)
        assert issubclass(InputMismatchError, ValueError)

    def test_payloads_preserved(self):
        error = VertexNotFound("ghost")
        assert error.vertex == "ghost"
        error = EdgeNotFound("a", "b")
        assert (error.u, error.v) == ("a", "b")
        error = ConvergenceError("stuck", iterations=42)
        assert error.iterations == 42

    def test_single_except_clause_catches_library_errors(self):
        graph = Graph()
        caught = 0
        for action in (
            lambda: graph.neighbors("ghost"),
            lambda: graph.remove_vertex("ghost"),
            lambda: graph.add_edge("a", "a", 1.0),
        ):
            try:
                action()
            except ReproError:
                caught += 1
        assert caught == 3


class TestNonFiniteWeights:
    def test_nan_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError, match="non-finite"):
            graph.add_edge("a", "b", float("nan"))

    def test_inf_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError, match="non-finite"):
            graph.add_edge("a", "b", math.inf)
        with pytest.raises(ValueError, match="non-finite"):
            graph.add_edge("a", "b", -math.inf)

    def test_increment_to_nan_rejected(self):
        graph = Graph.from_edges([("a", "b", 1.0)])
        with pytest.raises(ValueError):
            graph.increment_edge("a", "b", float("nan"))

    def test_graph_state_unchanged_after_rejection(self):
        graph = Graph.from_edges([("a", "b", 1.0)])
        with pytest.raises(ValueError):
            graph.add_edge("a", "c", math.inf)
        assert graph.num_edges == 1
        # Endpoints of the rejected edge were not half-registered with
        # dangling adjacency.
        assert not graph.has_edge("a", "c")


class TestTinyInputs:
    def test_single_vertex_everything(self):
        """The 1-vertex universe is valid input to the full pipeline."""
        from repro.core.dcsad import dcs_greedy
        from repro.core.newsea import new_sea

        gd = Graph()
        gd.add_vertex("only")
        ad = dcs_greedy(gd)
        assert ad.subset == {"only"} and ad.density == 0.0
        ga = new_sea(gd)
        assert ga.support == {"only"} and ga.objective == 0.0

    def test_two_vertex_positive_edge(self):
        from repro.core.dcsad import dcs_greedy
        from repro.core.exact import exact_dcsad, exact_dcsga
        from repro.core.newsea import new_sea

        gd = Graph.from_edges([("a", "b", 2.0)])
        assert dcs_greedy(gd).density == pytest.approx(2.0)
        assert exact_dcsad(gd).density == pytest.approx(2.0)
        assert new_sea(gd).objective == pytest.approx(1.0, abs=1e-6)
        assert exact_dcsga(gd).objective == pytest.approx(1.0)

    def test_duplicate_heavy_edges_tie_handling(self):
        """Two equally heavy positive edges: any one is a valid answer."""
        from repro.core.dcsad import dcs_greedy

        gd = Graph.from_edges([("a", "b", 5.0), ("c", "d", 5.0)])
        result = dcs_greedy(gd)
        assert result.density == pytest.approx(5.0)
        assert result.subset in ({"a", "b"}, {"c", "d"})

    def test_extreme_weight_magnitudes(self):
        """1e12-scale weights do not break density computations."""
        from repro.core.dcsad import dcs_greedy
        from repro.core.newsea import new_sea

        gd = Graph.from_edges(
            [("a", "b", 1e12), ("b", "c", 1.0), ("c", "d", -1e12)]
        )
        assert dcs_greedy(gd).density == pytest.approx(1e12)
        assert new_sea(gd.positive_part()).objective == pytest.approx(
            5e11, rel=1e-6
        )

    def test_tiny_weight_magnitudes(self):
        from repro.core.dcsad import dcs_greedy

        gd = Graph.from_edges([("a", "b", 1e-12)])
        assert dcs_greedy(gd).density == pytest.approx(1e-12)
