"""Tests for the 2-coordinate descent shrink stage."""

from __future__ import annotations

import pytest

from repro.core.coordinate_descent import (
    coordinate_descent,
    gradient_gap,
)
from repro.analysis.metrics import affinity
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph


class TestValidation:
    def test_empty_subset_rejected(self, triangle):
        with pytest.raises(ValueError):
            coordinate_descent(triangle, {"a": 1.0}, subset=set())

    def test_support_outside_subset_rejected(self, triangle):
        with pytest.raises(ValueError):
            coordinate_descent(triangle, {"a": 1.0}, subset={"b"})

    def test_bad_sum_rejected(self, triangle):
        with pytest.raises(ValueError):
            coordinate_descent(triangle, {"a": 0.4})


class TestConvergence:
    def test_singleton_is_trivially_kkt(self, triangle):
        result = coordinate_descent(triangle, {"a": 1.0}, subset={"a"})
        assert result.converged
        assert result.iterations == 0
        assert result.x == {"a": 1.0}

    def test_two_vertex_positive_edge_balances(self):
        graph = Graph.from_edges([("a", "b", 2.0)])
        result = coordinate_descent(
            graph, {"a": 0.9, "b": 0.1}, tol=1e-12
        )
        assert result.converged
        assert result.x["a"] == pytest.approx(0.5, abs=1e-6)
        assert result.objective == pytest.approx(1.0, abs=1e-6)

    def test_uniform_on_clique_is_fixed_point(self):
        graph = complete_graph(4)
        x0 = {u: 0.25 for u in range(4)}
        result = coordinate_descent(graph, x0, tol=1e-12)
        assert result.converged
        assert result.objective == pytest.approx(0.75)
        assert result.iterations == 0

    def test_mass_moves_to_heavier_edge(self):
        """From uniform on a path, mass should abandon the weak edge."""
        graph = Graph.from_edges([("a", "b", 10.0), ("b", "c", 0.1)])
        x0 = {"a": 1 / 3, "b": 1 / 3, "c": 1 / 3}
        result = coordinate_descent(graph, x0, tol=1e-10)
        assert result.converged
        assert result.objective == pytest.approx(5.0, abs=1e-3)
        assert result.x.get("c", 0.0) == pytest.approx(0.0, abs=1e-6)

    def test_reaches_local_kkt_on_subset(self):
        from repro.core.kkt import check_kkt

        for seed in range(8):
            gd = random_signed_graph(15, 0.4, seed=seed).positive_part()
            support = sorted(gd.vertices(), key=repr)[:6]
            x0 = {u: 1.0 / len(support) for u in support}
            result = coordinate_descent(gd, x0, subset=set(support), tol=1e-9)
            assert result.converged
            report = check_kkt(gd, result.x, subset=set(support), tol=1e-6)
            assert report.is_kkt, f"seed {seed}: gap {report.gap}"

    def test_objective_never_decreases(self):
        """Each pair move strictly improves f; final >= initial."""
        for seed in range(8):
            gd = random_signed_graph(12, 0.5, seed=seed)
            vertices = sorted(gd.vertices(), key=repr)[:5]
            x0 = {u: 0.2 for u in vertices}
            before = affinity(gd, x0)
            result = coordinate_descent(gd, x0, subset=set(vertices))
            assert result.objective >= before - 1e-9

    def test_mass_conserved(self):
        for seed in range(8):
            gd = random_signed_graph(12, 0.5, seed=seed)
            vertices = sorted(gd.vertices(), key=repr)[:5]
            x0 = {u: 0.2 for u in vertices}
            result = coordinate_descent(gd, x0, subset=set(vertices))
            assert sum(result.x.values()) == pytest.approx(1.0, abs=1e-9)
            assert all(v > 0 for v in result.x.values())

    def test_support_never_escapes_subset(self):
        for seed in range(6):
            gd = random_signed_graph(15, 0.5, seed=seed)
            vertices = sorted(gd.vertices(), key=repr)
            subset = set(vertices[:5])
            x0 = {vertices[0]: 1.0}
            result = coordinate_descent(gd, x0, subset=subset)
            assert set(result.x) <= subset

    def test_iteration_cap_returns_unconverged(self):
        graph = complete_graph(6)
        x0 = {0: 0.9, 1: 0.02, 2: 0.02, 3: 0.02, 4: 0.02, 5: 0.02}
        result = coordinate_descent(graph, x0, tol=0.0, max_iterations=1)
        assert result.iterations <= 1


class TestSignedEdges:
    def test_negative_pair_edge_splits_to_endpoint(self):
        """With D(i,j) < 0 the 1-D problem is convex: optimum at 0 or C
        (the mechanism behind Theorem 5's refinement)."""
        graph = Graph.from_edges([("a", "b", -2.0), ("a", "c", 1.0), ("b", "c", 1.0)])
        x0 = {"a": 0.4, "b": 0.4, "c": 0.2}
        result = coordinate_descent(graph, x0, tol=1e-10)
        # a and b cannot both stay: their joint edge is negative.
        assert not ("a" in result.x and "b" in result.x) or (
            result.x.get("a", 0) < 1e-9 or result.x.get("b", 0) < 1e-9
        )

    def test_gradient_gap_reports_kkt(self):
        graph = Graph.from_edges([("a", "b", 2.0)])
        assert gradient_gap(graph, {"a": 0.5, "b": 0.5}) <= 1e-12
        assert gradient_gap(graph, {"a": 0.9, "b": 0.1}) > 0

    def test_gradient_gap_singleton(self, triangle):
        assert gradient_gap(triangle, {"a": 1.0}, subset={"a"}) == float("-inf")
