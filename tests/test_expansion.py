"""Tests for the SEA expansion operation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import affinity
from repro.core.coordinate_descent import coordinate_descent
from repro.core.expansion import candidate_frontier, expansion_step
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph
from repro.graph.matrices import affinity_matrix, embedding_to_vector


class TestFrontier:
    def test_frontier_excludes_support(self, triangle):
        frontier = candidate_frontier(triangle, {"a"})
        assert frontier == {"b", "c"}

    def test_frontier_of_isolated_support(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["z"])
        assert candidate_frontier(graph, {"z"}) == set()


class TestExpansionMechanics:
    def test_no_expansion_at_global_kkt(self):
        """Uniform on the max clique of K_n is a global optimum."""
        graph = complete_graph(5)
        x = {u: 0.2 for u in range(5)}
        step = expansion_step(graph, x)
        assert not step.expanded
        assert step.x == x

    def test_expansion_from_unit_vertex(self, triangle):
        """From e_u, Z is u's (positive) neighbourhood, f = 0 -> growth."""
        step = expansion_step(triangle, {"a": 1.0})
        assert step.expanded
        assert step.z_size == 2
        assert step.objective_after > 0.0
        assert sum(step.x.values()) == pytest.approx(1.0, abs=1e-9)

    def test_expansion_increases_objective_from_local_kkt(self):
        """After a shrink to a local KKT point, expansion must increase f
        (this is the property the loose SEA condition violates)."""
        for seed in range(10):
            gd = random_signed_graph(20, 0.4, seed=seed).positive_part()
            start = sorted(gd.vertices(), key=repr)[0]
            shrink = coordinate_descent(gd, {start: 1.0}, tol=1e-12)
            step = expansion_step(gd, shrink.x, objective=shrink.objective)
            if step.expanded:
                assert step.objective_after >= step.objective_before - 1e-12
                assert not step.decreased

    def test_simplex_preserved(self):
        for seed in range(10):
            gd = random_signed_graph(15, 0.5, seed=seed).positive_part()
            start = sorted(gd.vertices(), key=repr)[0]
            shrink = coordinate_descent(gd, {start: 1.0}, tol=1e-12)
            step = expansion_step(gd, shrink.x)
            assert sum(step.x.values()) == pytest.approx(1.0, abs=1e-9)
            assert all(v > 0 for v in step.x.values())

    def test_z_members_receive_mass(self, triangle):
        step = expansion_step(triangle, {"a": 1.0})
        assert step.x.get("b", 0.0) > 0
        assert step.x.get("c", 0.0) > 0


class TestAlgebraAgainstDense:
    """Verify the analytic tau formula against dense numpy evaluation."""

    @pytest.mark.parametrize("seed", range(8))
    def test_step_matches_dense_quadratic(self, seed):
        gd = random_signed_graph(12, 0.6, seed=seed).positive_part()
        if gd.num_edges == 0:
            return
        start = sorted(gd.vertices(), key=repr)[0]
        shrink = coordinate_descent(gd, {start: 1.0}, tol=1e-12)
        x = shrink.x
        f = shrink.objective
        matrix, order = affinity_matrix(gd)
        dense_x = embedding_to_vector(x, order)

        # Rebuild gamma/b from the module's definitions.
        index = {v: i for i, v in enumerate(order)}
        dx = matrix @ dense_x
        gamma = {}
        for v in order:
            if x.get(v, 0.0) > 0:
                continue
            if dx[index[v]] > f + 1e-12:
                gamma[v] = dx[index[v]] - f
        step = expansion_step(gd, x, objective=f)
        if not gamma:
            assert not step.expanded
            return
        assert step.expanded
        # The new point must equal x + tau*b for some tau in (0, 1/s]:
        # recover tau from a Z entry and check f(x + tau b) == reported.
        s = sum(gamma.values())
        b = np.zeros(len(order))
        for v, value in x.items():
            b[index[v]] = -value * s
        for v, value in gamma.items():
            b[index[v]] = value
        some_z = next(iter(gamma))
        tau = step.x[some_z] / gamma[some_z]
        assert 0 < tau <= 1.0 / s + 1e-9
        moved = dense_x + tau * b
        dense_f = float(moved @ matrix @ moved)
        assert step.objective_after == pytest.approx(dense_f, abs=1e-8)
        # And tau must maximise the quadratic on (0, 1/s]: compare
        # against a grid.
        grid = np.linspace(1e-6, 1.0 / s, 200)
        values = [
            float((dense_x + t * b) @ matrix @ (dense_x + t * b)) for t in grid
        ]
        assert dense_f >= max(values) - 1e-6
