"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph.graph import Graph
from repro.graph.io import write_edge_list


@pytest.fixture
def pair_files(tmp_path):
    g1 = Graph.from_edges(
        [("a", "b", 1.0), ("d", "e", 4.0)], vertices=["c"]
    )
    g2 = Graph.from_edges(
        [("a", "b", 3.0), ("b", "c", 2.0), ("a", "c", 2.5), ("d", "e", 1.0)]
    )
    p1 = tmp_path / "g1.txt"
    p2 = tmp_path / "g2.txt"
    write_edge_list(g1, p1)
    write_edge_list(g2, p2)
    return str(p1), str(p2)


class TestStats:
    def test_stats_runs(self, pair_files, capsys):
        code = main(["stats", *pair_files])
        assert code == 0
        out = capsys.readouterr().out
        assert "m+" in out and "m-" in out

    def test_stats_discrete(self, pair_files, capsys):
        assert main(["stats", "--discrete", *pair_files]) == 0
        assert "Discrete" in capsys.readouterr().out

    def test_discrete_alpha_conflict(self, pair_files):
        with pytest.raises(SystemExit):
            main(["stats", "--discrete", "--alpha", "2.0", *pair_files])


class TestDCSAD:
    def test_finds_triangle(self, pair_files, capsys):
        assert main(["dcsad", *pair_files]) == 0
        out = capsys.readouterr().out
        assert "a b c" in out
        assert "approximation ratio" in out

    def test_flip_finds_fading_pair(self, pair_files, capsys):
        assert main(["dcsad", "--flip", *pair_files]) == 0
        out = capsys.readouterr().out
        assert "d e" in out

    def test_top_k(self, pair_files, capsys):
        assert main(["dcsad", "--top-k", "2", *pair_files]) == 0
        out = capsys.readouterr().out
        assert "#1:" in out

    def test_cap(self, pair_files, capsys):
        assert main(["dcsad", "--cap", "0.5", *pair_files]) == 0
        out = capsys.readouterr().out
        assert "contrast" in out


class TestDCSGA:
    def test_finds_positive_clique(self, pair_files, capsys):
        assert main(["dcsga", *pair_files]) == 0
        out = capsys.readouterr().out
        assert "positive clique: True" in out
        assert "affinity contrast" in out

    def test_top_k(self, pair_files, capsys):
        assert main(["dcsga", "--top-k", "3", *pair_files]) == 0
        out = capsys.readouterr().out
        assert "#1:" in out

    def test_alpha(self, pair_files, capsys):
        assert main(["dcsga", "--alpha", "0.5", *pair_files]) == 0


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["teleport", "a", "b"])

    def test_module_invocation(self, pair_files):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "dcsad", *pair_files],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "contrast" in proc.stdout
