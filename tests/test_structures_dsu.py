"""Tests for union-find."""

from __future__ import annotations

import random

from repro.structures.dsu import DisjointSets


class TestBasics:
    def test_lazy_registration(self):
        dsu = DisjointSets()
        assert "a" not in dsu
        dsu.add("a")
        assert "a" in dsu
        assert dsu.set_count == 1

    def test_union_merges(self):
        dsu = DisjointSets("abc")
        assert dsu.union("a", "b")
        assert dsu.connected("a", "b")
        assert not dsu.connected("a", "c")
        assert dsu.set_count == 2

    def test_union_same_set_returns_false(self):
        dsu = DisjointSets()
        dsu.union("a", "b")
        assert not dsu.union("b", "a")

    def test_union_registers_unknown_items(self):
        dsu = DisjointSets()
        dsu.union("x", "y")
        assert "x" in dsu and "y" in dsu

    def test_size_of(self):
        dsu = DisjointSets("abcd")
        dsu.union("a", "b")
        dsu.union("b", "c")
        assert dsu.size_of("a") == 3
        assert dsu.size_of("d") == 1

    def test_sets_enumeration(self):
        dsu = DisjointSets("abcde")
        dsu.union("a", "b")
        dsu.union("c", "d")
        groups = sorted(sorted(group) for group in dsu.sets())
        assert groups == [["a", "b"], ["c", "d"], ["e"]]

    def test_connected_unknown_items(self):
        dsu = DisjointSets("a")
        assert not dsu.connected("a", "ghost")
        assert not dsu.connected("ghost", "phantom")


class TestRandomized:
    def test_against_reference_partition(self):
        """Compare against a naive merge-by-rebuild implementation."""
        rng = random.Random(11)
        n = 200
        dsu = DisjointSets(range(n))
        reference = {i: {i} for i in range(n)}

        def ref_find(x):
            for root, members in reference.items():
                if x in members:
                    return root
            raise AssertionError

        for _ in range(500):
            a, b = rng.randrange(n), rng.randrange(n)
            ra, rb = ref_find(a), ref_find(b)
            if ra != rb:
                reference[ra] |= reference.pop(rb)
            dsu.union(a, b)
        assert dsu.set_count == len(reference)
        for _ in range(200):
            a, b = rng.randrange(n), rng.randrange(n)
            assert dsu.connected(a, b) == (ref_find(a) == ref_find(b))

    def test_path_compression_consistency(self):
        dsu = DisjointSets(range(100))
        # Build a long chain then query every element.
        for i in range(99):
            dsu.union(i, i + 1)
        roots = {dsu.find(i) for i in range(100)}
        assert len(roots) == 1
        assert dsu.size_of(0) == 100
