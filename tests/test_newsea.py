"""Tests for NewSEA (Algorithm 5) and the all-initializations driver."""

from __future__ import annotations

import pytest

from repro.core.exact import exact_dcsga
from repro.core.newsea import new_sea, solve_all_initializations
from repro.graph.cliques import is_clique, is_positive_clique
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            new_sea(Graph())

    def test_signed_input_rejected(self, signed_graph):
        with pytest.raises(ValueError, match="positive"):
            new_sea(signed_graph)

    def test_edgeless_graph_returns_single_vertex(self):
        graph = Graph()
        graph.add_vertices("abc")
        result = new_sea(graph)
        assert len(result.support) == 1
        assert result.objective == 0.0
        assert result.is_positive_clique


class TestQuality:
    def test_clique_optimum(self):
        result = new_sea(complete_graph(5))
        assert result.objective == pytest.approx(0.8, abs=1e-3)
        assert result.support == set(range(5))

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_exact_oracle_on_small_graphs(self, seed):
        """NewSEA is a heuristic, but on small random graphs it reaches
        the global optimum essentially always; keep a small slack so the
        test documents quality without being flaky."""
        gd = random_signed_graph(10, 0.5, seed=seed)
        optimum = exact_dcsga(gd).objective
        result = new_sea(gd.positive_part())
        assert result.objective <= optimum + 1e-6
        assert result.objective >= 0.95 * optimum - 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_always_positive_clique(self, seed):
        gd = random_signed_graph(20, 0.3, seed=seed)
        result = new_sea(gd.positive_part())
        assert result.is_positive_clique
        assert is_positive_clique(gd, result.support)

    @pytest.mark.parametrize("seed", range(10))
    def test_smart_init_matches_all_inits_quality(self, seed):
        """Paper, Section V-D: the heuristic 'never impairs the quality
        of the final solution compared to trying all vertices'."""
        gd_plus = random_signed_graph(18, 0.35, seed=seed).positive_part()
        smart = new_sea(gd_plus)
        full = solve_all_initializations(gd_plus)
        assert smart.objective == pytest.approx(
            full.best.objective, abs=1e-6
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_smart_init_uses_fewer_initializations(self, seed):
        gd_plus = random_signed_graph(30, 0.25, seed=seed).positive_part()
        smart = new_sea(gd_plus)
        assert smart.initializations <= gd_plus.num_vertices
        # On these graphs the bound prunes a decent share of the work.
        assert smart.initializations < gd_plus.num_vertices or (
            smart.pruned_at_bound is None
        )


class TestAllInits:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            solve_all_initializations(Graph())

    def test_solutions_sorted_and_deduplicated(self):
        gd_plus = random_signed_graph(20, 0.35, seed=2).positive_part()
        result = solve_all_initializations(gd_plus)
        objectives = [obj for _, _, obj in result.solutions]
        assert objectives == sorted(objectives, reverse=True)
        supports = [frozenset(s) for s, _, _ in result.solutions]
        assert len(supports) == len(set(supports))

    def test_all_solutions_are_cliques(self):
        gd_plus = random_signed_graph(20, 0.35, seed=3).positive_part()
        result = solve_all_initializations(gd_plus)
        for support, x, objective in result.solutions:
            assert is_clique(gd_plus, support)
            assert set(x) == support
            assert objective >= 0.0

    def test_subsumed_dropped_by_default(self):
        gd_plus = random_signed_graph(20, 0.35, seed=4).positive_part()
        kept = solve_all_initializations(gd_plus).solutions
        supports = [s for s, _, _ in kept]
        for i, a in enumerate(supports):
            for j, b in enumerate(supports):
                if i != j:
                    assert not a < b

    def test_keep_subsumed_option(self):
        gd_plus = random_signed_graph(20, 0.35, seed=4).positive_part()
        with_drop = solve_all_initializations(gd_plus, drop_subsumed=True)
        without = solve_all_initializations(gd_plus, drop_subsumed=False)
        assert len(without.solutions) >= len(with_drop.solutions)

    def test_restricted_vertex_pool(self):
        gd_plus = random_signed_graph(15, 0.4, seed=5).positive_part()
        pool = sorted(gd_plus.vertices(), key=repr)[:4]
        result = solve_all_initializations(gd_plus, vertices=pool)
        assert result.initializations == 4

    def test_best_agrees_with_top_solution(self):
        gd_plus = random_signed_graph(15, 0.4, seed=6).positive_part()
        result = solve_all_initializations(gd_plus)
        top_support, _, top_objective = result.solutions[0]
        assert result.best.objective == pytest.approx(top_objective)
        assert result.best.support == set(top_support)
