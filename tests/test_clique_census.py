"""Tests for the Fig. 3 clique census."""

from __future__ import annotations

import pytest

from repro.analysis.clique_census import (
    census_from_all_inits,
    census_from_solutions,
    census_series,
    verify_cliques,
)
from repro.core.newsea import solve_all_initializations
from repro.graph.generators import random_signed_graph


def _solutions(*supports):
    return [(set(s), {v: 1.0 / len(s) for v in s}, 0.0) for s in supports]


class TestCensus:
    def test_counts_by_size(self):
        census = census_from_solutions(
            _solutions({"a", "b"}, {"c", "d"}, {"e", "f", "g"})
        )
        assert census.counts == {2: 2, 3: 1}
        assert census.total == 3
        assert census.max_size() == 3

    def test_subsumed_supports_not_counted(self):
        census = census_from_solutions(
            _solutions({"a", "b", "c"}, {"a", "b"})
        )
        assert census.counts == {3: 1}

    def test_at_least_filter(self):
        census = census_from_solutions(
            _solutions({"a"}, {"b", "c"}, {"d", "e", "f"})
        )
        assert census.at_least(2) == {2: 1, 3: 1}

    def test_empty(self):
        census = census_from_solutions([])
        assert census.total == 0
        assert census.max_size() == 0


class TestIntegrationWithSolver:
    def test_census_of_all_inits_run(self):
        gd_plus = random_signed_graph(25, 0.3, seed=7).positive_part()
        result = solve_all_initializations(gd_plus)
        census = census_from_all_inits(result)
        assert census.total == len(result.solutions)
        assert sum(census.counts.values()) == census.total

    def test_verify_cliques_empty_for_refined_solutions(self):
        gd_plus = random_signed_graph(25, 0.3, seed=8).positive_part()
        result = solve_all_initializations(gd_plus)
        assert verify_cliques(gd_plus, result.solutions) == []

    def test_verify_cliques_flags_non_cliques(self):
        gd_plus = random_signed_graph(25, 0.3, seed=9).positive_part()
        fake = _solutions(set(list(gd_plus.vertices())[:5]))
        offenders = verify_cliques(gd_plus, fake)
        # A random 5-subset of a sparse graph is almost surely not a clique.
        assert len(offenders) == 1 or offenders == []


class TestSeries:
    def test_series_from_census(self):
        census = census_from_solutions(
            _solutions({"a", "b"}, {"c", "d"}, {"e", "f", "g"})
        )
        series = census_series(census, "Movie", min_size=2)
        assert series.sorted_points() == [(2.0, 2.0), (3.0, 1.0)]
        assert series.x_label == "Clique Size"
