"""Tests for the Table II dataset registry."""

from __future__ import annotations

import pytest

from repro.datasets.registry import (
    BUILDERS,
    build_all,
    build_named,
    entry_name,
    entry_names,
)


@pytest.fixture(scope="module")
def entries():
    return build_all(scale=0.25)


class TestRegistry:
    def test_sixteen_rows(self, entries):
        assert len(entries) == 16

    def test_row_identities_match_paper(self, entries):
        triples = [(e.data, e.setting, e.gd_type) for e in entries]
        assert triples == [
            ("DBLP", "Weighted", "Emerging"),
            ("DBLP", "Weighted", "Disappearing"),
            ("DBLP", "Discrete", "Emerging"),
            ("DBLP", "Discrete", "Disappearing"),
            ("DM", "-", "Emerging"),
            ("DM", "-", "Disappearing"),
            ("Wiki", "-", "Consistent"),
            ("Wiki", "-", "Conflicting"),
            ("Movie", "-", "Interest-Social"),
            ("Movie", "-", "Social-Interest"),
            ("Book", "-", "Interest-Social"),
            ("Book", "-", "Social-Interest"),
            ("DBLP-C", "Weighted", "-"),
            ("DBLP-C", "Discrete", "-"),
            ("Actor", "Weighted", "-"),
            ("Actor", "Discrete", "-"),
        ]

    def test_paired_rows_are_sign_flips(self, entries):
        by_key = {(e.data, e.setting, e.gd_type): e.graph for e in entries}
        assert by_key[("DBLP", "Weighted", "Emerging")] == by_key[
            ("DBLP", "Weighted", "Disappearing")
        ].negated()
        assert by_key[("Wiki", "-", "Consistent")] == by_key[
            ("Wiki", "-", "Conflicting")
        ].negated()

    def test_actor_rows_positive_only(self, entries):
        for entry in entries:
            if entry.data == "Actor":
                stats = entry.stats()
                assert stats.num_negative_edges == 0

    def test_discrete_rows_have_small_weights(self, entries):
        for entry in entries:
            if entry.data == "DBLP" and entry.setting == "Discrete":
                stats = entry.stats()
                assert stats.max_weight <= 2.0
                assert stats.min_weight >= -2.0

    def test_family_filter(self):
        entries = build_all(scale=0.25, families=("DM",))
        assert len(entries) == 2
        assert all(e.data == "DM" for e in entries)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            build_all(families=("Netflix",))

    def test_builders_cover_all_families(self):
        assert set(BUILDERS) == {
            "DBLP",
            "DM",
            "Wiki",
            "Douban",
            "DBLP-C",
            "Actor",
        }

    def test_entry_names_cover_all_sixteen_rows(self, entries):
        names = entry_names()
        assert len(names) == 16
        assert names == [entry_name(e) for e in entries]

    def test_build_named_resolves_single_rows(self):
        entry = build_named("DBLP/Weighted/Emerging", scale=0.05)
        assert (entry.data, entry.setting, entry.gd_type) == (
            "DBLP", "Weighted", "Emerging"
        )
        flipped = build_named("Movie/-/Social-Interest", scale=0.05)
        assert flipped.data == "Movie"

    def test_build_named_unknown_name_lists_vocabulary(self):
        with pytest.raises(KeyError, match="DBLP/Weighted/Emerging"):
            build_named("Nope/-/-")
        with pytest.raises(KeyError, match="Data/Setting/GDType"):
            build_named("not-a-triple")

    def test_scale_changes_size(self):
        small = BUILDERS["DBLP"](scale=0.2)[0]
        large = BUILDERS["DBLP"](scale=0.4)[0]
        assert large.stats().num_vertices > small.stats().num_vertices
