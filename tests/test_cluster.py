"""Multi-worker cluster (`repro serve --workers N`): end-to-end.

Real subprocess servers — a module-scoped 2-worker cluster plus, where
a comparison needs one, a short-lived single-process server — driven
over HTTP.  Covered: topology health, envelope byte-identity through
the router, sharded session routing, per-worker metrics merging (JSON
and Prometheus forms), crash-respawn recovery, and clean shared-memory
teardown on SIGTERM.
"""

from __future__ import annotations

import glob
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.shm import shm_available
from repro.graph.generators import random_signed_graph
from repro.graph.io import write_edge_list
from repro.service.cluster import ClusterRouter, _shard
from repro.service.http import HttpRequest

# Four uploads so both shard buckets own graphs (cg0..cg2 hash to
# worker 1 of 2, cg3 to worker 0) — cross-owner batches need that.
N_GRAPHS = 4


def _env():
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _post(base, path, payload, timeout=120):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(base, path, timeout=30):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return response.headers, json.loads(response.read())


def _delete(base, path, timeout=30):
    request = urllib.request.Request(f"{base}{path}", method="DELETE")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get_text(base, path, timeout=30):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return response.headers, response.read().decode("utf-8")


def _start(workers):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--scale", "0.0",
            "--workers", str(workers),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    banner = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", banner)
    assert match, f"no listening banner: {banner!r}"
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def _stop(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
        proc.kill()
        proc.wait(timeout=10)


def _graph_texts():
    texts = []
    for index in range(N_GRAPHS):
        names = {i: f"v{i:02d}" for i in range(30)}
        g1 = (
            random_signed_graph(30, 0.2, seed=500 + index)
            .positive_part()
            .relabeled(names)
        )
        g2 = (
            random_signed_graph(30, 0.25, seed=600 + index)
            .positive_part()
            .relabeled(names)
        )
        for v in g1.vertices():
            g2.add_vertex(v)
        for v in g2.vertices():
            g1.add_vertex(v)
        texts.append((g1, g2))
    return texts


def _upload(base, texts, tmp_path):
    for index, (g1, g2) in enumerate(texts):
        p1 = tmp_path / f"c{index}_g1.txt"
        p2 = tmp_path / f"c{index}_g2.txt"
        write_edge_list(g1, p1)
        write_edge_list(g2, p2)
        body = _post(
            base,
            "/v1/graphs",
            {
                "name": f"cg{index}",
                "g1": p1.read_text(encoding="utf-8"),
                "g2": p2.read_text(encoding="utf-8"),
            },
        )
        assert len(body["fingerprint"]) == 64


def _strip(record, drop=("timings",)):
    return json.dumps(
        {k: v for k, v in record.items() if k not in drop},
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """A 2-worker cluster with N_GRAPHS uploaded pairs."""
    proc, base = _start(2)
    try:
        _upload(
            base, _graph_texts(), tmp_path_factory.mktemp("cluster")
        )
        yield proc, base
    finally:
        _stop(proc)


class TestTopology:
    def test_healthz_reports_both_workers(self, cluster):
        _, base = cluster
        _, health = _get(base, "/healthz")
        assert health["status"] == "ok"
        assert health["cluster"]["workers"] == 2
        workers = health["workers"]
        assert [w["worker"] for w in workers] == [0, 1]
        assert all(w["alive"] for w in workers)
        assert len({w["pid"] for w in workers}) == 2
        if shm_available():
            assert health["cluster"]["segments_announced"] >= N_GRAPHS

    def test_solves_route_to_owners(self, cluster):
        _, base = cluster
        for index in range(N_GRAPHS):
            body = _post(
                base,
                "/v1/solve",
                {"graph": f"cg{index}", "kind": "dcsad"},
            )
            assert body["status"] == "ok"
        # Every shard bucket with traffic solved something: per-worker
        # metrics show requests on each owner.
        _, metrics = _get(base, "/metrics")
        owners = {_shard(f"cg{i}", 2) for i in range(N_GRAPHS)}
        for snap in metrics["workers"]:
            if snap["worker"] in owners:
                assert snap["requests"]["total"] > 0

    def test_unknown_routes_and_errors_still_enveloped(self, cluster):
        _, base = cluster
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/v1/solve", {"graph": "nope", "kind": "dcsad"})
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read())
        assert "unknown graph" in payload["error"]


class TestByteIdentity:
    def test_cluster_envelopes_equal_single_process(
        self, cluster, tmp_path
    ):
        _, base = cluster
        texts = _graph_texts()
        single_proc, single = _start(1)
        try:
            _upload(single, texts, tmp_path)
            sweep = [
                {"graph": f"cg{i}", "kind": kind, "k": k}
                for i in range(N_GRAPHS)
                for kind in ("dcsad", "dcsga")
                for k in (1, 2)
            ]
            mine = [_post(base, "/v1/solve", q) for q in sweep]
            theirs = [_post(single, "/v1/solve", q) for q in sweep]
            assert [_strip(b["result"]) for b in mine] == [
                _strip(b["result"]) for b in theirs
            ]
            # Single-graph batches run whole on the owning worker, so
            # their records are the single process's bytes too.
            batch = {
                "queries": [
                    {"kind": "dcsga", "graph": "cg0"},
                    {"kind": "dcsad", "graph": "cg0", "k": 2},
                ]
            }
            drop = ("seconds", "profile")
            mine_b = _post(base, "/v1/batch", batch)
            theirs_b = _post(single, "/v1/batch", batch)
            assert mine_b["status"] == theirs_b["status"] == "ok"
            assert [
                _strip(r, drop) for r in mine_b["results"]
            ] == [_strip(r, drop) for r in theirs_b["results"]]
        finally:
            _stop(single_proc)


class TestBatchRouting:
    def test_cross_owner_batch_serves_all_records(self, cluster):
        """A batch naming graphs owned by *different* workers answers
        every record — announced refs are served by the primary via
        shared-memory attach, unresolvable ones split to their owners;
        either way a registered graph must never 404 in a batch."""
        _, base = cluster
        assert _shard("cg0", 2) != _shard("cg3", 2)
        body = _post(
            base,
            "/v1/batch",
            {
                "queries": [
                    {"kind": "dcsga", "graph": "cg0"},
                    {"kind": "dcsad", "graph": "cg3", "k": 2},
                    {"kind": "dcsga", "graph": "cg3", "qid": "pin"},
                ]
            },
        )
        assert body["status"] == "ok"
        assert [r["qid"] for r in body["results"]] == ["q0", "q1", "pin"]
        assert all(r["status"] == "ok" for r in body["results"])
        assert body["stats"]["queries"] == 3
        # Earlier tests may have warmed the result cache for some of
        # these queries; either way every record was answered.
        stats = body["stats"]
        assert stats["solved"] + stats["cache_hits"] == 3

    def test_split_batch_merges_to_single_process_envelope(
        self, cluster
    ):
        """Dataset refs nobody has built are un-announced, so a batch
        straddling their owners takes the router's scatter path; the
        merged envelope must match the single process byte-for-byte
        (owners cold-build the same graphs both sides)."""
        _, base = cluster
        refs = ("DBLP/Weighted/Emerging", "DBLP/Discrete/Emerging")
        assert {_shard(ref, 2) for ref in refs} == {0, 1}
        batch = {
            "queries": [
                {"kind": "dcsga", "dataset": refs[0]},
                {"kind": "dcsad", "dataset": refs[1]},
                {"kind": "dcsga", "dataset": refs[1], "qid": "pin"},
            ]
        }
        single_proc, single = _start(1)
        try:
            mine = _post(base, "/v1/batch", batch)
            theirs = _post(single, "/v1/batch", batch)
        finally:
            _stop(single_proc)
        assert mine["status"] == theirs["status"] == "ok"
        assert [r["qid"] for r in mine["results"]] == ["q0", "q1", "pin"]
        drop = ("seconds", "profile")
        assert [_strip(r, drop) for r in mine["results"]] == [
            _strip(r, drop) for r in theirs["results"]
        ]
        assert mine["stats"] == theirs["stats"]


class TestBatchSplitPlan:
    """Router-side scatter planning (no worker processes needed)."""

    def _plan(self, payload, announced=()):
        router = ClusterRouter(workers=2)
        for ref in announced:
            router._announced[ref] = {
                "ref": ref,
                "fingerprint": "f" * 64,
                "segment": "seg",
            }
        request = HttpRequest(
            method="POST",
            path="/v1/batch",
            body=json.dumps(payload).encode("utf-8"),
        )
        return router._split_batch(request)

    def test_unannounced_cross_owner_records_split_to_owners(self):
        plan = self._plan(
            {
                "queries": [
                    {"kind": "dcsga", "graph": "cg0"},
                    {"kind": "dcsad", "graph": "cg3"},
                    {"kind": "dcsga", "graph": "cg3", "qid": "pin"},
                ]
            }
        )
        assert plan is not None
        records, wrapper, targets, qids = plan
        assert targets == [
            _shard("cg0", 2),
            _shard("cg3", 2),
            _shard("cg3", 2),
        ]
        assert qids == ["q0", "q1", "pin"]
        assert wrapper is not None
        assert len(records) == 3

    def test_announced_refs_stay_with_the_primary(self):
        # The primary serves announced foreign refs by segment attach,
        # so the batch forwards whole — the zero-copy fast path.
        plan = self._plan(
            {
                "queries": [
                    {"kind": "dcsga", "graph": "cg0"},
                    {"kind": "dcsad", "graph": "cg3"},
                ]
            },
            announced=("cg3",),
        )
        assert plan is None

    def test_unsplittable_batches_forward_whole(self):
        # Single owner: nothing to split.
        assert (
            self._plan(
                {
                    "queries": [
                        {"kind": "dcsga", "graph": "cg0"},
                        {"kind": "dcsad", "graph": "cg0", "k": 2},
                    ]
                }
            )
            is None
        )
        # Missing refs, malformed records, duplicate qids: one worker
        # must render the same error envelope a single process would.
        assert (
            self._plan(
                {
                    "queries": [
                        {"kind": "dcsga", "graph": "cg0"},
                        {"kind": "dcsad"},
                        {"kind": "dcsga", "graph": "cg3"},
                    ]
                }
            )
            is None
        )
        assert (
            self._plan(
                {"queries": [{"kind": "dcsga", "graph": "cg0"}, "nope"]}
            )
            is None
        )
        assert (
            self._plan(
                {
                    "queries": [
                        {"kind": "dcsga", "graph": "cg0", "qid": "a"},
                        {"kind": "dcsad", "graph": "cg3", "qid": "a"},
                    ]
                }
            )
            is None
        )

    def test_positional_qids_skip_explicit_names(self):
        plan = self._plan(
            [
                {"kind": "dcsga", "graph": "cg0", "qid": "q1"},
                {"kind": "dcsad", "graph": "cg3"},
                {"kind": "dcsga", "graph": "cg3"},
            ]
        )
        assert plan is not None
        records, wrapper, targets, qids = plan
        assert wrapper is None
        # Exactly how assign_qids fills blanks in a single process.
        assert qids == ["q1", "q0", "q2"]


class TestSessions:
    def test_sessions_shard_and_route_by_sid(self, cluster):
        _, base = cluster
        sids = []
        for _ in range(4):
            body = _post(
                base,
                "/v1/stream/sessions",
                {
                    "universe": [f"v{i:02d}" for i in range(6)],
                    "window": 3,
                    "threshold": 1e9,
                },
            )
            sids.append(body["session"])
        # Graphless creates round-robin across workers; sids carry the
        # owning worker's routing prefix.
        prefixes = {sid.split("-", 1)[0] for sid in sids}
        assert prefixes == {"w0", "w1"}
        for step, sid in enumerate(sids):
            body = _post(
                base,
                f"/v1/stream/sessions/{sid}/events",
                {
                    "events": [
                        {"t": step, "u": "v00", "v": "v01", "w": 1.0}
                    ],
                    "advance_to": step + 1,
                },
            )
            assert body["status"] == "ok"
            assert body["session"] == sid
        # The fan-out listing sees every tenant wherever it lives.
        _, listing = _get(base, "/v1/stream/sessions")
        assert set(sids) <= set(listing["sessions"])
        for sid in sids:
            body = _delete(base, f"/v1/stream/sessions/{sid}")
            assert body["closed"] == sid

    def test_unknown_sid_is_enveloped_404(self, cluster):
        _, base = cluster
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                base,
                "/v1/stream/sessions/w9-zzz/events",
                {"events": [{"t": 0, "u": "a", "v": "b", "w": 1.0}]},
            )
        assert excinfo.value.code == 404


class TestMetricsAggregation:
    def test_json_form_merges_per_worker_snapshots(self, cluster):
        _, base = cluster
        _, metrics = _get(base, "/metrics")
        assert metrics["cluster"]["workers"] == 2
        assert [s["worker"] for s in metrics["workers"]] == [0, 1]
        aggregate = metrics["aggregate"]
        assert aggregate["requests"]["total"] == sum(
            s["requests"]["total"] for s in metrics["workers"]
        )
        if shm_available():
            # Prepare-once: across the cluster each upload cold-built
            # exactly once (re-uploads by other tests would add more).
            assert (
                aggregate["warm"]["cold_builds"]
                >= metrics["workers"][0]["warm"]["cold_builds"]
            )

    def test_prometheus_form_labels_workers(self, cluster):
        _, base = cluster
        headers, text = _get_text(base, "/metrics?format=prometheus")
        assert "text/plain" in headers["Content-Type"]
        assert 'worker="0"' in text
        assert 'worker="1"' in text
        # One HELP/TYPE block per family even with two label sets.
        assert text.count("# TYPE repro_requests_total ") == 1


@pytest.mark.skipif(
    not shm_available(), reason="crash-reattach exercises shared segments"
)
class TestSupervision:
    def test_worker_crash_respawns_and_recovers(self, cluster):
        _, base = cluster
        _, health = _get(base, "/healthz")
        victim = health["workers"][1]["pid"]
        os.kill(victim, signal.SIGKILL)

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, health = _get(base, "/healthz")
            if (
                health["cluster"]["restarts"] >= 1
                and all(w["alive"] for w in health["workers"])
                # pid updates when the replacement reports ready — the
                # moment the worker is actually serving again.
                and health["workers"][1]["pid"] != victim
            ):
                break
            time.sleep(0.2)
        assert health["cluster"]["restarts"] >= 1
        assert all(w["alive"] for w in health["workers"])
        assert health["workers"][1]["pid"] != victim

        # The respawned worker replays the announce log: traffic for
        # every graph — whoever owns it — keeps flowing, served via
        # attach instead of a rebuild wherever the segment survives.
        for index in range(N_GRAPHS):
            body = _post(
                base,
                "/v1/solve",
                {"graph": f"cg{index}", "kind": "dcsga"},
            )
            assert body["status"] == "ok"


class TestTeardown:
    def test_sigterm_unlinks_all_segments(self, tmp_path):
        proc, base = _start(2)
        try:
            _upload(base, _graph_texts(), tmp_path)
            if shm_available():
                _, health = _get(base, "/healthz")
                assert health["cluster"]["segments_announced"] >= 1
        finally:
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=30)
        assert returncode == 0
        if os.path.isdir("/dev/shm"):
            assert glob.glob(f"/dev/shm/rp{proc.pid}_*") == []
