"""Tests for the long-running query service (`repro/service/`).

Most routes are exercised in-process through
:meth:`~repro.service.app.ServiceApp.request` — the HTTP shell is a
thin wrapper over the same :meth:`handle` — with one end-to-end socket
test covering the shell itself.  The envelope contract under test: a
``/v1/solve`` result record equals the engine envelope's
``to_record()`` byte-for-byte (minus out-of-band timings), which is
exactly what ``repro dcsad --json`` prints.
"""

from __future__ import annotations

import asyncio
import io
import json
import time

import pytest

from repro.core.difference import assemble_difference
from repro.engine.envelope import SolveRequest, solve
from repro.engine.prepared import PreparedGraph
from repro.exceptions import InputMismatchError
from repro.graph.generators import random_signed_graph
from repro.graph.io import write_edge_list
from repro.service import GraphRegistry, LatencyWindow, ServiceApp
from repro.stream.events import EdgeEvent, EventLog, write_events


# ----------------------------------------------------------------------
# shared inputs
# ----------------------------------------------------------------------
def _edge_text(graph) -> str:
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    return buffer.getvalue()


@pytest.fixture
def pair_texts():
    names = {i: f"v{i:02d}" for i in range(30)}
    g1 = random_signed_graph(30, 0.2, seed=5).positive_part().relabeled(names)
    g2 = random_signed_graph(30, 0.25, seed=6).positive_part().relabeled(names)
    for v in g1.vertices():
        g2.add_vertex(v)
    for v in g2.vertices():
        g1.add_vertex(v)
    return _edge_text(g1), _edge_text(g2), g1, g2


@pytest.fixture
def app(pair_texts):
    app = ServiceApp(scale=0.0)
    g1_text, g2_text, _, _ = pair_texts
    status, _ = app.request(
        "POST",
        "/v1/graphs",
        {"name": "uploaded", "g1": g1_text, "g2": g2_text},
    )
    assert status == 200
    return app


@pytest.fixture
def events_text():
    events = [
        EdgeEvent(t, "a", "b", 1.0 + (4.0 if 6 <= t <= 7 else 0.0))
        for t in range(10)
    ]
    log = EventLog(events=events, declared={"a", "b", "c"})
    buffer = io.StringIO()
    write_events(log, buffer)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# the graph registry LRU
# ----------------------------------------------------------------------
class TestGraphRegistry:
    def test_dataset_resolution_and_warm_hits(self):
        registry = GraphRegistry(capacity=4, scale=0.0)
        first = registry.resolve("DM/-/Emerging")
        second = registry.resolve("DM/-/Emerging")
        assert first is second  # the warm preparation is shared
        assert registry.warm_hits == 1
        assert registry.resolutions == 2
        assert registry.warm_count == 1

    def test_unknown_name_lists_vocabulary(self):
        registry = GraphRegistry(scale=0.0)
        with pytest.raises(KeyError, match="resolvable names"):
            registry.resolve("no/such/graph")

    def test_lru_evicts_least_recently_used(self, pair_texts):
        registry = GraphRegistry(capacity=2, scale=0.0)
        g1_text, g2_text, _, _ = pair_texts
        registry.register_pair("up", g1_text, g2_text)
        registry.resolve("DM/-/Emerging")
        registry.resolve("up")  # refresh: DM is now the oldest
        registry.resolve("DM/-/Disappearing")  # evicts DM/-/Emerging
        assert registry.evictions == 1
        assert registry.warm_names() == ["up", "DM/-/Disappearing"]
        # An evicted upload is rebuilt from its retained source.
        registry.resolve("up")
        assert registry.resolve("up").gd.num_vertices == 30

    def test_upload_name_validation(self, pair_texts):
        registry = GraphRegistry(scale=0.0)
        g1_text, g2_text, _, _ = pair_texts
        for bad in ("", "has space", "a/b"):
            with pytest.raises(InputMismatchError):
                registry.register_pair(bad, g1_text, g2_text)

    def test_upload_transform_changes_fingerprint(self, pair_texts):
        registry = GraphRegistry(scale=0.0)
        g1_text, g2_text, g1, g2 = pair_texts
        plain = registry.register_pair("plain", g1_text, g2_text)
        flipped = registry.register_pair(
            "flipped", g1_text, g2_text, flip=True
        )
        assert plain.fingerprint != flipped.fingerprint
        expected = PreparedGraph(assemble_difference(g1, g2)).fingerprint
        assert plain.fingerprint == expected

    def test_forget(self, pair_texts):
        registry = GraphRegistry(scale=0.0)
        g1_text, g2_text, _, _ = pair_texts
        registry.register_pair("up", g1_text, g2_text)
        assert registry.forget("up")
        assert not registry.forget("up")
        with pytest.raises(KeyError):
            registry.resolve("up")


# ----------------------------------------------------------------------
# introspection routes
# ----------------------------------------------------------------------
class TestIntrospectionRoutes:
    def test_healthz(self, app):
        status, body = app.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["warm_prepared"] == 1  # the uploaded pair

    def test_datasets_lists_uploads_and_registry(self, app):
        status, body = app.request("GET", "/v1/datasets")
        assert status == 200
        assert "uploaded" in body["graphs"]
        assert "DBLP/Weighted/Emerging" in body["graphs"]
        assert body["warm"] == ["uploaded"]

    def test_metrics_counts_requests_and_cache(self, app):
        app.request("POST", "/v1/solve", {"graph": "uploaded"})
        app.request("POST", "/v1/solve", {"graph": "uploaded"})
        status, body = app.request("GET", "/metrics")
        assert status == 200
        assert body["requests"]["by_route"]["/v1/solve"] == 2
        assert body["queries"]["ok"] == 2
        assert body["cache"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}
        assert body["warm"]["prepared"] == 1
        assert body["latency"]["observations"] == 2
        assert body["latency"]["p95_seconds"] >= body["latency"]["p50_seconds"]

    def test_unknown_route_and_wrong_method(self, app):
        assert app.request("GET", "/nope")[0] == 404
        assert app.request("GET", "/v1/solve")[0] == 405
        assert app.request("POST", "/healthz")[0] == 405


# ----------------------------------------------------------------------
# the solve route
# ----------------------------------------------------------------------
class TestSolveRoute:
    def test_solve_record_matches_engine_envelope(self, app, pair_texts):
        """The service's result record is the engine's ``to_record()``
        — canonical payload byte-identical, only timings out of band.

        The expected graph is re-parsed from the same uploaded text
        (what ``repro dcsad --json`` would read from files): float
        summation order follows construction order, so byte-identity
        holds between equal construction paths.
        """
        from repro.graph.io import read_edge_list

        g1_text, g2_text, _, _ = pair_texts
        g1 = read_edge_list(io.StringIO(g1_text))
        g2 = read_edge_list(io.StringIO(g2_text))
        for v in g1.vertices():
            g2.add_vertex(v)
        for v in g2.vertices():
            g1.add_vertex(v)
        for kind, measure in (("dcsad", "average_degree"),
                              ("dcsga", "affinity")):
            status, body = app.request(
                "POST", "/v1/solve", {"graph": "uploaded", "kind": kind}
            )
            assert status == 200 and body["status"] == "ok"
            prepared = PreparedGraph(assemble_difference(g1, g2))
            prepared.fingerprint
            expected = solve(SolveRequest(measure=measure), prepared)
            strip = lambda r: {
                k: v for k, v in r.items() if k != "timings"
            }
            assert json.dumps(
                strip(body["result"]), sort_keys=True
            ) == json.dumps(strip(expected.to_record()), sort_keys=True)
            assert body["fingerprint"] == prepared.fingerprint

    def test_cached_hit_is_byte_identical(self, app):
        _, first = app.request(
            "POST", "/v1/solve", {"graph": "uploaded", "kind": "dcsga"}
        )
        _, second = app.request(
            "POST", "/v1/solve", {"graph": "uploaded", "kind": "dcsga"}
        )
        assert not first["cached"] and second["cached"]
        strip = lambda r: {k: v for k, v in r.items() if k != "timings"}
        assert strip(second["result"]) == strip(first["result"])

    def test_numeric_spellings_share_the_cache(self, app):
        _, first = app.request(
            "POST", "/v1/solve", {"graph": "uploaded", "k": 2}
        )
        _, second = app.request(
            "POST", "/v1/solve", {"graph": "uploaded", "k": 2.0}
        )
        assert not first["cached"] and second["cached"]

    def test_top_k(self, app):
        status, body = app.request(
            "POST",
            "/v1/solve",
            {"graph": "uploaded", "kind": "dcsad", "k": 2},
        )
        assert status == 200
        assert len(body["result"]["detail"]["results"]) <= 2

    def test_dataset_reference(self):
        app = ServiceApp(scale=0.0)
        status, body = app.request(
            "POST", "/v1/solve", {"graph": "DM/-/Emerging"}
        )
        assert status == 200 and body["status"] == "ok"

    def test_validation_errors(self, app):
        assert app.request("POST", "/v1/solve", [1, 2])[0] == 400
        assert app.request("POST", "/v1/solve", {})[0] == 400
        assert (
            app.request(
                "POST", "/v1/solve", {"graph": "uploaded", "kind": "nope"}
            )[0]
            == 400
        )
        assert (
            app.request(
                "POST",
                "/v1/solve",
                {"graph": "uploaded", "backend": "no-such-backend"},
            )[0]
            == 400
        )
        assert (
            app.request(
                "POST", "/v1/solve", {"graph": "uploaded", "k": 1.5}
            )[0]
            == 400
        )
        assert (
            app.request(
                "POST",
                "/v1/solve",
                {"graph": "uploaded", "kind": "dcsad", "strategy": "nope"},
            )[0]
            == 400
        )

    def test_unknown_graph_is_404(self, app):
        status, body = app.request(
            "POST", "/v1/solve", {"graph": "missing"}
        )
        assert status == 404
        assert "missing" in body["error"]

    def test_timeout_answers_504(self, app, monkeypatch):
        import repro.service.app as app_module

        def slow_solve(request, prepared):
            time.sleep(0.4)
            raise AssertionError("deadline must answer first")

        monkeypatch.setattr(app_module, "solve", slow_solve)
        start = time.perf_counter()
        status, body = app.request(
            "POST",
            "/v1/solve",
            {"graph": "uploaded", "kind": "dcsga", "timeout": 0.05},
        )
        elapsed = time.perf_counter() - start
        assert status == 504
        assert body["status"] == "timeout"
        assert elapsed < 0.4  # answered before the solve finished
        assert app.metrics.queries_timeout == 1


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_overflow_answers_429(self, app, monkeypatch):
        import repro.service.app as app_module

        real_solve = app_module.solve

        def slow_solve(request, prepared):
            time.sleep(0.3)
            return real_solve(request, prepared)

        monkeypatch.setattr(app_module, "solve", slow_solve)
        app.max_pending = 1

        async def main():
            # Two concurrent requests: one occupies the single worker,
            # one fills the queue; the third must be refused.
            first = asyncio.ensure_future(
                app.dispatch(
                    "POST", "/v1/solve", {"graph": "uploaded", "k": 2}
                )
            )
            await asyncio.sleep(0.05)  # consumer picks the first job up
            second = asyncio.ensure_future(
                app.dispatch(
                    "POST", "/v1/solve", {"graph": "uploaded", "k": 3}
                )
            )
            await asyncio.sleep(0.05)  # second job now fills the queue
            third = await app.dispatch(
                "POST", "/v1/solve", {"graph": "uploaded", "k": 4}
            )
            responses = await asyncio.gather(first, second)
            return [r.status for r in responses], third

        statuses, rejected = asyncio.run(main())
        assert statuses == [200, 200]
        assert rejected.status == 429
        assert "Retry-After" in rejected.headers
        assert app.metrics.rejected == 1

    def test_rejections_counted_in_metrics(self, app):
        app.metrics.rejected = 3
        _, body = app.request("GET", "/metrics")
        assert body["queries"]["rejected"] == 3


# ----------------------------------------------------------------------
# batch and replay routes
# ----------------------------------------------------------------------
class TestBatchRoute:
    def test_graph_refs_and_dedup(self, app):
        status, body = app.request(
            "POST",
            "/v1/batch",
            {
                "queries": [
                    {"kind": "dcsad", "graph": "uploaded"},
                    {"kind": "dcsga", "graph": "uploaded"},
                    {"kind": "dcsad", "graph": "uploaded"},
                ]
            },
        )
        assert status == 200 and body["status"] == "ok"
        assert [r["status"] for r in body["results"]] == ["ok"] * 3
        assert body["stats"]["preps_built"] == 1
        assert body["stats"]["cache_hits"] == 1  # the duplicate dcsad

    def test_bare_array_body(self, app):
        status, body = app.request(
            "POST", "/v1/batch", [{"kind": "dcsad", "graph": "uploaded"}]
        )
        assert status == 200
        assert body["results"][0]["qid"] == "q0"

    def test_batch_shares_the_solve_cache(self, app):
        app.request(
            "POST", "/v1/solve", {"graph": "uploaded", "kind": "dcsga"}
        )
        status, body = app.request(
            "POST", "/v1/batch", [{"kind": "dcsga", "graph": "uploaded"}]
        )
        assert status == 200
        assert body["results"][0]["cached"] is True

    def test_partial_status_on_bad_query(self, app):
        status, body = app.request(
            "POST",
            "/v1/batch",
            [
                {"kind": "dcsad", "graph": "uploaded"},
                # Prep-level failure: the registry builder rejects the
                # transform for dataset sources — per-query error.
                {
                    "kind": "dcsad",
                    "dataset": "DM/-/Emerging",
                    "alpha": 0.5,
                },
            ],
        )
        assert status == 200
        assert body["status"] == "partial"
        assert body["results"][0]["status"] == "ok"
        assert body["results"][1]["status"] == "error"

    def test_file_and_event_sources_rejected(self, app):
        """Network clients must not be able to make the server read
        local files — the CLI's path vocabulary stops at the socket."""
        for record in (
            {"kind": "dcsad", "g1": "/etc/hostname", "g2": "/etc/hostname"},
            {"kind": "stream", "events": "/etc/hostname"},
        ):
            status, body = app.request("POST", "/v1/batch", [record])
            assert status == 400
            assert "server-side files" in body["error"]

    def test_oversized_dataset_scale_rejected(self, app):
        status, body = app.request(
            "POST",
            "/v1/batch",
            [{"kind": "dcsad", "dataset": "DM/-/Emerging", "scale": 100}],
        )
        assert status == 400
        assert "scale" in body["error"]

    def test_unknown_graph_ref_is_404(self, app):
        assert (
            app.request(
                "POST", "/v1/batch", [{"kind": "dcsad", "graph": "ghost"}]
            )[0]
            == 404
        )

    def test_empty_batch_rejected(self, app):
        assert app.request("POST", "/v1/batch", [])[0] == 400
        assert app.request("POST", "/v1/batch", {"queries": []})[0] == 400


class TestStreamReplayRoute:
    def test_replay_and_cache(self, app, events_text):
        request = {"events": events_text, "window": 3, "threshold": 1.0}
        status, body = app.request("POST", "/v1/stream/replay", request)
        assert status == 200 and body["status"] == "ok"
        assert body["result"]["alerts"]
        assert body["result"]["stats"]["steps"] == 10
        status, again = app.request("POST", "/v1/stream/replay", request)
        assert again["cached"] is True
        assert again["result"] == body["result"]

    def test_replay_matches_cli_replay_semantics(self, app, events_text):
        from repro.stream.engine import replay_events
        from repro.stream.events import read_events

        log = read_events(io.StringIO(events_text))
        alerts, _ = replay_events(
            log,
            n_steps=None,
            window=3,
            measure="average_degree",
            warmup=None,
            backend="python",
            policy="exact",
            min_score=1.0,
            tol_scale=1e-2,
        )
        _, body = app.request(
            "POST",
            "/v1/stream/replay",
            {"events": events_text, "window": 3, "threshold": 1.0},
        )
        served = body["result"]["alerts"]
        assert [a["step"] for a in served] == [a.step for a in alerts]
        assert [a["score"] for a in served] == [a.score for a in alerts]

    def test_validation(self, app):
        assert app.request("POST", "/v1/stream/replay", {})[0] == 400
        assert (
            app.request("POST", "/v1/stream/replay", {"events": "  "})[0]
            == 400
        )
        assert (
            app.request(
                "POST",
                "/v1/stream/replay",
                {"events": "0 a b 1.0\n", "policy": "nope"},
            )[0]
            == 400
        )


# ----------------------------------------------------------------------
# uploads
# ----------------------------------------------------------------------
class TestUploadRoute:
    def test_upload_reports_shape(self, pair_texts):
        app = ServiceApp(scale=0.0)
        g1_text, g2_text, _, _ = pair_texts
        status, body = app.request(
            "POST",
            "/v1/graphs",
            {"name": "pair", "g1": g1_text, "g2": g2_text, "alpha": 0.5},
        )
        assert status == 200
        assert body["vertices"] == 30
        assert body["warm_prepared"] == 1
        assert len(body["fingerprint"]) == 64

    def test_upload_validation(self, pair_texts):
        app = ServiceApp(scale=0.0)
        g1_text, g2_text, _, _ = pair_texts
        assert app.request("POST", "/v1/graphs", [1])[0] == 400
        assert (
            app.request("POST", "/v1/graphs", {"name": "x", "g1": g1_text})[
                0
            ]
            == 400
        )
        assert (
            app.request(
                "POST",
                "/v1/graphs",
                {"name": "a/b", "g1": g1_text, "g2": g2_text},
            )[0]
            == 400
        )
        assert (
            app.request(
                "POST",
                "/v1/graphs",
                {"name": "x", "g1": "not an edge list", "g2": g2_text},
            )[0]
            == 400
        )


# ----------------------------------------------------------------------
# metrics helpers
# ----------------------------------------------------------------------
class TestLatencyWindow:
    def test_quantiles_nearest_rank(self):
        window = LatencyWindow(capacity=100)
        for value in range(1, 101):
            window.add(float(value))
        assert window.quantile(0.0) == 1.0
        assert window.quantile(0.50) == 51.0
        assert window.quantile(0.95) == 96.0
        assert window.quantile(1.0) == 100.0

    def test_ring_keeps_recent(self):
        window = LatencyWindow(capacity=4)
        for value in (10.0, 10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0):
            window.add(value)
        assert window.quantile(0.95) == 1.0  # old tens rolled out
        assert window.count == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyWindow(capacity=0)
        with pytest.raises(ValueError):
            LatencyWindow().quantile(1.5)

    def test_wraparound_quantiles_reflect_retained_window_only(self):
        window = LatencyWindow(capacity=8)
        # 3x capacity observations: only the last 8 (93..100) remain.
        for value in range(77, 101):
            window.add(float(value))
        assert window.count == 24
        assert window.quantile(0.0) == 93.0
        assert window.quantile(1.0) == 100.0
        assert window.quantile(0.5) == 97.0  # nearest rank: index 4 of 8

    def test_nearest_rank_edges(self):
        window = LatencyWindow(capacity=5)
        for value in (5.0, 3.0, 1.0, 4.0, 2.0):
            window.add(value)
        # q=0 is the minimum, q=1 clamps to the maximum (index
        # int(1.0 * 5) == 5 must clamp to 4, not raise).
        assert window.quantile(0.0) == 1.0
        assert window.quantile(1.0) == 5.0
        # one observation past capacity: 5.0 (the oldest) rolls out
        window.add(0.5)
        assert window.quantile(1.0) == 4.0

    def test_capacity_one(self):
        window = LatencyWindow(capacity=1)
        assert window.quantile(0.5) == 0.0  # empty window
        window.add(7.0)
        window.add(9.0)
        assert window.count == 2
        for q in (0.0, 0.5, 1.0):
            assert window.quantile(q) == 9.0


class TestServiceMetricsThreadSafety:
    def test_concurrent_mutation_keeps_counts_exact(self):
        import threading

        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        threads_n, per_thread = 8, 500

        def hammer(index: int) -> None:
            for i in range(per_thread):
                metrics.observe_request(f"/route-{index % 2}", 200)
                metrics.observe_query(
                    ("ok", "error", "timeout")[i % 3], 0.001 * index
                )
                metrics.observe_rejection()
                metrics.observe_phases({"driver": 0.001, "peel": 0.002})
                metrics.observe_loop_lag(0.0001 * index)
                if i % 50 == 0:
                    metrics.snapshot(
                        cache_hits=0,
                        cache_misses=0,
                        warm_prepared=0,
                        warm_capacity=8,
                        warm_hits=0,
                        warm_evictions=0,
                        pending=0,
                    )

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = threads_n * per_thread
        snapshot = metrics.snapshot(
            cache_hits=0,
            cache_misses=0,
            warm_prepared=0,
            warm_capacity=8,
            warm_hits=0,
            warm_evictions=0,
            pending=0,
        )
        assert snapshot["requests"]["total"] == total
        assert sum(snapshot["requests"]["by_route"].values()) == total
        queries = snapshot["queries"]
        assert (
            queries["ok"] + queries["error"] + queries["timeout"] == total
        )
        assert queries["rejected"] == total
        assert snapshot["latency"]["observations"] == total
        phases = snapshot["solve_phases"]
        assert phases["driver"]["calls"] == total
        assert phases["driver"]["seconds"] == pytest.approx(0.001 * total)
        assert phases["peel"]["seconds"] == pytest.approx(0.002 * total)


# ----------------------------------------------------------------------
# observability: request ids, phases, Prometheus exposition
# ----------------------------------------------------------------------
class TestServiceObservability:
    def test_request_id_echoed_when_well_formed(self, app):
        response = asyncio.run(
            app.dispatch(
                "GET", "/healthz", headers={"X-Request-Id": "client-id.1"}
            )
        )
        assert response.headers["X-Request-Id"] == "client-id.1"

    def test_request_id_generated_when_absent_or_malformed(self, app):
        fresh = asyncio.run(app.dispatch("GET", "/healthz"))
        assert len(fresh.headers["X-Request-Id"]) == 16
        bad = asyncio.run(
            app.dispatch(
                "GET", "/healthz", headers={"X-Request-Id": "bad id\r\nX: 1"}
            )
        )
        assert bad.headers["X-Request-Id"] != "bad id\r\nX: 1"
        assert len(bad.headers["X-Request-Id"]) == 16

    def test_error_responses_carry_request_ids_too(self, app):
        response = asyncio.run(app.dispatch("GET", "/nope"))
        assert response.status == 404
        assert len(response.headers["X-Request-Id"]) == 16

    def test_solve_timings_carry_phase_breakdown(self, app):
        status, body = app.request(
            "POST", "/v1/solve", {"graph": "uploaded", "kind": "dcsga"}
        )
        assert status == 200
        timings = body["result"]["timings"]
        phases = timings["phases"]
        assert sum(phases.values()) == pytest.approx(
            timings["solve_seconds"], rel=0.10
        )
        # ... and /metrics accumulated the same phases.
        _, metrics = app.request("GET", "/metrics")
        assert set(metrics["solve_phases"]) >= {"driver", "new_sea"}
        assert metrics["solve_phases"]["driver"]["calls"] == 1

    def test_metrics_json_shape_keeps_preexisting_sections(self, app):
        _, body = app.request("GET", "/metrics")
        assert {
            "uptime_seconds",
            "requests",
            "queries",
            "cache",
            "warm",
            "latency",
            "sessions",
        } <= set(body)
        assert body["loop"].keys() == {"lag_seconds", "lag_max_seconds"}
        assert isinstance(body["solve_phases"], dict)

    def test_metrics_prometheus_negotiation(self, app):
        from repro.obs.prometheus import parse_exposition

        app.request("POST", "/v1/solve", {"graph": "uploaded"})
        via_query = asyncio.run(
            app.dispatch("GET", "/metrics?format=prometheus")
        )
        assert via_query.status == 200
        assert via_query.content_type.startswith("text/plain")
        families = parse_exposition(via_query.payload)
        assert families["repro_queries_total"]["samples"][
            'repro_queries_total{outcome="ok"}'
        ] == 1.0
        assert "repro_solve_phase_seconds_total" in families
        via_accept = asyncio.run(
            app.dispatch(
                "GET", "/metrics", headers={"Accept": "text/plain"}
            )
        )
        assert via_accept.content_type.startswith("text/plain")
        # Default (no negotiation) stays JSON.
        plain = asyncio.run(app.dispatch("GET", "/metrics"))
        assert plain.content_type is None
        assert isinstance(plain.payload, dict)

    def test_access_log_records_requests(self, app):
        import logging as logging_module

        from repro.obs.logs import ACCESS_LOGGER, JsonFormatter

        stream = io.StringIO()
        handler = logging_module.StreamHandler(stream)
        handler.setFormatter(JsonFormatter())
        logger = logging_module.getLogger(ACCESS_LOGGER)
        logger.addHandler(handler)
        logger.setLevel(logging_module.INFO)
        app.access_log = True
        try:
            asyncio.run(
                app.dispatch(
                    "GET", "/healthz", headers={"X-Request-Id": "log-me"}
                )
            )
        finally:
            app.access_log = False
            logger.removeHandler(handler)
        record = json.loads(stream.getvalue())
        assert record["event"] == "access"
        assert record["request_id"] == "log-me"
        assert record["route"] == "/healthz"
        assert record["status"] == 200
        assert record["seconds"] >= 0.0

    def test_slow_query_log_fires_above_threshold(self, app):
        import logging as logging_module

        from repro.obs.logs import SLOW_LOGGER, JsonFormatter

        stream = io.StringIO()
        handler = logging_module.StreamHandler(stream)
        handler.setFormatter(JsonFormatter())
        logger = logging_module.getLogger(SLOW_LOGGER)
        logger.addHandler(handler)
        app.slow_query_seconds = 0.0  # everything is "slow"
        try:
            app.request("POST", "/v1/solve", {"graph": "uploaded"})
        finally:
            app.slow_query_seconds = None
            logger.removeHandler(handler)
        record = json.loads(stream.getvalue())
        assert record["event"] == "slow_query"
        assert record["status"] == "ok"
        assert record["seconds"] > 0.0
        assert record["request_id"]

    def test_default_is_silent(self, app, capsys):
        app.request("POST", "/v1/solve", {"graph": "uploaded"})
        captured = capsys.readouterr()
        assert captured.err == ""

    def test_serve_log_flags_parse(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            [
                "serve",
                "--log-level",
                "debug",
                "--access-log",
                "--slow-query",
                "1.5",
            ]
        )
        assert args.log_level == "debug"
        assert args.access_log is True
        assert args.slow_query == 1.5
        defaults = _build_parser().parse_args(["serve"])
        assert defaults.log_level is None
        assert defaults.access_log is False
        assert defaults.slow_query is None


# ----------------------------------------------------------------------
# the HTTP shell, end to end
# ----------------------------------------------------------------------
class TestHttpShell:
    def test_socket_round_trip(self, pair_texts):
        import urllib.error
        import urllib.request

        g1_text, g2_text, _, _ = pair_texts
        app = ServiceApp(scale=0.0)

        async def main():
            server = await app.start_server(port=0)
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()

            def client():
                base = f"http://127.0.0.1:{port}"
                with urllib.request.urlopen(f"{base}/healthz") as r:
                    health = json.loads(r.read())
                upload = urllib.request.Request(
                    f"{base}/v1/graphs",
                    data=json.dumps(
                        {"name": "pair", "g1": g1_text, "g2": g2_text}
                    ).encode("utf-8"),
                    method="POST",
                )
                with urllib.request.urlopen(upload) as r:
                    assert r.status == 200
                solve_req = urllib.request.Request(
                    f"{base}/v1/solve",
                    data=json.dumps(
                        {"graph": "pair", "kind": "dcsad"}
                    ).encode("utf-8"),
                    method="POST",
                )
                with urllib.request.urlopen(solve_req) as r:
                    answer = json.loads(r.read())
                try:
                    urllib.request.urlopen(f"{base}/missing")
                    raise AssertionError("must 404")
                except urllib.error.HTTPError as exc:
                    not_found = exc.code
                with urllib.request.urlopen(f"{base}/metrics") as r:
                    metrics = json.loads(r.read())
                return health, answer, not_found, metrics

            try:
                return await loop.run_in_executor(None, client)
            finally:
                server.close()
                await server.wait_closed()
                await app.aclose()

        health, answer, not_found, metrics = asyncio.run(main())
        assert health["status"] == "ok"
        assert answer["status"] == "ok"
        assert answer["result"]["kind"] == "dcsad"
        assert not_found == 404
        assert metrics["requests"]["total"] == 4
        assert metrics["requests"]["by_status"]["404"] == 1

    def test_malformed_http_payloads(self, app):
        from repro.service.http import HttpError, HttpRequest

        bad = HttpRequest(method="POST", path="/v1/solve", body=b"{nope")
        with pytest.raises(HttpError) as err:
            bad.json()
        assert err.value.status == 400

    def test_serve_cli_parser(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2", "--timeout", "5"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.workers == 2
        assert args.timeout == 5.0


# ----------------------------------------------------------------------
# the `repro serve` command
# ----------------------------------------------------------------------
class TestServeCommand:
    def test_serve_prints_banner_and_handles_interrupt(
        self, monkeypatch, capsys
    ):
        """`repro serve` binds, prints the parseable listening line, and
        exits 0 on Ctrl-C (covered with a fake bound server)."""
        from repro.cli import main

        class FakeSocket:
            def getsockname(self):
                return ("127.0.0.1", 12345)

        class FakeServer:
            sockets = [FakeSocket()]

            async def serve_forever(self):
                raise KeyboardInterrupt

            def close(self):
                pass

            async def wait_closed(self):
                pass

        async def fake_serve_http(handler, host, port):
            assert host == "127.0.0.1" and port == 0
            return FakeServer()

        monkeypatch.setattr(
            "repro.service.http.serve_http", fake_serve_http
        )
        assert main(["serve", "--port", "0"]) == 0
        captured = capsys.readouterr()
        assert "listening on http://127.0.0.1:12345" in captured.out
        assert "stopped" in captured.err

    def test_serve_rejects_bad_cache_dir(self, tmp_path):
        from repro.cli import main

        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(SystemExit):
            main(["serve", "--cache-dir", str(blocker / "sub")])

    def test_serve_rejects_bad_workers(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve", "--workers", "0"])


# ----------------------------------------------------------------------
# review-hardening regressions
# ----------------------------------------------------------------------
class TestReviewHardening:
    def test_batch_timeout_answers_504(self, app, monkeypatch):
        """/v1/batch enforces its per-query budget at the await side:
        the whole batch deadline is budget x queries, then 504."""
        import repro.batch.executor as executor_module

        real = executor_module.execute_payload

        def slow_execute(kind, params, payload, prepared=None):
            time.sleep(0.5)
            return real(kind, params, payload, prepared=prepared)

        monkeypatch.setattr(
            "repro.service.app.BatchExecutor",
            lambda **kwargs: _SlowExecutor(slow_execute, **kwargs),
        )
        start = time.perf_counter()
        status, body = app.request(
            "POST",
            "/v1/batch",
            {
                "queries": [{"kind": "dcsad", "graph": "uploaded"}],
                "timeout": 0.05,
            },
        )
        assert status == 504
        assert body["status"] == "timeout"
        assert time.perf_counter() - start < 0.5

    def test_unavailable_backend_is_client_error(self, app, monkeypatch):
        """A registered backend whose dependency is missing answers
        400, not 500 — it is the client's backend choice."""
        from repro.exceptions import BackendUnavailableError

        def unavailable(name):
            raise BackendUnavailableError(f"backend {name!r} needs SciPy")

        monkeypatch.setattr(
            "repro.service.app.resolve_backend", unavailable
        )
        status, body = app.request(
            "POST", "/v1/solve", {"graph": "uploaded", "backend": "sparse"}
        )
        assert status == 400
        assert "SciPy" in body["error"]

    def test_unmatched_paths_share_one_metrics_bucket(self, app):
        """Scanner traffic must not grow the per-route metrics dict."""
        for path in ("/a", "/b", "/c/d", "/v1/solve/123"):
            app.request("GET", path)
        _, body = app.request("GET", "/metrics")
        by_route = body["requests"]["by_route"]
        assert by_route["(unmatched)"] == 4
        assert not any(route.startswith("/a") for route in by_route)

    def test_upload_limit_answers_400(self, pair_texts):
        g1_text, g2_text, _, _ = pair_texts
        app = ServiceApp(
            registry=GraphRegistry(scale=0.0, max_uploads=2)
        )
        for name in ("one", "two"):
            status, _ = app.request(
                "POST",
                "/v1/graphs",
                {"name": name, "g1": g1_text, "g2": g2_text},
            )
            assert status == 200
        # Replacing an existing name is still allowed ...
        status, _ = app.request(
            "POST",
            "/v1/graphs",
            {"name": "two", "g1": g1_text, "g2": g2_text, "flip": True},
        )
        assert status == 200
        # ... a third distinct name is refused.
        status, body = app.request(
            "POST",
            "/v1/graphs",
            {"name": "three", "g1": g1_text, "g2": g2_text},
        )
        assert status == 400
        assert "upload limit" in body["error"]


class _SlowExecutor:
    """BatchExecutor stand-in whose run() is artificially slow."""

    def __init__(self, slow_execute, **kwargs):
        from repro.batch.executor import BatchExecutor, BatchStats

        self._slow = slow_execute
        self._inner = BatchExecutor(**kwargs)
        self.stats = BatchStats()

    def run(self, queries):
        time.sleep(0.5)
        results = self._inner.run(queries)
        self.stats = self._inner.stats
        return results


class TestSecondReviewHardening:
    def test_backend_alias_shares_cache_and_canonical_bytes(self, app):
        """'heap' is an alias of 'python': one cache entry, and the
        response names the canonical backend either way."""
        _, first = app.request(
            "POST", "/v1/solve", {"graph": "uploaded", "backend": "python"}
        )
        _, second = app.request(
            "POST", "/v1/solve", {"graph": "uploaded", "backend": "heap"}
        )
        assert not first["cached"] and second["cached"]
        assert second["result"]["params"]["backend"] == "python"
        strip = lambda r: {k: v for k, v in r.items() if k != "timings"}
        assert strip(second["result"]) == strip(first["result"])

    def test_upload_rejects_stringly_booleans(self, app, pair_texts):
        """'"false"' must not silently mean True (a flipped graph)."""
        g1_text, g2_text, _, _ = pair_texts
        status, body = app.request(
            "POST",
            "/v1/graphs",
            {"name": "x", "g1": g1_text, "g2": g2_text, "flip": "false"},
        )
        assert status == 400
        assert "boolean" in body["error"]

    def test_cold_build_does_not_block_warm_hits(self, app, monkeypatch):
        """registry.resolve builds cold names outside its lock."""
        import threading

        from repro.datasets import registry as datasets_registry

        release = threading.Event()
        real = datasets_registry.build_named

        def slow_build(name, scale=1.0):
            release.wait(timeout=5.0)
            return real(name, scale=scale)

        monkeypatch.setattr(
            "repro.datasets.registry.build_named", slow_build
        )
        registry = app.registry
        done = []

        def cold():
            done.append(registry.resolve("DM/-/Emerging"))

        thread = threading.Thread(target=cold)
        thread.start()
        try:
            # While the cold build blocks, a warm hit must not.
            start = time.perf_counter()
            warm = registry.resolve("uploaded")
            assert time.perf_counter() - start < 1.0
            assert warm is not None
        finally:
            release.set()
            thread.join(timeout=10)
        assert len(done) == 1
