"""Randomized cross-backend oracle suite.

Every solver in the library is swept over seeded random signed graphs
and held to the invariants the paper proves about its answers:

* **Backend parity** — the pure-Python reference, the segment-tree
  peeling structure, the vectorised CSR backend and the native kernel
  backend implement the same algorithms, so their objectives must agree
  (subsets may differ only on exact ties, which the continuous random
  weights make improbable).  The native leg is *three-way*: it runs
  compiled when Numba is installed and interpreted (``jit=False``,
  identical kernel bodies) otherwise, and is held to the strict parity
  contract against ``sparse`` — equal vertex sets, equal Theorem-2
  betas, bitwise-equal NewSEA embeddings/objectives — plus the same
  KKT certificate as every other backend.
* **KKT validity** (Theorem 4 territory) — every embedding returned by
  SEACD / Refinement / NewSEA is a KKT point of ``max x^T D x`` on the
  simplex, up to the solver's convergence tolerance.
* **The Theorem 2 certificate** — DCSGreedy's data-dependent ratio
  ``beta = 2 rho_{D+}(S2) / rho_D(S)`` upper-bounds optimal/found, so
  ``beta >= 1`` on every input where it is defined.

These are *oracle* tests: they check answer properties that hold for
every input, so new seeds can be added freely without computing
expected outputs by hand.
"""

from __future__ import annotations

import pytest

from repro.affinity.replicator import replicator_dynamics
from repro.core.dcsad import dcs_greedy
from repro.core.embedding import validate_simplex
from repro.core.kkt import check_kkt
from repro.core.newsea import new_sea
from repro.core.refinement import refine
from repro.core.seacd import seacd
from repro.core.native_kernels import numba_available
from repro.core.topk import top_k_dcsad, top_k_dcsga
from repro.graph.cliques import is_clique
from repro.graph.generators import random_signed_graph
from repro.graph.graph import Graph
from repro.graph.sparse import scipy_available

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="sparse backend requires SciPy"
)


def _native_backend():
    """The native leg of the differential: compiled when Numba is
    installed, otherwise the identical kernel bodies interpreted —
    either way the parity assertions below are exercised."""
    if numba_available():
        from repro.engine import get_backend

        return get_backend("native")
    from repro.engine.backends import NativeBackend

    return NativeBackend(jit=False)

#: The sweep: (seed, n, p) for seeded G(n, p) signed graphs.  Chosen to
#: cover sparse/dense and small/medium regimes while staying fast.
CASES = [
    (seed, n, p)
    for seed in (0, 1, 2, 3, 4)
    for n, p in ((18, 0.35), (40, 0.18), (70, 0.09))
]

#: KKT slack: the solvers converge to tol_scale-dependent precision
#: (default 1e-2 scaled by local objective), observed gaps stay an
#: order of magnitude below this.
KKT_TOL = 5e-3


def _gd(seed: int, n: int, p: float) -> Graph:
    return random_signed_graph(n, p, seed=seed)


def _objective(graph: Graph, x) -> float:
    total = 0.0
    for u, xu in x.items():
        for v, weight in graph.neighbors(u).items():
            xv = x.get(v)
            if xv is not None:
                total += xu * xv * weight
    return total


@pytest.mark.parametrize("seed,n,p", CASES)
class TestDCSADOracle:
    def test_peeling_backends_agree(self, seed, n, p):
        gd = _gd(seed, n, p)
        reference = dcs_greedy(gd, backend="heap")
        backends = [("segment_tree", "segment_tree")]
        if scipy_available():
            backends.append(("sparse", "sparse"))
            backends.append(("native", _native_backend()))
        for label, backend in backends:
            other = dcs_greedy(gd, backend=backend)
            assert other.density == pytest.approx(reference.density), label
            assert other.subset == reference.subset, label
            # Theorem-2 beta is a function of the peel trajectory, so
            # it must survive the backend swap too.
            if reference.ratio_bound is None:
                assert other.ratio_bound is None, label
            else:
                assert other.ratio_bound == pytest.approx(
                    reference.ratio_bound
                ), label

    def test_reported_density_is_exact(self, seed, n, p):
        gd = _gd(seed, n, p)
        result = dcs_greedy(gd)
        recomputed = gd.total_degree(result.subset) / len(result.subset)
        assert result.density == pytest.approx(recomputed)

    def test_theorem2_certificate_beta_at_least_one(self, seed, n, p):
        gd = _gd(seed, n, p)
        result = dcs_greedy(gd)
        if result.ratio_bound is None:
            # Only legal when the graph has no positive edge at all.
            heaviest = gd.max_weight_edge()
            assert heaviest is None or heaviest[2] <= 0 or (
                result.density <= 0
            )
        else:
            assert result.ratio_bound >= 1.0 - 1e-12

    def test_answer_beats_every_single_edge(self, seed, n, p):
        """rho of the answer >= the heaviest edge's contrast (a candidate)."""
        gd = _gd(seed, n, p)
        heaviest = gd.max_weight_edge()
        if heaviest is None or heaviest[2] <= 0:
            return
        result = dcs_greedy(gd)
        assert result.density >= heaviest[2] - 1e-12


@pytest.mark.parametrize("seed,n,p", CASES)
class TestDCSGAOracle:
    def test_backends_agree_and_answers_are_kkt_cliques(self, seed, n, p):
        gd_plus = _gd(seed, n, p).positive_part()
        if gd_plus.num_edges == 0:
            return
        results = {"python": new_sea(gd_plus, backend="python")}
        if scipy_available():
            results["sparse"] = new_sea(gd_plus, backend="sparse")
            results["native"] = new_sea(gd_plus, backend=_native_backend())
        for backend, result in results.items():
            assert result.objective >= 0.0, backend
            assert result.is_positive_clique, backend
            assert is_clique(gd_plus, result.support), backend
            validate_simplex(result.x)
            assert result.objective == pytest.approx(
                _objective(gd_plus, result.x), abs=1e-9
            ), backend
            report = check_kkt(gd_plus, result.x, tol=KKT_TOL)
            assert report.is_kkt, (backend, report.gap)
        if "sparse" in results:
            assert results["sparse"].objective == pytest.approx(
                results["python"].objective, rel=1e-6
            )
            # The native kernels replay the sparse float operations in
            # the same order: NewSEA parity is bitwise, not approx.
            native, sparse = results["native"], results["sparse"]
            assert native.support == sparse.support
            assert native.objective == sparse.objective
            assert native.x == sparse.x
            assert native.initializations == sparse.initializations

    def test_seacd_refine_pipeline_parity(self, seed, n, p):
        gd_plus = _gd(seed, n, p).positive_part()
        if gd_plus.num_edges == 0:
            return
        start = max(gd_plus.vertices(), key=lambda u: gd_plus.degree(u))
        py = seacd(gd_plus, {start: 1.0})
        refined = refine(gd_plus, py.x)
        validate_simplex(refined.x)
        assert refined.objective >= py.objective - 1e-9
        assert check_kkt(gd_plus, refined.x, tol=KKT_TOL).is_kkt
        if scipy_available():
            from repro.core.sparse_solvers import refine_csr, seacd_csr

            sp = seacd_csr(gd_plus, {start: 1.0})
            x_sp, objective_sp, _, _ = refine_csr(gd_plus, sp.x)
            assert objective_sp == pytest.approx(refined.objective, rel=1e-6)
            assert check_kkt(gd_plus, x_sp, tol=KKT_TOL).is_kkt
            # Native seacd/refine run the same orchestration with the
            # kernel coordinate descent plugged in: bitwise parity.
            native = _native_backend()
            nat_sea = native.seacd(gd_plus, {start: 1.0})
            assert nat_sea.x == sp.x
            assert nat_sea.objective == sp.objective
            nat_ref = native.refine(gd_plus, nat_sea.x)
            assert nat_ref.x == x_sp
            assert nat_ref.objective == objective_sp

    def test_replicator_backends_agree(self, seed, n, p):
        gd_plus = _gd(seed, n, p).positive_part()
        if gd_plus.num_edges == 0:
            return
        uniform = {u: 1.0 / gd_plus.num_vertices for u in gd_plus.vertices()}
        py = replicator_dynamics(gd_plus, dict(uniform))
        assert py.objective == pytest.approx(
            _objective(gd_plus, py.x), abs=1e-9
        )
        if scipy_available():
            sp = replicator_dynamics(gd_plus, dict(uniform), backend="sparse")
            assert sp.objective == pytest.approx(py.objective, rel=1e-6)
            nat = replicator_dynamics(
                gd_plus, dict(uniform), backend=_native_backend()
            )
            # Same trajectory: identical iteration counts and supports;
            # the objective is a BLAS dot vs a sequential dot, so it is
            # pinned to 1e-9 rather than bitwise.
            assert nat.iterations == sp.iterations
            assert nat.converged == sp.converged
            assert set(nat.x) == set(sp.x)
            assert nat.objective == pytest.approx(sp.objective, rel=1e-9)


@needs_scipy
class TestSharedAdjacencyContract:
    """The adjacency= plumbing must reject mismatched prebuilt CSRs."""

    def test_signed_adjacency_rejected_for_positive_solve(self):
        from repro.exceptions import InputMismatchError
        from repro.graph.sparse import CSRAdjacency

        gd = random_signed_graph(30, 0.3, seed=9)
        gd_plus = gd.positive_part()
        wrong = CSRAdjacency.from_graph(gd)  # same vertices, signed data
        with pytest.raises(InputMismatchError):
            new_sea(gd_plus, backend="sparse", adjacency=wrong)

    def test_foreign_graph_adjacency_rejected(self):
        from repro.exceptions import InputMismatchError
        from repro.graph.sparse import CSRAdjacency

        gd_plus = random_signed_graph(30, 0.3, seed=9).positive_part()
        other = random_signed_graph(12, 0.4, seed=10).positive_part()
        with pytest.raises(InputMismatchError):
            new_sea(
                gd_plus,
                backend="sparse",
                adjacency=CSRAdjacency.from_graph(other),
            )

    def test_matching_adjacency_accepted_and_equivalent(self):
        from repro.core.newsea import solve_all_initializations
        from repro.graph.sparse import CSRAdjacency

        gd_plus = random_signed_graph(30, 0.3, seed=9).positive_part()
        adj = CSRAdjacency.from_graph(gd_plus)
        with_shared = new_sea(gd_plus, backend="sparse", adjacency=adj)
        without = new_sea(gd_plus, backend="sparse")
        assert with_shared.objective == pytest.approx(without.objective)
        all_inits = solve_all_initializations(
            gd_plus, backend="sparse", adjacency=adj
        )
        assert all_inits.best.objective == pytest.approx(without.objective)

    def test_python_backend_rejects_adjacency(self):
        from repro.core.newsea import solve_all_initializations
        from repro.graph.sparse import CSRAdjacency

        gd_plus = random_signed_graph(20, 0.3, seed=9).positive_part()
        adj = CSRAdjacency.from_graph(gd_plus)
        with pytest.raises(ValueError):
            new_sea(gd_plus, backend="python", adjacency=adj)
        with pytest.raises(ValueError):
            solve_all_initializations(
                gd_plus, backend="python", adjacency=adj
            )
        with pytest.raises(ValueError):
            solve_all_initializations(
                gd_plus,
                solver=lambda g, v: ({v: 1.0}, 0.0, 0),
                adjacency=adj,
            )


@pytest.mark.parametrize("seed,n,p", CASES)
class TestTopKOracle:
    def test_top_k_dcsad_backends_agree(self, seed, n, p):
        gd = _gd(seed, n, p)
        reference = top_k_dcsad(gd, 4, backend="heap")
        backends = ["segment_tree"] + (
            ["sparse"] if scipy_available() else []
        )
        for backend in backends:
            other = top_k_dcsad(gd, 4, backend=backend)
            assert [r.objective for r in other] == pytest.approx(
                [r.objective for r in reference]
            ), backend
        # Certificate per round: each answer's density is its objective.
        for item in reference:
            assert item.objective > 0.0

    @needs_scipy
    def test_top_k_dcsga_backends_agree(self, seed, n, p):
        gd_plus = _gd(seed, n, p).positive_part()
        if gd_plus.num_edges == 0:
            return
        py = top_k_dcsga(gd_plus, 3, backend="python")
        sp = top_k_dcsga(gd_plus, 3, backend="sparse")
        assert [r.objective for r in sp] == pytest.approx(
            [r.objective for r in py], rel=1e-6
        )
        nat = top_k_dcsga(gd_plus, 3, backend=_native_backend())
        assert [r.subset for r in nat] == [r.subset for r in sp]
        assert [r.objective for r in nat] == [r.objective for r in sp]
        for item in py:
            assert is_clique(gd_plus, item.subset)
            assert item.embedding is not None
            report = check_kkt(gd_plus, item.embedding, tol=KKT_TOL)
            assert report.is_kkt, report.gap
