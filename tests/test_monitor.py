"""Tests for temporal contrast monitoring and its workload generator."""

from __future__ import annotations

import pytest

from repro.core.dcsad import dcs_exact_positive
from repro.core.monitor import ContrastAlert, ContrastMonitor, mean_graph
from repro.datasets.temporal import snapshot_stream
from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph


class TestMeanGraph:
    def test_mean_of_identical_graphs(self, triangle):
        mean = mean_graph([triangle, triangle, triangle])
        assert mean == triangle

    def test_mean_averages_weights(self):
        g1 = Graph.from_edges([("a", "b", 1.0)], vertices=["c"])
        g2 = Graph.from_edges([("a", "b", 3.0), ("b", "c", 2.0)])
        mean = mean_graph([g1, g2])
        assert mean.weight("a", "b") == pytest.approx(2.0)
        assert mean.weight("b", "c") == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_graph([])


class TestMonitorValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            ContrastMonitor(window=0)

    def test_bad_measure(self):
        with pytest.raises(ValueError):
            ContrastMonitor(measure="vibes")

    def test_vertex_set_must_stay_fixed(self, triangle):
        monitor = ContrastMonitor(window=2)
        monitor.observe(triangle)
        other = Graph.from_edges([("x", "y", 1.0)])
        with pytest.raises(InputMismatchError):
            monitor.observe(other)

    def test_no_alert_during_warmup(self, triangle):
        monitor = ContrastMonitor(window=3)
        assert monitor.observe(triangle) is None
        assert monitor.observe(triangle) is None
        assert monitor.observe(triangle) is None
        # Warmed up from step `window` onward.
        assert monitor.observe(triangle) is not None


class TestMonitorDetection:
    @pytest.fixture(scope="class")
    def stream(self):
        return snapshot_stream(
            n_vertices=80,
            n_steps=10,
            anomaly_size=5,
            anomaly_start=6,
            anomaly_duration=2,
            seed=3,
        )

    def test_ground_truth_metadata(self, stream):
        assert stream.length == 10
        assert len(stream.anomaly_members) == 5
        assert stream.is_anomalous_step(6)
        assert stream.is_anomalous_step(7)
        assert not stream.is_anomalous_step(5)
        assert not stream.is_anomalous_step(8)

    def test_average_degree_monitor_flags_anomaly(self, stream):
        monitor = ContrastMonitor(window=4, measure="average_degree")
        alerts = monitor.run(stream.snapshots)
        by_step = {alert.step: alert for alert in alerts}
        quiet = [
            alert.score
            for alert in alerts
            if not stream.is_anomalous_step(alert.step)
        ]
        hot = [by_step[6].score, by_step[7].score]
        # The anomaly steps score far above every quiet step.
        assert min(hot) > 2 * max(quiet)
        # And the flagged subset is (essentially) the planted cluster.
        flagged = by_step[6].subset
        assert len(flagged & stream.anomaly_members) >= 4

    def test_affinity_monitor_flags_clique(self, stream):
        monitor = ContrastMonitor(window=4, measure="affinity")
        alerts = monitor.run(stream.snapshots)
        by_step = {alert.step: alert for alert in alerts}
        hot = by_step[6]
        assert hot.subset <= stream.anomaly_members
        quiet_scores = [
            alert.score
            for alert in alerts
            if not stream.is_anomalous_step(alert.step)
        ]
        assert hot.score > 2 * max(quiet_scores)

    def test_alert_threshold_helper(self):
        alert = ContrastAlert(
            step=0, subset={"a"}, score=1.5, measure="affinity"
        )
        assert alert.exceeds(1.0)
        assert not alert.exceeds(2.0)


class TestExactPositiveDCSAD:
    def test_matches_goldberg_on_positive_graph(self):
        from repro.graph.generators import gnp_graph

        gd = gnp_graph(25, 0.2, seed=4, weight=lambda r: r.uniform(0.5, 3.0))
        result = dcs_exact_positive(gd)
        assert result.ratio_bound == 1.0
        # Exact must be at least as good as the greedy heuristic.
        from repro.core.dcsad import dcs_greedy

        greedy = dcs_greedy(gd)
        assert result.density >= greedy.density - 1e-9

    def test_negative_edge_rejected(self, signed_graph):
        with pytest.raises(ValueError):
            dcs_exact_positive(signed_graph)

    def test_edgeless(self):
        gd = Graph()
        gd.add_vertices("ab")
        result = dcs_exact_positive(gd)
        assert result.density == 0.0
        assert len(result.subset) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dcs_exact_positive(Graph())
