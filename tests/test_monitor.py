"""Tests for temporal contrast monitoring and its workload generator."""

from __future__ import annotations

import pytest

from repro.core.dcsad import dcs_exact_positive
from repro.core.monitor import ContrastAlert, ContrastMonitor, mean_graph
from repro.datasets.temporal import snapshot_stream
from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph
from repro.graph.sparse import scipy_available

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="sparse backend requires SciPy"
)


class TestMeanGraph:
    def test_mean_of_identical_graphs(self, triangle):
        mean = mean_graph([triangle, triangle, triangle])
        assert mean == triangle

    def test_mean_averages_weights(self):
        g1 = Graph.from_edges([("a", "b", 1.0)], vertices=["c"])
        g2 = Graph.from_edges([("a", "b", 3.0), ("b", "c", 2.0)])
        mean = mean_graph([g1, g2])
        assert mean.weight("a", "b") == pytest.approx(2.0)
        assert mean.weight("b", "c") == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_graph([])

    def test_unknown_backend_rejected(self, triangle):
        with pytest.raises(ValueError):
            mean_graph([triangle], backend="vibes")

    @needs_scipy
    def test_sparse_backend_matches_python(self):
        graphs = [
            Graph.from_edges([("a", "b", 1.0), ("b", "c", 0.5)], vertices="d"),
            Graph.from_edges([("b", "a", 3.0), ("c", "d", 2.0)]),
            Graph.from_edges([("a", "c", -1.0)], vertices="bd"),
        ]
        python = mean_graph(graphs)
        sparse = mean_graph(graphs, backend="sparse")
        assert python.vertex_set() == sparse.vertex_set()
        seen = {(u, v) for u, v, _ in python.edges()}
        seen |= {(u, v) for u, v, _ in sparse.edges()}
        for u, v in seen:
            assert sparse.weight(u, v) == pytest.approx(python.weight(u, v))

    @needs_scipy
    def test_sparse_backend_merges_edge_directions(self):
        # The same undirected edge can be iterated as (a, b) in one
        # snapshot and (b, a) in another; the COO accumulation must
        # still land both on one entry.
        g1 = Graph.from_edges([("a", "b", 2.0)])
        g2 = Graph()
        g2.add_vertex("b")
        g2.add_edge("b", "a", 4.0)
        assert mean_graph([g1, g2], backend="sparse").weight(
            "a", "b"
        ) == pytest.approx(3.0)


class TestMonitorValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            ContrastMonitor(window=0)

    def test_bad_measure(self):
        with pytest.raises(ValueError):
            ContrastMonitor(measure="vibes")

    def test_vertex_set_must_stay_fixed(self, triangle):
        monitor = ContrastMonitor(window=2)
        monitor.observe(triangle)
        other = Graph.from_edges([("x", "y", 1.0)])
        with pytest.raises(InputMismatchError):
            monitor.observe(other)

    def test_no_alert_during_warmup(self, triangle):
        monitor = ContrastMonitor(window=3)
        assert monitor.observe(triangle) is None
        assert monitor.observe(triangle) is None
        assert monitor.observe(triangle) is None
        # Warmed up from step `window` onward.
        assert monitor.observe(triangle) is not None


class TestMonitorDetection:
    @pytest.fixture(scope="class")
    def stream(self):
        return snapshot_stream(
            n_vertices=80,
            n_steps=10,
            anomaly_size=5,
            anomaly_start=6,
            anomaly_duration=2,
            seed=3,
        )

    def test_ground_truth_metadata(self, stream):
        assert stream.length == 10
        assert len(stream.anomaly_members) == 5
        assert stream.is_anomalous_step(6)
        assert stream.is_anomalous_step(7)
        assert not stream.is_anomalous_step(5)
        assert not stream.is_anomalous_step(8)

    def test_average_degree_monitor_flags_anomaly(self, stream):
        monitor = ContrastMonitor(window=4, measure="average_degree")
        alerts = monitor.run(stream.snapshots)
        by_step = {alert.step: alert for alert in alerts}
        quiet = [
            alert.score
            for alert in alerts
            if not stream.is_anomalous_step(alert.step)
        ]
        hot = [by_step[6].score, by_step[7].score]
        # The anomaly steps score far above every quiet step.
        assert min(hot) > 2 * max(quiet)
        # And the flagged subset is (essentially) the planted cluster.
        flagged = by_step[6].subset
        assert len(flagged & stream.anomaly_members) >= 4

    def test_affinity_monitor_flags_clique(self, stream):
        monitor = ContrastMonitor(window=4, measure="affinity")
        alerts = monitor.run(stream.snapshots)
        by_step = {alert.step: alert for alert in alerts}
        hot = by_step[6]
        assert hot.subset <= stream.anomaly_members
        quiet_scores = [
            alert.score
            for alert in alerts
            if not stream.is_anomalous_step(alert.step)
        ]
        assert hot.score > 2 * max(quiet_scores)

    def test_alert_threshold_helper(self):
        alert = ContrastAlert(
            step=0, subset={"a"}, score=1.5, measure="affinity"
        )
        assert alert.exceeds(1.0)
        assert not alert.exceeds(2.0)


class TestMonitorEdgeCases:
    def test_empty_history_never_contrasted(self, triangle):
        """Step 0 has no expectation; even warmup=0 clamps to 1."""
        monitor = ContrastMonitor(window=3, warmup=0)
        assert monitor.warmup == 1
        assert monitor.observe(triangle) is None

    def test_window_one_contrasts_against_previous_snapshot(self):
        monitor = ContrastMonitor(window=1, warmup=1)
        g1 = Graph.from_edges([("a", "b", 1.0)], vertices="c")
        g2 = Graph.from_edges([("a", "b", 5.0), ("b", "c", 2.0)])
        assert monitor.observe(g1) is None
        alert = monitor.observe(g2)
        # Expectation is exactly g1: contrast = GD of (g1, g2).
        assert alert is not None
        assert alert.score == pytest.approx(
            (2 * 4.0 + 2 * 2.0) / 3
        )  # triangle {a,b,c} in the difference graph

    def test_vertex_churn_rejected_then_recoverable(self, triangle):
        """A churned snapshot is rejected without corrupting the stream."""
        monitor = ContrastMonitor(window=2, warmup=1)
        monitor.observe(triangle)
        grown = triangle.copy()
        grown.add_vertex("newcomer")
        with pytest.raises(InputMismatchError):
            monitor.observe(grown)
        shrunk = Graph.from_edges([("a", "b", 1.0)])
        with pytest.raises(InputMismatchError):
            monitor.observe(shrunk)
        # The failed observations consumed no steps and kept no state.
        assert monitor.step == 1
        alert = monitor.observe(triangle)
        assert alert is not None and alert.score == pytest.approx(0.0)

    def test_scores_decay_within_planted_burst(self):
        """Alert scores are strictly decreasing across a burst.

        As the sliding window absorbs burst snapshots the expectation
        catches up, so the contrast is maximal at burst onset and decays
        monotonically while the burst persists — the property operators
        rely on when thresholding "new" vs "ongoing" anomalies.
        """
        stream = snapshot_stream(
            n_vertices=70,
            n_steps=12,
            anomaly_size=5,
            anomaly_start=6,
            anomaly_duration=4,
            seed=11,
        )
        monitor = ContrastMonitor(window=5, measure="average_degree")
        by_step = {a.step: a for a in monitor.run(stream.snapshots)}
        burst_scores = [
            by_step[step].score for step in range(6, 10)
        ]
        assert all(
            earlier > later
            for earlier, later in zip(burst_scores, burst_scores[1:])
        )
        quiet = [
            a.score
            for a in by_step.values()
            if not stream.is_anomalous_step(a.step)
        ]
        assert min(burst_scores) > 2 * max(quiet)


class TestMonitorBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ContrastMonitor(backend="vibes")

    @needs_scipy
    @pytest.mark.parametrize("measure", ["average_degree", "affinity"])
    def test_sparse_backend_agrees_with_python(self, measure):
        stream = snapshot_stream(
            n_vertices=50,
            n_steps=8,
            anomaly_size=4,
            anomaly_start=5,
            anomaly_duration=2,
            seed=2,
        )
        python = ContrastMonitor(window=3, measure=measure).run(stream.snapshots)
        sparse = ContrastMonitor(
            window=3, measure=measure, backend="sparse"
        ).run(stream.snapshots)
        assert len(python) == len(sparse)
        for a, b in zip(python, sparse):
            assert a.step == b.step
            assert a.score == pytest.approx(b.score)
            if a.score > 1e-6:
                assert a.subset == b.subset


class TestExactPositiveDCSAD:
    def test_matches_goldberg_on_positive_graph(self):
        from repro.graph.generators import gnp_graph

        gd = gnp_graph(25, 0.2, seed=4, weight=lambda r: r.uniform(0.5, 3.0))
        result = dcs_exact_positive(gd)
        assert result.ratio_bound == 1.0
        # Exact must be at least as good as the greedy heuristic.
        from repro.core.dcsad import dcs_greedy

        greedy = dcs_greedy(gd)
        assert result.density >= greedy.density - 1e-9

    def test_negative_edge_rejected(self, signed_graph):
        with pytest.raises(ValueError):
            dcs_exact_positive(signed_graph)

    def test_edgeless(self):
        gd = Graph()
        gd.add_vertices("ab")
        result = dcs_exact_positive(gd)
        assert result.density == 0.0
        assert len(result.subset) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dcs_exact_positive(Graph())
