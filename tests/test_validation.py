"""Tests for ground-truth recovery metrics."""

from __future__ import annotations

import pytest

from repro.analysis.validation import (
    RecoveryScore,
    best_match,
    recovery_report,
    score_against,
)


class TestScore:
    def test_perfect_match(self):
        score = score_against({"a", "b"}, {"a", "b"})
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.jaccard == 1.0
        assert score.f1 == 1.0

    def test_partial_overlap(self):
        score = score_against({"a", "b", "c"}, {"b", "c", "d", "e"})
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(0.5)
        assert score.jaccard == pytest.approx(2 / 5)
        assert score.f1 == pytest.approx(2 * (2 / 3) * 0.5 / (2 / 3 + 0.5))

    def test_no_overlap(self):
        score = score_against({"a"}, {"b"})
        assert score.precision == 0.0
        assert score.f1 == 0.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            score_against(set(), {"a"})
        with pytest.raises(ValueError):
            score_against({"a"}, set())


class TestBestMatch:
    def test_selects_highest_jaccard(self):
        index, score = best_match(
            {"a", "b", "c"},
            [{"x"}, {"a", "b", "c", "d"}, {"a"}],
        )
        assert index == 1
        assert score.jaccard == pytest.approx(3 / 4)

    def test_empty_targets(self):
        index, score = best_match({"a"}, [])
        assert index is None and score is None


class TestReport:
    def test_counts_recovered(self):
        report = recovery_report(
            found_sets=[{"a", "b"}, {"x", "y", "z"}],
            targets=[{"a", "b"}, {"x", "y"}, {"q"}],
            threshold=0.5,
        )
        assert report["recovered"] == 2
        assert report["total"] == 3
        assert report["rate"] == pytest.approx(2 / 3)
        assert report["per_target_jaccard"][2] == 0.0

    def test_no_targets_rejected(self):
        with pytest.raises(ValueError):
            recovery_report([{"a"}], [])

    def test_end_to_end_with_solver(self):
        """NewSEA recovers planted groups on the DBLP substitute."""
        from repro.core.difference import difference_graph
        from repro.core.newsea import new_sea
        from repro.core.topk import top_k_dcsga
        from repro.datasets.synthetic_dblp import coauthor_snapshots

        dataset = coauthor_snapshots(n_authors=240, n_communities=12, seed=4)
        gd = difference_graph(dataset.g1, dataset.g2)
        found = [
            item.subset
            for item in top_k_dcsga(gd.positive_part(), k=3)
        ]
        report = recovery_report(
            found, dataset.emerging_groups, threshold=0.5
        )
        assert report["recovered"] >= 2
