"""Tests for the smart initialisation heuristic (Theorem 6)."""

from __future__ import annotations

import pytest

from repro.core.exact import exact_dcsga
from repro.core.initialization import (
    clique_affinity_upper_bound,
    ego_max_weights,
    smart_initialization_plan,
)
from repro.graph.cliques import maximal_cliques
from repro.graph.cores import core_numbers
from repro.graph.generators import complete_graph, random_signed_graph, star_graph
from repro.graph.graph import Graph


class TestEgoMaxWeights:
    def test_uniform_clique(self):
        weights = ego_max_weights(complete_graph(4, weight=2.0))
        assert all(w == 2.0 for w in weights.values())

    def test_isolated_vertex_zero(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["z"])
        assert ego_max_weights(graph)["z"] == 0.0

    def test_sees_neighbors_incident_edges(self):
        """w_u covers edges with one endpoint in T_u, not only u's own."""
        graph = Graph.from_edges([("a", "b", 1.0), ("b", "c", 9.0)])
        weights = ego_max_weights(graph)
        # c is not a's neighbour, but (b, c) has an endpoint in T_a.
        assert weights["a"] == 9.0

    def test_dominates_ego_net_max_edge(self):
        for seed in range(6):
            graph = random_signed_graph(20, 0.3, seed=seed).positive_part()
            weights = ego_max_weights(graph)
            for u in graph.vertices():
                ego = {u, *graph.neighbors(u)}
                best = 0.0
                for a in ego:
                    for b, w in graph.neighbors(a).items():
                        if b in ego:
                            best = max(best, w)
                assert weights[u] >= best - 1e-12


class TestBound:
    def test_formula(self):
        assert clique_affinity_upper_bound(3, 2.0) == pytest.approx(1.5)
        assert clique_affinity_upper_bound(0, 5.0) == 0.0
        assert clique_affinity_upper_bound(4, 0.0) == 0.0

    @pytest.mark.parametrize("seed", range(10))
    def test_mu_bounds_clique_affinity_through_vertex(self, seed):
        """Theorem 6: any clique-supported embedding containing u has
        affinity at most mu_u.  Verified against per-clique optima."""
        from repro.core.exact import clique_interior_optimum

        gd_plus = random_signed_graph(14, 0.4, seed=seed).positive_part()
        plan = smart_initialization_plan(gd_plus)
        for clique in maximal_cliques(gd_plus):
            candidate = clique_interior_optimum(gd_plus, list(clique))
            if candidate is None:
                continue
            _, value = candidate
            for u in clique:
                assert value <= plan.mu[u] + 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_max_mu_bounds_global_optimum(self, seed):
        """The largest mu upper-bounds the exact DCSGA optimum."""
        gd = random_signed_graph(12, 0.5, seed=seed)
        gd_plus = gd.positive_part()
        plan = smart_initialization_plan(gd_plus)
        optimum = exact_dcsga(gd).objective
        top = max(plan.mu.values(), default=0.0)
        assert optimum <= top + 1e-9


class TestPlan:
    def test_order_sorted_by_mu(self):
        graph = random_signed_graph(25, 0.3, seed=3).positive_part()
        plan = smart_initialization_plan(graph)
        mus = [plan.mu[u] for u in plan.order]
        assert mus == sorted(mus, reverse=True)

    def test_plan_covers_all_vertices(self):
        graph = random_signed_graph(25, 0.3, seed=4).positive_part()
        plan = smart_initialization_plan(graph)
        assert set(plan.order) == graph.vertex_set()
        assert set(plan.mu) == graph.vertex_set()

    def test_core_numbers_match_module(self):
        graph = random_signed_graph(20, 0.3, seed=5).positive_part()
        plan = smart_initialization_plan(graph)
        assert plan.core_number == core_numbers(graph)

    def test_candidates_above(self):
        graph = star_graph(3)
        plan = smart_initialization_plan(graph)
        assert plan.candidates_above(-1.0) == 4
        assert plan.candidates_above(10.0) == 0

    def test_star_bounds(self):
        """Star: tau = 1 everywhere, w = 1 -> mu = 0.5 (an edge's affinity)."""
        plan = smart_initialization_plan(star_graph(5))
        assert all(mu == pytest.approx(0.5) for mu in plan.mu.values())
