"""Tests for the Wiki, Douban and Actor synthetic datasets."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import average_degree, edge_density
from repro.core.difference import difference_stats
from repro.datasets.synthetic_actor import actor_network
from repro.datasets.synthetic_douban import (
    douban_network,
    interest_graph,
    jaccard,
    two_hop_pairs,
)
from repro.datasets.synthetic_wiki import wiki_interactions
from repro.graph.graph import Graph


class TestWiki:
    @pytest.fixture(scope="class")
    def wiki(self):
        return wiki_interactions(n_editors=400, blob_size=60, seed=4)

    def test_shared_vertices(self, wiki):
        assert wiki.positive.vertex_set() == wiki.negative.vertex_set()

    def test_planted_sets_disjoint(self, wiki):
        groups = [
            wiki.consistent_clique,
            wiki.conflicting_clique,
            wiki.consistent_blob,
            wiki.conflicting_blob,
        ]
        for i, a in enumerate(groups):
            for b in groups[i + 1 :]:
                assert not (a & b)

    def test_consistent_gd_orientation(self, wiki):
        """Consistent GD = positive - negative: the planted consistent
        clique must be strongly positive there."""
        gd = wiki.consistent_gd()
        assert average_degree(gd, wiki.consistent_clique) > 5.0
        assert average_degree(gd, wiki.conflicting_clique) < 0.0

    def test_conflicting_is_flip(self, wiki):
        assert wiki.conflicting_gd() == wiki.consistent_gd().negated()

    def test_negative_background_denser(self, wiki):
        """Paper Table II: the Consistent GD has m+ < m-."""
        stats = difference_stats(wiki.consistent_gd())
        assert stats.num_positive_edges < stats.num_negative_edges

    def test_blob_is_dense_but_not_clique(self, wiki):
        from repro.graph.cliques import is_clique

        gd = wiki.consistent_gd()
        assert not is_clique(gd.positive_part(), wiki.consistent_blob)
        assert average_degree(gd, wiki.consistent_blob) > 0


class TestDoubanPrimitives:
    def test_jaccard(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 0.0
        assert jaccard({1}, {2}) == 0.0
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_two_hop_pairs_path(self):
        graph = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
        pairs = two_hop_pairs(graph)
        assert ("a", "b") in pairs
        assert ("a", "c") in pairs  # via b
        assert len(pairs) == 3

    def test_interest_graph_respects_two_hops(self):
        """Similar users farther than 2 hops get no edge."""
        social = Graph.from_edges(
            [("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0)]
        )
        ratings = {u: {1, 2, 3} for u in "abcd"}
        graph = interest_graph(social, ratings, threshold=0.5)
        assert graph.has_edge("a", "c")
        assert not graph.has_edge("a", "d")

    def test_interest_graph_threshold(self):
        social = Graph.from_edges([("a", "b", 1.0)])
        ratings = {"a": {1, 2, 3, 4}, "b": {3, 4, 5, 6}}
        # Jaccard = 2/6 = 0.333.
        assert interest_graph(social, ratings, 0.3).has_edge("a", "b")
        assert not interest_graph(social, ratings, 0.4).has_edge("a", "b")


class TestDoubanDataset:
    @pytest.fixture(scope="class")
    def douban(self):
        # Planted group counts scale with the community count so this
        # smaller instance keeps the full-scale density proportions.
        return douban_network(
            n_users=300,
            n_communities=10,
            n_movie_groups=1,
            n_book_groups=1,
            seed=6,
        )

    def test_unit_weights_everywhere(self, douban):
        for graph in (douban.social, douban.movie_interest, douban.book_interest):
            assert all(w == 1.0 for _, _, w in graph.edges())

    def test_interest_sparser_than_social(self, douban):
        """Paper Table II: both Interest-Social GDs have m+ < m-."""
        assert douban.movie_interest.num_edges < douban.social.num_edges
        assert douban.book_interest.num_edges < douban.movie_interest.num_edges

    def test_gd_types(self, douban):
        inter = douban.gd("movie", "interest-social")
        social = douban.gd("movie", "social-interest")
        assert inter == social.negated()
        with pytest.raises(ValueError):
            douban.gd("movie", "sideways")

    def test_movie_taste_groups_dense_in_contrast(self, douban):
        gd = douban.gd("movie", "interest-social")
        for group in douban.movie_taste_groups:
            assert edge_density(gd, group) > 0.5

    def test_social_clique_positive_in_social_interest(self, douban):
        gd = douban.gd("movie", "social-interest")
        assert edge_density(gd, douban.social_clique) > 0.5

    def test_movie_asymmetry_matches_paper(self, douban):
        """Table XIII shape: movie interest groups are denser-in-contrast
        than book groups."""
        movie_gd = douban.gd("movie", "interest-social")
        book_gd = douban.gd("book", "interest-social")
        movie_best = max(
            edge_density(movie_gd, g) for g in douban.movie_taste_groups
        )
        book_best = max(
            edge_density(book_gd, g) for g in douban.book_taste_groups
        )
        assert movie_best > book_best


class TestActor:
    @pytest.fixture(scope="class")
    def actor(self):
        return actor_network(n_actors=400, seed=7)

    def test_positive_only(self, actor):
        stats = difference_stats(actor.weighted_gd())
        assert stats.num_negative_edges == 0
        assert stats.min_weight >= 1.0

    def test_trio_has_heavy_weights(self, actor):
        trio = sorted(actor.prolific_trio)
        graph = actor.graph
        for i, u in enumerate(trio):
            for v in trio[i + 1 :]:
                assert graph.weight(u, v) >= 100.0 - 10.0

    def test_discrete_caps_at_ten(self, actor):
        capped = actor.discrete_gd()
        assert max(w for _, _, w in capped.edges()) == 10.0
        # Same topology, just clipped weights.
        assert capped.num_edges == actor.graph.num_edges

    def test_ensembles_are_cliques(self, actor):
        from repro.graph.cliques import is_positive_clique

        for ensemble in actor.ensembles:
            assert is_positive_clique(actor.graph, ensemble)

    def test_weighted_dcsga_prefers_trio_discrete_prefers_ensemble(self, actor):
        """Table XIV shape: capping flips the DCSGA answer from the tiny
        prolific group to a big ensemble."""
        from repro.core.newsea import new_sea

        weighted = new_sea(actor.weighted_gd().positive_part())
        discrete = new_sea(actor.discrete_gd().positive_part())
        assert len(weighted.support) <= 4
        assert len(discrete.support) >= 10
