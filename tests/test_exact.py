"""Tests for the exact small-graph oracles."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.exact import (
    clique_interior_optimum,
    exact_dcsad,
    exact_dcsga,
    exact_heaviest_subgraph,
)
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph
from repro.graph.matrices import affinity_matrix, embedding_to_vector


class TestExactDCSAD:
    def test_positive_triangle(self, signed_graph):
        result = exact_dcsad(signed_graph)
        assert result.subset == {"a", "b", "c"}
        assert result.density == pytest.approx(6.0)

    def test_matches_brute_force_reference(self):
        from tests.conftest import brute_force_densest

        for seed in range(6):
            gd = random_signed_graph(9, 0.5, seed=seed)
            result = exact_dcsad(gd)
            _, expected = brute_force_densest(gd)
            assert result.density == pytest.approx(expected)

    def test_all_negative_graph_single_vertex(self):
        gd = Graph.from_edges([("a", "b", -1.0)])
        result = exact_dcsad(gd)
        assert len(result.subset) == 1
        assert result.density == 0.0

    def test_size_limit(self):
        graph = complete_graph(30)
        with pytest.raises(ValueError, match="limited"):
            exact_dcsad(graph)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_dcsad(Graph())


class TestCliqueInteriorOptimum:
    def test_singleton(self, triangle):
        x, value = clique_interior_optimum(triangle, ["a"])
        assert x == {"a": 1.0}
        assert value == 0.0

    def test_edge(self):
        graph = Graph.from_edges([("a", "b", 3.0)])
        x, value = clique_interior_optimum(graph, ["a", "b"])
        assert x["a"] == pytest.approx(0.5)
        # max 2 x_a x_b w = w/2.
        assert value == pytest.approx(1.5)

    def test_uniform_clique(self):
        graph = complete_graph(4, weight=2.0)
        x, value = clique_interior_optimum(graph, [0, 1, 2, 3])
        assert all(v == pytest.approx(0.25) for v in x.values())
        assert value == pytest.approx(1.5)  # (k-1)/k * w

    def test_boundary_case_returns_none(self):
        """A 'clique' whose interior stationary point has a negative
        entry: the optimum lies on a face, so the oracle skips it."""
        graph = Graph.from_edges(
            [("a", "b", 10.0), ("b", "c", 0.1), ("a", "c", 0.1)]
        )
        candidate = clique_interior_optimum(graph, ["a", "b", "c"])
        if candidate is not None:
            x, _ = candidate
            assert all(v > 0 for v in x.values())

    def test_value_matches_quadratic_form(self):
        for seed in range(5):
            gd = random_signed_graph(10, 0.6, seed=seed).positive_part()
            from repro.graph.cliques import maximal_cliques

            for clique in maximal_cliques(gd):
                candidate = clique_interior_optimum(gd, sorted(clique, key=repr))
                if candidate is None:
                    continue
                x, value = candidate
                matrix, order = affinity_matrix(gd)
                vec = embedding_to_vector(x, order)
                assert value == pytest.approx(float(vec @ matrix @ vec), abs=1e-9)


class TestExactDCSGA:
    def test_clique_motzkin_straus(self):
        result = exact_dcsga(complete_graph(5))
        assert result.objective == pytest.approx(0.8)
        assert result.support == set(range(5))

    def test_weighted_triangle_beats_heavy_edge(self):
        """Affinity of a heavy edge w/2 vs a lighter triangle 2w'/3."""
        gd = Graph.from_edges(
            [
                ("a", "b", 3.0),   # edge alone: 1.5
                ("x", "y", 2.5),
                ("y", "z", 2.5),
                ("x", "z", 2.5),   # triangle: 2/3 * 2.5 = 1.667
            ]
        )
        result = exact_dcsga(gd)
        assert result.support == {"x", "y", "z"}
        assert result.objective == pytest.approx(5.0 / 3.0)

    def test_negative_graph_zero(self):
        gd = Graph.from_edges([("a", "b", -1.0)])
        result = exact_dcsga(gd)
        assert result.objective == 0.0
        assert len(result.support) == 1

    def test_grid_search_never_beats_oracle(self):
        """Random simplex points can never exceed the oracle value."""
        rng = np.random.default_rng(1)
        for seed in range(6):
            gd = random_signed_graph(8, 0.6, seed=seed)
            optimum = exact_dcsga(gd).objective
            matrix, order = affinity_matrix(gd)
            for _ in range(300):
                raw = rng.exponential(size=len(order))
                x = raw / raw.sum()
                assert float(x @ matrix @ x) <= optimum + 1e-9

    def test_support_is_positive_clique(self):
        from repro.graph.cliques import is_positive_clique

        for seed in range(6):
            gd = random_signed_graph(9, 0.5, seed=seed)
            result = exact_dcsga(gd)
            assert is_positive_clique(gd, result.support)

    def test_size_limit(self):
        with pytest.raises(ValueError, match="limited"):
            exact_dcsga(complete_graph(30))


class TestExactHeaviest:
    def test_takes_all_positive_edges_when_connected_gain(self):
        gd = Graph.from_edges(
            [("a", "b", 2.0), ("b", "c", 3.0), ("c", "d", -10.0)]
        )
        subset, weight = exact_heaviest_subgraph(gd)
        assert subset == {"a", "b", "c"}
        assert weight == pytest.approx(10.0)  # 2 * (2 + 3)

    def test_matches_brute_force(self):
        for seed in range(6):
            gd = random_signed_graph(9, 0.5, seed=seed)
            _, weight = exact_heaviest_subgraph(gd)
            vertices = list(gd.vertices())
            best = 0.0
            for size in range(1, len(vertices) + 1):
                for subset in itertools.combinations(vertices, size):
                    best = max(best, gd.total_degree(set(subset)))
            assert weight == pytest.approx(best)

    def test_all_negative_graph(self):
        gd = Graph.from_edges([("a", "b", -1.0)])
        subset, weight = exact_heaviest_subgraph(gd)
        assert weight == 0.0
        assert len(subset) == 1
