"""Tests for the weighted-graph core."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFound, SelfLoopError, VertexNotFound
from repro.graph.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_from_edges_with_isolated(self):
        graph = Graph.from_edges([("a", "b", 2.0)], vertices=["c"])
        assert graph.vertex_set() == {"a", "b", "c"}
        assert graph.num_edges == 1

    def test_from_unweighted_edges(self):
        graph = Graph.from_unweighted_edges([(1, 2), (2, 3)])
        assert graph.weight(1, 2) == 1.0
        assert graph.num_edges == 2

    def test_repeated_edge_overwrites(self):
        graph = Graph.from_edges([("a", "b", 1.0), ("a", "b", 5.0)])
        assert graph.weight("a", "b") == 5.0
        assert graph.num_edges == 1

    def test_copy_is_independent(self):
        graph = Graph.from_edges([("a", "b", 1.0)])
        clone = graph.copy()
        clone.add_edge("a", "c", 2.0)
        assert not graph.has_edge("a", "c")
        assert graph == Graph.from_edges([("a", "b", 1.0)])

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(SelfLoopError):
            graph.add_edge("a", "a", 1.0)


class TestEdgeSemantics:
    def test_zero_weight_means_no_edge(self):
        graph = Graph()
        graph.add_edge("a", "b", 0.0)
        assert not graph.has_edge("a", "b")
        assert graph.num_edges == 0
        assert graph.vertex_set() == {"a", "b"}

    def test_zero_weight_deletes_existing_edge(self):
        graph = Graph.from_edges([("a", "b", 3.0)])
        graph.add_edge("a", "b", 0.0)
        assert not graph.has_edge("a", "b")
        assert graph.num_edges == 0

    def test_negative_weights_are_edges(self):
        graph = Graph.from_edges([("a", "b", -2.5)])
        assert graph.has_edge("a", "b")
        assert graph.weight("a", "b") == -2.5

    def test_increment_edge_creates_and_cancels(self):
        graph = Graph()
        graph.increment_edge("a", "b", 2.0)
        assert graph.weight("a", "b") == 2.0
        graph.increment_edge("a", "b", -2.0)
        assert not graph.has_edge("a", "b")

    def test_symmetry(self):
        graph = Graph.from_edges([("a", "b", 4.0)])
        assert graph.weight("b", "a") == 4.0
        assert "a" in graph.neighbors("b")

    def test_remove_edge_returns_weight(self):
        graph = Graph.from_edges([("a", "b", 7.0)])
        assert graph.remove_edge("a", "b") == 7.0
        assert graph.num_edges == 0

    def test_remove_missing_edge_raises(self):
        graph = Graph.from_edges([("a", "b", 1.0)])
        with pytest.raises(EdgeNotFound):
            graph.remove_edge("a", "c")

    def test_discard_edge(self):
        graph = Graph.from_edges([("a", "b", 1.0)])
        assert graph.discard_edge("a", "b") == 1.0
        assert graph.discard_edge("a", "b") is None

    def test_remove_vertex_drops_incident_edges(self):
        graph = Graph.from_edges(
            [("a", "b", 1.0), ("a", "c", 1.0), ("b", "c", 1.0)]
        )
        graph.remove_vertex("a")
        assert graph.num_edges == 1
        assert graph.vertex_set() == {"b", "c"}

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexNotFound):
            Graph().remove_vertex("ghost")


class TestQueries:
    def test_degree_with_signed_weights(self):
        graph = Graph.from_edges([("a", "b", 3.0), ("a", "c", -5.0)])
        assert graph.degree("a") == -2.0
        assert graph.unweighted_degree("a") == 2

    def test_neighbors_missing_vertex_raises(self):
        with pytest.raises(VertexNotFound):
            Graph().neighbors("ghost")

    def test_edges_iterates_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        pairs = {frozenset((u, v)) for u, v, _ in edges}
        assert len(pairs) == 3

    def test_total_weight_once_counted(self, triangle):
        assert triangle.total_weight() == 3.0

    def test_total_degree_full_graph_double_counts(self, triangle):
        assert triangle.total_degree() == 6.0

    def test_total_degree_subset(self, triangle):
        # Paper convention: W({a,b}) = 2 * w(a,b).
        assert triangle.total_degree({"a", "b"}) == 2.0
        assert triangle.total_degree({"a"}) == 0.0

    def test_total_degree_missing_vertex_raises(self, triangle):
        with pytest.raises(VertexNotFound):
            triangle.total_degree({"a", "ghost"})

    def test_max_and_min_weight_edges(self):
        graph = Graph.from_edges([("a", "b", -3.0), ("b", "c", 5.0)])
        assert graph.max_weight_edge()[2] == 5.0
        assert graph.min_weight_edge()[2] == -3.0
        assert Graph().max_weight_edge() is None


class TestDerivedGraphs:
    def test_subgraph(self):
        graph = Graph.from_edges(
            [("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 3.0), ("c", "d", 4.0)]
        )
        sub = graph.subgraph({"a", "b", "c"})
        assert sub.num_edges == 3
        assert not sub.has_vertex("d")

    def test_subgraph_missing_vertex_raises(self, triangle):
        with pytest.raises(VertexNotFound):
            triangle.subgraph({"a", "ghost"})

    def test_positive_part_keeps_all_vertices(self):
        graph = Graph.from_edges([("a", "b", -1.0), ("b", "c", 2.0)])
        plus = graph.positive_part()
        assert plus.vertex_set() == {"a", "b", "c"}
        assert plus.num_edges == 1
        assert plus.weight("b", "c") == 2.0

    def test_negated_flips_signs(self):
        graph = Graph.from_edges([("a", "b", -1.5), ("b", "c", 2.0)])
        flipped = graph.negated()
        assert flipped.weight("a", "b") == 1.5
        assert flipped.weight("b", "c") == -2.0

    def test_negated_twice_is_identity(self):
        graph = Graph.from_edges([("a", "b", -1.5), ("b", "c", 2.0)])
        assert graph.negated().negated() == graph

    def test_map_weights_drops_zeros(self):
        graph = Graph.from_edges([("a", "b", 0.5), ("b", "c", 3.0)])
        capped = graph.map_weights(lambda w: w if w >= 1.0 else 0.0)
        assert not capped.has_edge("a", "b")
        assert capped.weight("b", "c") == 3.0

    def test_relabeled(self):
        graph = Graph.from_edges([("a", "b", 1.0)])
        renamed = graph.relabeled({"a": "x"})
        assert renamed.has_edge("x", "b")
        assert not renamed.has_vertex("a")

    def test_relabeled_non_injective_raises(self):
        graph = Graph.from_edges([("a", "b", 1.0)])
        with pytest.raises(ValueError):
            graph.relabeled({"a": "b"})
