"""Cross-backend parity: the sparse (CSR/NumPy) and python backends agree.

The sparse backend re-expresses the same algorithms with the same
convergence rules, so on generic inputs (seeded random graphs, where
exact floating-point ties have probability ~0) both backends must land
on the **same supports/subsets** and on objectives equal up to
floating-point summation order.  Exact bitwise equality is *not*
guaranteed — dict-order sums vs vectorised dots round differently — so
objectives are compared with tight relative tolerances.

Covered, per the acceptance criteria: replicator dynamics, SEACD,
greedy peeling, and the full ``new_sea`` pipeline; plus the building
blocks (CSR adjacency itself, the vectorised initialisation plan,
refinement, and the all-initialisations driver).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.affinity.replicator import replicator_dynamics
from repro.core.dcsad import dcs_greedy
from repro.core.initialization import smart_initialization_plan
from repro.core.newsea import new_sea, solve_all_initializations
from repro.core.refinement import refine
from repro.core.seacd import seacd
from repro.exceptions import VertexNotFound
from repro.graph.generators import random_signed_graph
from repro.graph.graph import Graph
from repro.graph.matrices import affinity_matrix
from repro.graph.sparse import CSRAdjacency
from repro.peeling.greedy import greedy_peel

SEEDS = (3, 7, 21)


def _random_gd(seed: int, n: int = 48, p: float = 0.18) -> Graph:
    return random_signed_graph(n, p, positive_fraction=0.6, seed=seed)


# ----------------------------------------------------------------------
# the CSR substrate itself
# ----------------------------------------------------------------------
class TestCSRAdjacency:
    def test_matches_dense_affinity_matrix(self):
        gd = _random_gd(1)
        adj = CSRAdjacency.from_graph(gd)
        dense, order = affinity_matrix(gd)
        assert order == adj.vertices
        assert np.allclose(adj.matrix.toarray(), dense)

    def test_matvec_and_objective(self):
        gd = _random_gd(2)
        adj = CSRAdjacency.from_graph(gd)
        dense, order = affinity_matrix(gd)
        rng = np.random.default_rng(0)
        x = rng.random(len(order))
        assert np.allclose(adj.matvec(x), dense @ x)
        assert adj.objective(x) == pytest.approx(float(x @ dense @ x))

    def test_degrees_match_graph(self):
        gd = _random_gd(3)
        adj = CSRAdjacency.from_graph(gd)
        for vertex, i in adj.index.items():
            assert adj.degrees()[i] == pytest.approx(gd.degree(vertex))
            assert adj.unweighted_degrees()[i] == gd.unweighted_degree(vertex)

    def test_positive_part(self):
        gd = _random_gd(4)
        plus = CSRAdjacency.from_graph(gd).positive_part()
        dense, _ = affinity_matrix(gd.positive_part())
        assert np.allclose(plus.matrix.toarray(), dense)

    def test_embedding_round_trip(self):
        gd = _random_gd(5)
        adj = CSRAdjacency.from_graph(gd)
        embedding = {adj.vertices[0]: 0.25, adj.vertices[3]: 0.75}
        vector = adj.embedding_vector(embedding)
        assert adj.embedding_dict(vector) == embedding
        with pytest.raises(VertexNotFound):
            adj.embedding_vector({"missing-vertex": 1.0})

    def test_dense_block_matches_submatrix(self):
        gd = _random_gd(6)
        adj = CSRAdjacency.from_graph(gd)
        rows = np.array([1, 4, 9, 17])
        assert np.allclose(
            adj.dense_block(rows), adj.submatrix(rows).toarray()
        )
        # The scatter buffer must be cleanly reset between calls.
        other = np.array([0, 2, 9])
        assert np.allclose(
            adj.dense_block(other), adj.submatrix(other).toarray()
        )


# ----------------------------------------------------------------------
# replicator dynamics
# ----------------------------------------------------------------------
class TestReplicatorParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("rule", ["objective", "gradient"])
    def test_uniform_start(self, seed, rule):
        gp = _random_gd(seed).positive_part()
        x0 = {u: 1.0 / gp.num_vertices for u in gp.vertices()}
        tol = 1e-6 if rule == "objective" else 1e-3
        py = replicator_dynamics(gp, x0, rule=rule, tol=tol)
        sp = replicator_dynamics(gp, x0, rule=rule, tol=tol, backend="sparse")
        assert sp.converged == py.converged
        assert sp.iterations == py.iterations
        assert set(sp.x) == set(py.x)
        assert sp.objective == pytest.approx(py.objective, rel=1e-9)
        for vertex, weight in py.x.items():
            assert sp.x[vertex] == pytest.approx(weight, abs=1e-9)

    def test_rejects_negative_weights(self):
        gd = Graph.from_edges([("a", "b", 1.0), ("b", "c", -1.0)])
        x0 = {u: 1.0 / 3.0 for u in "abc"}
        with pytest.raises(ValueError):
            replicator_dynamics(gd, x0, backend="sparse")

    def test_unknown_backend(self):
        gp = _random_gd(0).positive_part()
        with pytest.raises(ValueError):
            replicator_dynamics(gp, {next(gp.vertices()): 1.0}, backend="cuda")


# ----------------------------------------------------------------------
# SEACD
# ----------------------------------------------------------------------
class TestSEACDParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_from_single_vertices(self, seed):
        gp = _random_gd(seed).positive_part()
        for vertex in list(gp.vertices())[::7]:
            py = seacd(gp, {vertex: 1.0})
            sp = seacd(gp, {vertex: 1.0}, backend="sparse")
            assert sp.converged and py.converged
            assert set(sp.x) == set(py.x)
            assert sp.objective == pytest.approx(py.objective, rel=1e-6)
            assert sp.stats.expansions == py.stats.expansions

    def test_empty_support_rejected(self):
        gp = _random_gd(0).positive_part()
        with pytest.raises(ValueError):
            seacd(gp, {}, backend="sparse")

    def test_unknown_backend(self):
        gp = _random_gd(0).positive_part()
        with pytest.raises(ValueError):
            seacd(gp, {next(gp.vertices()): 1.0}, backend="fortran")


# ----------------------------------------------------------------------
# refinement
# ----------------------------------------------------------------------
class TestRefineParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lands_on_same_clique(self, seed):
        gp = _random_gd(seed).positive_part()
        vertex = next(gp.vertices())
        kkt = seacd(gp, {vertex: 1.0})
        py = refine(gp, kkt.x)
        sp = refine(gp, kkt.x, backend="sparse")
        assert set(sp.x) == set(py.x)
        assert sp.objective == pytest.approx(py.objective, rel=1e-6)
        assert sp.initial_objective == pytest.approx(
            py.initial_objective, rel=1e-9
        )

    def test_non_clique_support_is_merged(self):
        # A path a-b-c is not a clique: refinement must merge it down.
        gp = Graph.from_edges([("a", "b", 2.0), ("b", "c", 1.0)])
        x0 = {"a": 0.4, "b": 0.4, "c": 0.2}
        py = refine(gp, x0)
        sp = refine(gp, x0, backend="sparse")
        assert sp.merges == py.merges > 0
        assert set(sp.x) == set(py.x)
        assert sp.objective == pytest.approx(py.objective, rel=1e-9)


# ----------------------------------------------------------------------
# greedy peeling
# ----------------------------------------------------------------------
class TestPeelingParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_signed_random_graphs(self, seed):
        gd = _random_gd(seed)
        py = greedy_peel(gd, backend="heap")
        sp = greedy_peel(gd, backend="sparse")
        assert sp.subset == py.subset
        assert sp.density == pytest.approx(py.density, rel=1e-9)
        assert len(sp.order) == len(py.order)
        assert np.allclose(sp.densities, py.densities)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_positive_part_peel(self, seed):
        gp = _random_gd(seed).positive_part()
        py = greedy_peel(gp, backend="segment_tree")
        sp = greedy_peel(gp, backend="sparse")
        assert sp.subset == py.subset
        assert sp.density == pytest.approx(py.density, rel=1e-9)

    def test_single_vertex(self):
        graph = Graph()
        graph.add_vertex("only")
        result = greedy_peel(graph, backend="sparse")
        assert result.subset == {"only"}
        assert result.order == ["only"]

    def test_python_alias_means_heap(self):
        gd = _random_gd(11)
        assert (
            greedy_peel(gd, backend="python").subset
            == greedy_peel(gd, backend="heap").subset
        )

    def test_dcs_greedy_with_sparse_backend(self):
        gd = _random_gd(9)
        py = dcs_greedy(gd, backend="heap")
        sp = dcs_greedy(gd, backend="sparse")
        assert sp.subset == py.subset
        assert sp.density == pytest.approx(py.density, rel=1e-9)
        assert sp.winner == py.winner


# ----------------------------------------------------------------------
# initialisation plan
# ----------------------------------------------------------------------
class TestPlanParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bounds_and_order(self, seed):
        gp = _random_gd(seed).positive_part()
        py = smart_initialization_plan(gp)
        sp = smart_initialization_plan(gp, backend="sparse")
        # max/div arithmetic only: the bounds are bitwise identical.
        assert sp.mu == py.mu
        assert sp.ego_max_weight == py.ego_max_weight
        assert sp.core_number == py.core_number
        assert sp.order == py.order

    def test_edgeless_graph(self):
        graph = Graph()
        graph.add_vertices("abc")
        sp = smart_initialization_plan(graph, backend="sparse")
        assert sp.mu == {"a": 0.0, "b": 0.0, "c": 0.0}


# ----------------------------------------------------------------------
# the full pipelines
# ----------------------------------------------------------------------
class TestNewSEAParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_pipeline(self, seed):
        gp = _random_gd(seed).positive_part()
        py = new_sea(gp)
        sp = new_sea(gp, backend="sparse")
        assert sp.support == py.support
        assert sp.objective == pytest.approx(py.objective, rel=1e-6)
        assert sp.is_positive_clique == py.is_positive_clique
        assert sp.initializations == py.initializations

    def test_edgeless_fallback(self):
        graph = Graph()
        graph.add_vertices([2, 1, 3])
        py = new_sea(graph)
        sp = new_sea(graph, backend="sparse")
        assert sp.support == py.support
        assert sp.objective == py.objective == 0.0

    def test_unknown_backend(self):
        gp = _random_gd(0).positive_part()
        with pytest.raises(ValueError):
            new_sea(gp, backend="dense")

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_all_initializations(self, seed):
        gp = _random_gd(seed, n=36).positive_part()
        py = solve_all_initializations(gp)
        sp = solve_all_initializations(gp, backend="sparse")
        assert [s[0] for s in sp.solutions] == [s[0] for s in py.solutions]
        for (_, _, obj_sp), (_, _, obj_py) in zip(sp.solutions, py.solutions):
            assert obj_sp == pytest.approx(obj_py, rel=1e-6)
        assert sp.best.support == py.best.support
