"""Tests for non-copying induced subgraph views."""

from __future__ import annotations

import pytest

from repro.exceptions import VertexNotFound
from repro.graph.graph import Graph
from repro.graph.views import SubgraphView


@pytest.fixture
def host() -> Graph:
    return Graph.from_edges(
        [
            ("a", "b", 1.0),
            ("b", "c", 2.0),
            ("a", "c", -3.0),
            ("c", "d", 4.0),
            ("d", "e", 5.0),
        ]
    )


class TestViewProtocol:
    def test_membership_and_len(self, host):
        view = SubgraphView(host, {"a", "b", "c"})
        assert "a" in view and "d" not in view
        assert len(view) == 3
        assert view.num_vertices == 3

    def test_unknown_vertex_rejected(self, host):
        with pytest.raises(VertexNotFound):
            SubgraphView(host, {"a", "ghost"})

    def test_edges_filtered(self, host):
        view = SubgraphView(host, {"a", "b", "c"})
        pairs = {frozenset((u, v)) for u, v, _ in view.edges()}
        assert pairs == {
            frozenset(("a", "b")),
            frozenset(("b", "c")),
            frozenset(("a", "c")),
        }
        assert view.num_edges == 3

    def test_cross_boundary_edges_hidden(self, host):
        view = SubgraphView(host, {"c", "e"})
        assert view.num_edges == 0
        assert not view.has_edge("c", "d")
        assert view.weight("c", "d") == 0.0

    def test_neighbors_mapping(self, host):
        view = SubgraphView(host, {"a", "b", "c"})
        nbrs = view.neighbors("c")
        assert set(nbrs) == {"a", "b"}
        assert nbrs["a"] == -3.0
        assert nbrs.get("d") == 0.0
        assert "d" not in nbrs
        assert len(nbrs) == 2

    def test_neighbors_outside_view_raises(self, host):
        view = SubgraphView(host, {"a"})
        with pytest.raises(VertexNotFound):
            view.neighbors("d")

    def test_degree_is_induced(self, host):
        view = SubgraphView(host, {"c", "d"})
        assert view.degree("c") == 4.0
        assert view.unweighted_degree("d") == 1


class TestAgainstMaterialized:
    def test_matches_subgraph_copy(self, host):
        subset = {"a", "b", "c", "d"}
        view = SubgraphView(host, subset)
        copy = host.subgraph(subset)
        assert view.materialize() == copy
        assert view.total_weight() == copy.total_weight()
        assert view.total_degree() == copy.total_degree()

    def test_total_degree_subset(self, host):
        view = SubgraphView(host, {"a", "b", "c"})
        assert view.total_degree({"a", "b"}) == host.total_degree({"a", "b"})
        with pytest.raises(VertexNotFound):
            view.total_degree({"a", "e"})

    def test_view_works_with_components(self, host):
        from repro.graph.components import connected_components

        view = SubgraphView(host, {"a", "b", "e"})
        components = connected_components(view)
        assert sorted(len(c) for c in components) == [1, 2]

    def test_view_works_with_metrics(self, host):
        from repro.analysis.metrics import average_degree

        view = SubgraphView(host, {"c", "d", "e"})
        assert average_degree(view, {"c", "d", "e"}) == pytest.approx(
            host.total_degree({"c", "d", "e"}) / 3
        )
