"""Tests for density measures and contrast evaluations."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    affinity,
    affinity_contrast,
    average_degree,
    average_degree_contrast,
    edge_density,
    edge_density_contrast,
    embedding_summary,
    support,
    total_degree,
    total_degree_contrast,
    uniform_affinity,
)
from repro.graph.generators import complete_graph
from repro.graph.graph import Graph


class TestSingleGraphMeasures:
    def test_total_degree_counts_twice(self, triangle):
        assert total_degree(triangle, {"a", "b", "c"}) == 6.0

    def test_average_degree_clique(self):
        # rho(K_k) = k - 1 with unit weights.
        for k in (2, 3, 5):
            graph = complete_graph(k)
            assert average_degree(graph, range(k)) == pytest.approx(k - 1)

    def test_average_degree_singleton_zero(self, triangle):
        assert average_degree(triangle, {"a"}) == 0.0

    def test_empty_subset_rejected(self, triangle):
        with pytest.raises(ValueError):
            average_degree(triangle, set())
        with pytest.raises(ValueError):
            edge_density(triangle, set())
        with pytest.raises(ValueError):
            uniform_affinity(triangle, set())

    def test_edge_density(self, triangle):
        assert edge_density(triangle, {"a", "b", "c"}) == pytest.approx(6 / 9)

    def test_edge_density_equals_uniform_affinity(self, signed_graph):
        subset = {"a", "b", "c", "d"}
        assert edge_density(signed_graph, subset) == pytest.approx(
            uniform_affinity(signed_graph, subset)
        )

    def test_affinity_skips_zero_entries(self, triangle):
        x = {"a": 0.5, "b": 0.5, "c": 0.0}
        assert affinity(triangle, x) == pytest.approx(0.5)

    def test_affinity_tolerates_foreign_vertices(self, triangle):
        assert affinity(triangle, {"ghost": 1.0}) == 0.0

    def test_support(self):
        assert support({"a": 0.5, "b": 0.0, "c": 0.5}) == {"a", "c"}


class TestContrasts:
    def _pair(self):
        g1 = Graph.from_edges([("a", "b", 1.0)], vertices=["c"])
        g2 = Graph.from_edges(
            [("a", "b", 4.0), ("b", "c", 2.0)], vertices=[]
        )
        g2.add_vertex("c")
        return g1, g2

    def test_average_degree_contrast(self):
        g1, g2 = self._pair()
        # S = {a,b}: rho2 - rho1 = 4 - 1 = 3.
        assert average_degree_contrast(g1, g2, {"a", "b"}) == pytest.approx(3.0)

    def test_edge_density_contrast(self):
        g1, g2 = self._pair()
        assert edge_density_contrast(g1, g2, {"a", "b"}) == pytest.approx(
            (8 - 2) / 4
        )

    def test_affinity_contrast(self):
        g1, g2 = self._pair()
        x = {"a": 0.5, "b": 0.5}
        assert affinity_contrast(g1, g2, x) == pytest.approx(2.0 - 0.5)

    def test_total_degree_contrast(self):
        g1, g2 = self._pair()
        assert total_degree_contrast(g1, g2, {"a", "b", "c"}) == pytest.approx(
            12.0 - 2.0
        )

    def test_contrast_equals_difference_graph_measure(self):
        """Eq. 5: contrast on the pair == density in GD."""
        from repro.core.difference import difference_graph

        g1, g2 = self._pair()
        gd = difference_graph(g1, g2)
        subset = {"a", "b", "c"}
        assert average_degree_contrast(g1, g2, subset) == pytest.approx(
            average_degree(gd, subset)
        )
        x = {"a": 0.3, "b": 0.3, "c": 0.4}
        assert affinity_contrast(g1, g2, x) == pytest.approx(affinity(gd, x))


class TestSummary:
    def test_embedding_summary_fields(self, signed_graph):
        x = {"a": 0.4, "b": 0.3, "c": 0.3}
        summary = embedding_summary(signed_graph, x)
        assert summary["size"] == 3
        assert summary["affinity"] == pytest.approx(affinity(signed_graph, x))
        assert summary["average_degree"] == pytest.approx(6.0)
        assert summary["edge_density"] == pytest.approx(2.0)
        assert summary["total_weight"] == pytest.approx(18.0)

    def test_empty_embedding_rejected(self, signed_graph):
        with pytest.raises(ValueError):
            embedding_summary(signed_graph, {})
