"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

# Imported eagerly so the hypothesis pytest plugin's lazy import at
# terminal summary finds it cached.  Importing it *there* triggers an
# assertion-rewrite ast.parse at a moment when garbage collection of
# orphaned event-loop coroutines can fire mid-compile, which CPython
# 3.11 answers with "SystemError: AST constructor recursion depth
# mismatch" — failing otherwise-green runs of test subsets that never
# touch hypothesis themselves.
import hypothesis  # noqa: F401
import pytest

from repro.graph.graph import Graph


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "jit: exercises real Numba JIT compilation (seconds of warm-up); "
        "excluded from the default tier — run with -m jit (or "
        '-m "jit or not jit" for everything)',
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list
) -> None:
    """Keep the default ``pytest -x -q`` tier fast: JIT-warmup tests
    only run when a ``-m`` expression explicitly asks for them."""
    if config.option.markexpr:
        return
    skip_jit = pytest.mark.skip(
        reason="jit-marked (JIT warm-up is slow); run with -m jit"
    )
    for item in items:
        if "jit" in item.keywords:
            item.add_marker(skip_jit)


@pytest.fixture
def triangle() -> Graph:
    """Unit-weight triangle on {a, b, c}."""
    return Graph.from_edges(
        [("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 1.0)]
    )


@pytest.fixture
def paper_pair():
    """The Fig. 1 example: (G1, G2) whose difference graph is drawn there.

    G1 edges: (1,2)=2? — Fig. 1 does not label every weight legibly, so
    this fixture uses a pair engineered to produce a mixed-sign
    difference graph with the same 5-vertex shape.
    """
    g1 = Graph.from_edges(
        [(1, 2, 2.0), (2, 3, 2.0), (1, 4, 1.0), (3, 4, 3.0), (3, 5, 2.0), (4, 5, 5.0)]
    )
    g2 = Graph.from_edges(
        [(1, 2, 2.0), (2, 3, 3.0), (1, 4, 4.0), (1, 5, 1.0), (3, 4, 6.0), (4, 5, 3.0), (2, 5, 2.0)]
    )
    for v in (1, 2, 3, 4, 5):
        g1.add_vertex(v)
        g2.add_vertex(v)
    return g1, g2


@pytest.fixture
def signed_graph() -> Graph:
    """A small hand-built signed difference graph with a known optimum.

    The positive triangle {a, b, c} (weights 3, 3, 3) is the densest
    contrast structure; d/e hang off it with negative edges.
    """
    return Graph.from_edges(
        [
            ("a", "b", 3.0),
            ("b", "c", 3.0),
            ("a", "c", 3.0),
            ("c", "d", -2.0),
            ("d", "e", 1.0),
            ("a", "e", -4.0),
        ]
    )


def random_signed(n: int, p: float, seed: int) -> Graph:
    """Convenience wrapper shared by randomised tests."""
    from repro.graph.generators import random_signed_graph

    return random_signed_graph(n, p, seed=seed)


def brute_force_densest(graph: Graph):
    """Reference densest subgraph by exhaustive enumeration (tiny n)."""
    import itertools

    vertices = list(graph.vertices())
    best, best_density = None, float("-inf")
    for size in range(1, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            density = graph.total_degree(set(subset)) / size
            if density > best_density:
                best, best_density = set(subset), density
    return best, best_density
