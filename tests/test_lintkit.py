"""Tests for the invariant checker (repro/lintkit/).

Three layers of coverage:

* fixture-driven rule tests — for every rule, a ``*_bad.py`` fixture
  it must fire on (with the expected number of findings) and a
  ``*_ok.py`` fixture it must stay quiet on;
* framework behaviour — suppression comments (justified, bare,
  comment-line placement, marker text inside strings), select/ignore
  config, unknown rule ids, parse failures, JSON schema, exit codes,
  the ``repro lint`` CLI face;
* the self-check — the full pass over ``src/repro`` is clean, which is
  the merge gate CI enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lintkit import (
    SCHEMA_VERSION,
    LintConfig,
    all_rules,
    lint_paths,
    lint_source,
    render_json,
)
from repro.lintkit.cli import main as lint_main
from repro.lintkit.runner import Rule, register_rule, unregister_rule

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"

#: rule id -> (fixture stem, findings expected on the bad fixture)
RULE_FIXTURES = {
    "REPRO-ASYNC-BLOCK": ("async_block", 8),
    "REPRO-LOCK-HELD": ("lock_held", 5),
    "REPRO-SIGNAL-RESTORE": ("signal_restore", 3),
    "REPRO-SHM-LIFECYCLE": ("shm_lifecycle", 2),
    "REPRO-CANONICAL-DETERMINISM": ("canonical", 5),
    "REPRO-BACKEND-LADDER": ("backend_ladder", 4),
}


def run_rule(rule_id: str, path: Path):
    config = LintConfig(select=frozenset({rule_id}))
    return lint_source(
        path.read_text(encoding="utf-8"), path.as_posix(), config
    )


# ----------------------------------------------------------------------
# fixture-driven rule tests
# ----------------------------------------------------------------------
class TestRuleFixtures:
    def test_every_rule_has_a_fixture_pair(self):
        assert sorted(RULE_FIXTURES) == sorted(
            rule.rule_id for rule in all_rules()
        )
        for stem, _ in RULE_FIXTURES.values():
            assert (FIXTURES / f"{stem}_bad.py").is_file()
            assert (FIXTURES / f"{stem}_ok.py").is_file()

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_rule_fires_on_bad_fixture(self, rule_id):
        stem, expected = RULE_FIXTURES[rule_id]
        findings = run_rule(rule_id, FIXTURES / f"{stem}_bad.py")
        assert [f.rule for f in findings] == [rule_id] * expected

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_rule_quiet_on_ok_fixture(self, rule_id):
        stem, _ = RULE_FIXTURES[rule_id]
        findings = run_rule(rule_id, FIXTURES / f"{stem}_ok.py")
        assert findings == []

    @pytest.mark.parametrize(
        "stem", sorted(stem for stem, _ in RULE_FIXTURES.values())
    )
    def test_ok_fixtures_clean_under_all_rules(self, stem):
        path = FIXTURES / f"{stem}_ok.py"
        findings = lint_source(
            path.read_text(encoding="utf-8"), path.as_posix()
        )
        assert findings == []

    def test_findings_carry_locations_and_messages(self):
        findings = run_rule(
            "REPRO-BACKEND-LADDER", FIXTURES / "backend_ladder_bad.py"
        )
        first = findings[0]
        assert first.path.endswith("backend_ladder_bad.py")
        assert first.line > 0 and first.col >= 0
        assert "resolve_backend" in first.message
        assert first.location in first.render()

    def test_backend_ladder_exempts_the_registry_seam(self):
        source = 'flag = backend == "sparse"\n'
        assert lint_source(source, "src/repro/engine/registry.py") == []
        assert [
            f.rule
            for f in lint_source(source, "src/repro/stream/engine.py")
        ] == ["REPRO-BACKEND-LADDER"]


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_justified_waivers_silence_findings(self):
        path = FIXTURES / "suppressed_ok.py"
        findings = lint_source(
            path.read_text(encoding="utf-8"), path.as_posix()
        )
        assert findings == []

    def test_bare_waiver_suppresses_nothing_and_is_reported(self):
        path = FIXTURES / "suppressed_bare.py"
        findings = lint_source(
            path.read_text(encoding="utf-8"), path.as_posix()
        )
        assert sorted(f.rule for f in findings) == [
            "REPRO-SIGNAL-RESTORE",
            "REPRO-SUPPRESS",
        ]

    def test_unparseable_waiver_is_reported(self):
        source = (
            "import signal\n"
            "# repro: allow REPRO-SIGNAL-RESTORE -- forgot the brackets\n"
            "signal.signal(signal.SIGINT, handler)\n"
        )
        rules = sorted(f.rule for f in lint_source(source, "x.py"))
        assert rules == ["REPRO-SIGNAL-RESTORE", "REPRO-SUPPRESS"]

    def test_marker_inside_a_string_is_inert(self):
        source = (
            "import signal\n"
            "DOC = '# repro: allow[REPRO-SIGNAL-RESTORE] -- nope'\n"
            "signal.signal(signal.SIGINT, handler)\n"
        )
        assert [f.rule for f in lint_source(source, "x.py")] == [
            "REPRO-SIGNAL-RESTORE"
        ]

    def test_waiver_only_covers_its_own_line(self):
        source = (
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)  "
            "# repro: allow[REPRO-ASYNC-BLOCK] -- testing\n"
            "    time.sleep(2)\n"
        )
        findings = lint_source(source, "x.py")
        assert [(f.rule, f.line) for f in findings] == [
            ("REPRO-ASYNC-BLOCK", 4)
        ]

    def test_waiver_only_covers_the_named_rule(self):
        source = (
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)  # repro: allow[REPRO-LOCK-HELD] -- wrong id\n"
        )
        assert [f.rule for f in lint_source(source, "x.py")] == [
            "REPRO-ASYNC-BLOCK"
        ]


# ----------------------------------------------------------------------
# framework behaviour
# ----------------------------------------------------------------------
class TestFramework:
    def test_parse_failure_is_a_finding(self):
        findings = lint_source("def broken(:\n", "x.py")
        assert [f.rule for f in findings] == ["REPRO-PARSE"]
        assert findings[0].line == 1

    def test_select_and_ignore(self):
        path = FIXTURES / "async_block_bad.py"
        source = path.read_text(encoding="utf-8")
        everything = lint_source(source, path.as_posix())
        only = lint_source(
            source,
            path.as_posix(),
            LintConfig(select=frozenset({"REPRO-ASYNC-BLOCK"})),
        )
        none = lint_source(
            source,
            path.as_posix(),
            LintConfig(ignore=frozenset({"REPRO-ASYNC-BLOCK"})),
        )
        assert {f.rule for f in only} == {"REPRO-ASYNC-BLOCK"}
        assert "REPRO-ASYNC-BLOCK" not in {f.rule for f in none}
        assert len(everything) >= len(only)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="REPRO-TYPO"):
            lint_source(
                "x = 1\n", "x.py",
                LintConfig(select=frozenset({"REPRO-TYPO"})),
            )

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["does/not/exist"])

    def test_duplicate_rule_id_rejected(self):
        class Dupe(Rule):
            rule_id = "REPRO-ASYNC-BLOCK"

        all_rules()  # make sure builtins are registered
        with pytest.raises(ValueError, match="already registered"):
            register_rule(Dupe())

    def test_custom_rule_registration_round_trip(self):
        class Custom(Rule):
            rule_id = "TEST-CUSTOM"
            summary = "throwaway"

            def check(self, ctx):
                yield ctx.finding(self.rule_id, ctx.tree.body[0], "hit")

        register_rule(Custom())
        try:
            findings = lint_source(
                "x = 1\n", "x.py",
                LintConfig(select=frozenset({"TEST-CUSTOM"})),
            )
            assert [f.rule for f in findings] == ["TEST-CUSTOM"]
        finally:
            unregister_rule("TEST-CUSTOM")

    def test_rules_document_their_motivation(self):
        for rule in all_rules():
            assert rule.rule_id.startswith("REPRO-")
            assert rule.summary
            assert rule.motivation


# ----------------------------------------------------------------------
# JSON report schema
# ----------------------------------------------------------------------
class TestJsonReport:
    def test_schema_on_findings(self):
        path = FIXTURES / "backend_ladder_bad.py"
        findings = run_rule("REPRO-BACKEND-LADDER", path)
        report = json.loads(render_json(findings, files=1))
        assert report["version"] == SCHEMA_VERSION
        assert report["files"] == 1
        assert report["clean"] is False
        assert report["counts"] == {
            "REPRO-BACKEND-LADDER": len(findings)
        }
        assert len(report["findings"]) == len(findings)
        record = report["findings"][0]
        assert sorted(record) == ["col", "line", "message", "path", "rule"]

    def test_schema_on_clean(self):
        report = json.loads(render_json([], files=3))
        assert report == {
            "version": SCHEMA_VERSION,
            "files": 3,
            "clean": True,
            "counts": {},
            "findings": [],
        }

    def test_findings_sorted_by_location(self):
        path = FIXTURES / "async_block_bad.py"
        findings = run_rule("REPRO-ASYNC-BLOCK", path)
        keys = [(f.path, f.line, f.col) for f in findings]
        assert keys == sorted(keys)


# ----------------------------------------------------------------------
# CLI faces: python -m repro.lintkit and repro lint
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_one_on_findings(self, capsys):
        bad = (FIXTURES / "canonical_bad.py").as_posix()
        assert lint_main([bad]) == 1
        out = capsys.readouterr().out
        assert "REPRO-CANONICAL-DETERMINISM" in out
        assert "finding(s)" in out

    def test_exit_zero_on_clean(self, capsys):
        ok = (FIXTURES / "canonical_ok.py").as_posix()
        assert lint_main([ok]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_two_on_bad_usage(self, capsys):
        assert lint_main(["does/not/exist"]) == 2
        assert lint_main(["--select", "REPRO-TYPO", "src/repro"]) == 2

    def test_json_format_and_output_file(self, tmp_path, capsys):
        bad = (FIXTURES / "shm_lifecycle_bad.py").as_posix()
        out_file = tmp_path / "findings.json"
        code = lint_main(
            [bad, "--format", "json", "--output", str(out_file)]
        )
        assert code == 1
        stdout_report = json.loads(capsys.readouterr().out)
        file_report = json.loads(out_file.read_text(encoding="utf-8"))
        assert stdout_report == file_report
        assert file_report["counts"] == {"REPRO-SHM-LIFECYCLE": 2}

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out

    def test_repro_cli_subcommand(self, capsys):
        from repro.cli import main as repro_main

        bad = (FIXTURES / "backend_ladder_bad.py").as_posix()
        assert repro_main(["lint", bad]) == 1
        assert "REPRO-BACKEND-LADDER" in capsys.readouterr().out
        ok = (FIXTURES / "backend_ladder_ok.py").as_posix()
        assert repro_main(["lint", ok]) == 0


# ----------------------------------------------------------------------
# the merge gate: src/repro itself is clean
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_src_repro_is_clean(self):
        report = lint_paths([str(SRC_REPRO)])
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.clean, f"repro lint found:\n{rendered}"
        # Sanity: the walk actually visited the tree (all layers).
        assert report.files > 50

    def test_known_suppressions_are_justified(self):
        # The waivers currently in the tree; every entry carries a
        # reason (a bare waiver would surface as REPRO-SUPPRESS above).
        cluster = SRC_REPRO / "service" / "cluster.py"
        text = cluster.read_text(encoding="utf-8")
        for line in text.splitlines():
            if "repro: allow[" in line and not line.lstrip().startswith(
                '"'
            ):
                assert " -- " in line
