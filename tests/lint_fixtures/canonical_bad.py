"""REPRO-CANONICAL-DETERMINISM must fire: impure payload builders."""

import random
import time
import uuid


class Result:
    def payload(self):
        return {
            "stamp": time.time(),            # wall clock in the payload
            "token": uuid.uuid4().hex,       # fresh id every run
            "jitter": random.random(),       # RNG in the payload
            "nodes": [v for v in {"b", "a"}],  # unordered set iteration
        }

    def to_record(self, members):
        out = []
        for v in set(members):               # hash-order iteration
            out.append(v)
        return {"members": out}
