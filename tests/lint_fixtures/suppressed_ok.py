"""Justified waivers: every violation below is explicitly suppressed."""

import signal
import time


def worker_main():
    # repro: allow[REPRO-SIGNAL-RESTORE] -- process-lifetime install; shutdown is coordinated elsewhere
    signal.signal(signal.SIGINT, signal.SIG_IGN)


async def poller(conn):
    while not conn.poll():
        pass
    kind = conn.recv()  # repro: allow[REPRO-ASYNC-BLOCK] -- poll() above guarantees a buffered message
    return kind


def rebuild(session, gd):
    with session.lock:
        # repro: allow[REPRO-LOCK-HELD] -- this session's rebuild is its serialisation point by design
        return PreparedGraph(gd)
