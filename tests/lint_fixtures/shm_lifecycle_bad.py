"""REPRO-SHM-LIFECYCLE must fire: mappings that can never be closed."""

from multiprocessing.shared_memory import SharedMemory


def attach_and_leak(name):
    shm = SharedMemory(name=name)
    header = bytes(shm.buf[:16])  # an exception path never closes shm
    return header


def discarded_handle(name, size):
    SharedMemory(name=name, create=True, size=size)  # handle dropped
    return name
