"""REPRO-BACKEND-LADDER must fire: string dispatch outside the seam."""


def solve(gd, backend):
    if backend == "sparse":              # re-forked dispatch ladder
        return sparse_solve(gd)
    if backend in ("python", "pure"):    # membership test, same smell
        return python_solve(gd)
    if "native" != backend:              # reversed operands too
        raise ValueError(backend)
    return native_solve(gd)


def route(request):
    if request.backend == "sparse":      # attribute reference form
        return "fast"
    return "slow"
