"""REPRO-BACKEND-LADDER must stay quiet: dispatch through the registry."""

from repro.engine import resolve_backend


def solve(gd, backend):
    impl = resolve_backend(backend, fallback="python")
    return impl.dcs_greedy(gd)


def describe(kind, mode):
    # Ordinary string comparisons are not backend ladders.
    if kind == "dcsad" and mode != "stream":
        return "greedy"
    return "other"
