"""REPRO-SIGNAL-RESTORE must fire: swaps that leak into the host."""

import signal


def discarded_swap(handler):
    signal.signal(signal.SIGALRM, handler)  # previous handler discarded
    return compute()


def captured_but_never_restored(handler, timeout):
    previous = signal.signal(signal.SIGALRM, handler)
    timer = signal.setitimer(signal.ITIMER_REAL, timeout)
    result = compute()  # an exception here leaks handler AND timer
    signal.signal(signal.SIGALRM, previous)
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    return result, timer
