"""A justification-free waiver: suppresses nothing, and is reported."""

import signal


def worker_main():
    # repro: allow[REPRO-SIGNAL-RESTORE]
    signal.signal(signal.SIGINT, signal.SIG_IGN)
