"""REPRO-SHM-LIFECYCLE must stay quiet: every mapping reaches an owner."""

from multiprocessing.shared_memory import SharedMemory


def attach_and_close(name):
    shm = SharedMemory(name=name)
    try:
        return bytes(shm.buf[:16])
    finally:
        shm.close()


def export(name, size):
    shm = SharedMemory(name=name, create=True, size=size)
    # Ownership transfer: the segment object closes/unlinks it later.
    return SharedGraphSegment(name, shm, created=True)


class Store:
    def open_segment(self, name):
        shm = SharedMemory(name=name)
        self._shm = shm  # the store owns it now; close() lives there
