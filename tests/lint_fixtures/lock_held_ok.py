"""REPRO-LOCK-HELD must stay quiet: build outside, admit under lock."""


class Registry:
    def resolve_entry(self, name, gd):
        with self._lock:
            hit = self._warm.get(name)
        if hit is not None:
            return hit
        prepared = PreparedGraph(gd)  # cold build outside the lock
        with self._lock:
            self._warm[name] = prepared
        return prepared

    def upload(self, name, text):
        graph = read_edge_list(text)
        segment = self.shm_store.export(name, graph)
        with self._lock:
            self._segments[name] = segment
        return segment

    def alerts_snapshot(self, session):
        # Pool-thread code: snapshot under the lock, return, and let
        # the async caller await on its own time.
        with session.lock:
            return session.cursor

    def drain(self):
        with self._lock:
            snapshot = list(self._records)
        for record in snapshot:
            yield record
