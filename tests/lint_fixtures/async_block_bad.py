"""REPRO-ASYNC-BLOCK must fire: blocking calls on the event loop."""

import asyncio
import subprocess
import time


async def handler(lock, sock, gd):
    time.sleep(0.5)                      # blocking sleep
    data = open("graph.txt").read()      # blocking file I/O
    subprocess.run(["du", "-sh"])        # blocking subprocess
    lock.acquire()                       # sync lock primitive
    sock.recv(4096)                      # sync socket read
    done.wait()                          # threading.Event semantics
    answer = dcs_greedy(gd)              # whole solve on the loop
    with lock:                           # sync lock held on the loop
        pass
    await asyncio.sleep(0)
    return data, answer
