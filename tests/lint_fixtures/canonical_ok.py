"""REPRO-CANONICAL-DETERMINISM must stay quiet: pure, sorted payloads."""

import time


class Result:
    def payload(self):
        return {
            "nodes": sorted({"b", "a"}),  # sorted() pins the order
            "score": self.score,
        }

    def to_record(self, members):
        return {"members": [v for v in sorted(set(members))]}

    def finish(self):
        # Clock reads outside payload builders are fine — timings are
        # out-of-band by design.
        self.elapsed = time.time() - self.started
        return self.payload()
