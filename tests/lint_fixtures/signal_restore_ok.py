"""REPRO-SIGNAL-RESTORE must stay quiet: run_guarded-style hygiene."""

import signal


def guarded(handler, timeout):
    previous = signal.signal(signal.SIGALRM, handler)
    try:
        previous_timer = signal.setitimer(signal.ITIMER_REAL, timeout)
    except ValueError:
        signal.signal(signal.SIGALRM, previous)  # undo on the error path
        raise
    try:
        return compute()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if previous_timer[0]:
            signal.setitimer(signal.ITIMER_REAL, *previous_timer)
