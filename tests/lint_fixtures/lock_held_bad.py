"""REPRO-LOCK-HELD must fire: expensive work under a lock."""


class Registry:
    def resolve_entry(self, name, gd):
        with self._lock:
            prepared = PreparedGraph(gd)       # cold build under lock
            self._warm[name] = prepared
        return prepared

    def upload(self, name, text):
        with self._lock:
            graph = read_edge_list(text)       # dataset parse under lock
            segment = self.shm_store.export(name, graph)  # shm export too
        return segment

    async def alerts(self, session):
        with session.lock:
            await asyncio.sleep(0.02)          # suspended holding a lock
        return session.cursor

    def drain(self):
        with self._lock:
            for record in self._records:
                yield record                   # generator parked with lock
