"""REPRO-ASYNC-BLOCK must stay quiet: awaited/offloaded equivalents."""

import asyncio
import time


async def handler(pool, alock, handle, gd):
    await asyncio.sleep(0.5)
    async with alock:
        pass
    await alock.acquire()
    # .wait() inside an awaited expression is the asyncio spelling,
    # even when the await is a wrapper call around it.
    await asyncio.wait_for(handle.ready.wait(), 5.0)
    loop = asyncio.get_running_loop()
    answer = await loop.run_in_executor(pool, dcs_greedy, gd)

    def offloaded():
        # A nested sync helper is a separate scope: it runs in the
        # pool, so its blocking calls are fine.
        time.sleep(0.1)
        return open("graph.txt").read()

    data = await loop.run_in_executor(pool, offloaded)
    return data, answer


def sync_path(gd):
    time.sleep(0.01)
    return dcs_greedy(gd)
