"""Tests for push-relabel max flow (cross-validated against Dinic)."""

from __future__ import annotations

import random

import pytest

from repro.flow.dinic import FlowNetwork, max_flow, min_cut_side
from repro.flow.push_relabel import max_flow_push_relabel


def _build(edges):
    network = FlowNetwork()
    for u, v, cap in edges:
        network.add_arc(u, v, cap)
    return network


class TestSmallNetworks:
    def test_single_arc(self):
        network = _build([("s", "t", 3.0)])
        assert max_flow_push_relabel(network, "s", "t") == 3.0

    def test_bottleneck(self):
        network = _build(
            [("s", "a", 10.0), ("a", "b", 1.5), ("b", "t", 10.0)]
        )
        assert max_flow_push_relabel(network, "s", "t") == pytest.approx(1.5)

    def test_disconnected(self):
        network = _build([("s", "a", 5.0)])
        network.add_node("t")
        assert max_flow_push_relabel(network, "s", "t") == 0.0

    def test_classic_cormen(self):
        network = _build(
            [
                ("s", "v1", 16.0),
                ("s", "v2", 13.0),
                ("v1", "v3", 12.0),
                ("v2", "v1", 4.0),
                ("v2", "v4", 14.0),
                ("v3", "v2", 9.0),
                ("v3", "t", 20.0),
                ("v4", "v3", 7.0),
                ("v4", "t", 4.0),
            ]
        )
        assert max_flow_push_relabel(network, "s", "t") == pytest.approx(23.0)

    def test_same_source_sink_rejected(self):
        network = _build([("s", "t", 1.0)])
        with pytest.raises(ValueError):
            max_flow_push_relabel(network, "s", "s")

    def test_missing_node_rejected(self):
        network = _build([("s", "t", 1.0)])
        with pytest.raises(KeyError):
            max_flow_push_relabel(network, "s", "ghost")


class TestAgainstDinic:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_networks_agree(self, seed):
        rng = random.Random(seed)
        nodes = ["s", "t"] + [f"n{i}" for i in range(6)]
        edges = []
        for u in nodes:
            for v in nodes:
                if u != v and rng.random() < 0.4:
                    edges.append((u, v, float(rng.randint(1, 12))))
        value_pr = max_flow_push_relabel(_build(edges), "s", "t")
        value_dinic = max_flow(_build(edges), "s", "t")
        assert value_pr == pytest.approx(value_dinic, abs=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_residual_gives_valid_cut(self, seed):
        """After push-relabel, the reachable set is a min cut too."""
        rng = random.Random(100 + seed)
        nodes = ["s", "t"] + [f"n{i}" for i in range(5)]
        edges = []
        for u in nodes:
            for v in nodes:
                if u != v and rng.random() < 0.45:
                    edges.append((u, v, float(rng.randint(1, 9))))
        network = _build(edges)
        value = max_flow_push_relabel(network, "s", "t")
        side = min_cut_side(network, "s")
        assert "s" in side and "t" not in side
        crossing = sum(
            cap for u, v, cap in edges if u in side and v not in side
        )
        assert crossing == pytest.approx(value, abs=1e-9)

    def test_undirected_edges(self):
        network = FlowNetwork()
        network.add_undirected("s", "m", 4.0)
        network.add_undirected("m", "t", 2.5)
        assert max_flow_push_relabel(network, "s", "t") == pytest.approx(2.5)
