"""Tests for KKT condition checking."""

from __future__ import annotations

import pytest

from repro.core.kkt import check_kkt, is_kkt_point
from repro.graph.generators import complete_graph
from repro.graph.graph import Graph


class TestGlobalKKT:
    def test_uniform_on_clique_is_kkt(self):
        graph = complete_graph(4)
        x = {u: 0.25 for u in range(4)}
        report = check_kkt(graph, x)
        assert report.is_kkt
        assert report.lam == pytest.approx(1.5)

    def test_unbalanced_point_is_not_kkt(self):
        graph = Graph.from_edges([("a", "b", 1.0)])
        assert not is_kkt_point(graph, {"a": 0.8, "b": 0.2})
        assert is_kkt_point(graph, {"a": 0.5, "b": 0.5})

    def test_single_vertex_with_positive_neighbor_not_kkt(self, triangle):
        """e_a on a triangle: neighbours have gradient 2 > lambda = 0."""
        report = check_kkt(triangle, {"a": 1.0})
        assert not report.is_kkt
        assert report.max_gradient == pytest.approx(2.0)
        assert report.lam == 0.0

    def test_isolated_vertex_is_kkt(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["z"])
        assert is_kkt_point(graph, {"z": 1.0})

    def test_far_vertices_handled_implicitly(self):
        """Vertices with no support neighbour have gradient 0; a positive
        objective keeps the point KKT without examining them."""
        graph = Graph.from_edges([("a", "b", 1.0), ("x", "y", 1.0)])
        assert is_kkt_point(graph, {"a": 0.5, "b": 0.5})

    def test_negative_objective_dominated_by_empty_vertex(self):
        """With f < 0 a zero-gradient vertex beats the support: not KKT."""
        graph = Graph.from_edges([("a", "b", -1.0)], vertices=["z"])
        report = check_kkt(graph, {"a": 0.5, "b": 0.5})
        assert not report.is_kkt

    def test_empty_embedding_rejected(self, triangle):
        with pytest.raises(ValueError):
            check_kkt(triangle, {})


class TestLocalKKT:
    def test_local_on_subset(self, triangle):
        """e_a is a local KKT point on {a} but not globally."""
        report = check_kkt(triangle, {"a": 1.0}, subset={"a"})
        assert report.is_kkt
        assert not is_kkt_point(triangle, {"a": 1.0})

    def test_local_violated_inside_subset(self, triangle):
        report = check_kkt(
            triangle, {"a": 0.9, "b": 0.1}, subset={"a", "b"}
        )
        assert not report.is_kkt

    def test_support_must_be_inside_subset(self, triangle):
        with pytest.raises(ValueError):
            check_kkt(triangle, {"a": 1.0}, subset={"b"})

    def test_gap_sign_convention(self, triangle):
        balanced = check_kkt(triangle, {u: 1 / 3 for u in "abc"})
        assert balanced.gap <= 1e-9
        skewed = check_kkt(triangle, {"a": 0.98, "b": 0.01, "c": 0.01})
        assert skewed.gap > 0
