"""Tests for SEACD (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.core.kkt import check_kkt
from repro.core.seacd import seacd, seacd_from_vertex
from repro.graph.generators import (
    complete_graph,
    planted_clique_graph,
    random_signed_graph,
)
from repro.graph.graph import Graph


class TestBasics:
    def test_empty_embedding_rejected(self, triangle):
        with pytest.raises(ValueError):
            seacd(triangle, {})

    def test_unknown_vertex_rejected(self, triangle):
        with pytest.raises(KeyError):
            seacd_from_vertex(triangle, "ghost")

    def test_isolated_vertex_stays_put(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["z"])
        result = seacd_from_vertex(graph, "z")
        assert result.converged
        assert result.x == {"z": 1.0}
        assert result.objective == 0.0

    def test_clique_reaches_motzkin_straus_optimum(self):
        """On K_k the optimum is (k-1)/k [Motzkin-Straus]."""
        for k in (3, 4, 6):
            graph = complete_graph(k)
            result = seacd_from_vertex(graph, 0)
            assert result.converged
            assert result.objective == pytest.approx((k - 1) / k, abs=1e-3)
            assert set(result.x) == set(range(k))

    def test_two_cliques_converges_to_one(self):
        """Disconnected optima: the run lands on the seed's clique."""
        graph = complete_graph(4)
        for u, v in (("x", "y"), ("y", "z"), ("x", "z")):
            graph.add_edge(u, v, 1.0)
        result = seacd_from_vertex(graph, "x")
        assert set(result.x) == {"x", "y", "z"}
        assert result.objective == pytest.approx(2.0 / 3.0, abs=1e-3)


class TestKKTGuarantee:
    @pytest.mark.parametrize("seed", range(10))
    def test_converges_to_global_kkt(self, seed):
        """Theorem 4: SEACD converges to a KKT point (Eq. 7)."""
        gd_plus = random_signed_graph(25, 0.3, seed=seed).positive_part()
        start = sorted(gd_plus.vertices(), key=repr)[0]
        result = seacd_from_vertex(gd_plus, start)
        assert result.converged
        report = check_kkt(gd_plus, result.x, tol=1e-2)
        assert report.is_kkt, f"seed {seed}: gap={report.gap}"

    @pytest.mark.parametrize("seed", range(10))
    def test_no_expansion_errors_with_correct_condition(self, seed):
        """The paper's headline claim for SEACD: the strict gradient-gap
        shrink condition never produces expansion errors."""
        gd_plus = random_signed_graph(30, 0.3, seed=seed).positive_part()
        start = sorted(gd_plus.vertices(), key=repr)[0]
        result = seacd_from_vertex(gd_plus, start)
        assert result.stats.expansion_errors == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_objective_trace_monotone(self, seed):
        """Across shrink checkpoints the objective never decreases."""
        gd_plus = random_signed_graph(20, 0.4, seed=seed).positive_part()
        start = sorted(gd_plus.vertices(), key=repr)[0]
        result = seacd_from_vertex(gd_plus, start)
        trace = result.stats.objective_trace
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_simplex_invariant(self):
        for seed in range(6):
            gd_plus = random_signed_graph(20, 0.4, seed=seed).positive_part()
            start = sorted(gd_plus.vertices(), key=repr)[0]
            result = seacd_from_vertex(gd_plus, start)
            assert sum(result.x.values()) == pytest.approx(1.0, abs=1e-8)
            assert all(v > 0 for v in result.x.values())


class TestRecovery:
    def test_planted_clique_affinity_reached(self):
        """Seeding inside a planted heavy clique recovers its affinity."""
        graph = planted_clique_graph(40, 6, 0.08, seed=2, clique_weight=4.0)
        result = seacd_from_vertex(graph, 0)
        # Uniform on the 6-clique: (5/6) * 4 = 10/3.
        assert result.objective >= 10.0 / 3.0 - 1e-2

    def test_max_expansions_cap(self):
        graph = complete_graph(8)
        result = seacd(graph, {0: 1.0}, max_expansions=0)
        assert not result.converged
