"""End-to-end integration tests: datasets -> solvers -> reports.

Each test runs the full pipeline a downstream user would: build a
synthetic dataset, derive the difference graph(s), run both solvers,
check the cross-module invariants that individual unit tests cannot see.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    affinity,
    affinity_contrast,
    average_degree,
    average_degree_contrast,
)
from repro.analysis.validation import recovery_report
from repro.core.dcsad import dcs_greedy
from repro.core.difference import difference_graph, difference_stats, flip
from repro.core.newsea import new_sea, solve_all_initializations
from repro.core.topk import top_k_dcsga
from repro.graph.cliques import is_positive_clique


class TestDBLPPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.datasets.synthetic_dblp import coauthor_snapshots

        dataset = coauthor_snapshots(n_authors=300, n_communities=15, seed=9)
        gd = difference_graph(dataset.g1, dataset.g2)
        return dataset, gd

    def test_contrast_identity_between_pair_and_gd(self, setup):
        """Eq. 5/6: measuring on the pair equals measuring on GD, for the
        actual solver outputs."""
        dataset, gd = setup
        ad = dcs_greedy(gd)
        assert average_degree_contrast(
            dataset.g1, dataset.g2, ad.subset
        ) == pytest.approx(ad.density)
        ga = new_sea(gd.positive_part())
        assert affinity_contrast(
            dataset.g1, dataset.g2, ga.x
        ) == pytest.approx(affinity(gd, ga.x), abs=1e-9)

    def test_emerging_and_disappearing_recovered(self, setup):
        dataset, gd = setup
        emerging = [
            item.subset for item in top_k_dcsga(gd.positive_part(), k=3)
        ]
        report = recovery_report(emerging, dataset.emerging_groups, 0.5)
        assert report["recovered"] >= 2
        fading = [
            item.subset
            for item in top_k_dcsga(flip(gd).positive_part(), k=3)
        ]
        report = recovery_report(fading, dataset.disappearing_groups, 0.5)
        assert report["recovered"] >= 2

    def test_affinity_answer_no_worse_than_its_edge_density(self, setup):
        """The optimal embedding beats the uniform one on its support."""
        from repro.analysis.metrics import edge_density

        _, gd = setup
        ga = new_sea(gd.positive_part())
        assert affinity(gd, ga.x) >= edge_density(gd, ga.support) - 1e-9

    def test_dcsad_beats_dcsga_support_on_average_degree(self, setup):
        """DCSAD optimises average degree, so its answer must dominate
        the affinity answer's support under that measure."""
        _, gd = setup
        ad = dcs_greedy(gd)
        ga = new_sea(gd.positive_part())
        assert ad.density >= average_degree(gd, ga.support) - 1e-9


class TestWikiPipeline:
    def test_consistent_and_conflicting_are_consistent(self):
        from repro.datasets.synthetic_wiki import wiki_interactions

        dataset = wiki_interactions(n_editors=350, blob_size=50, seed=10)
        consistent = dataset.consistent_gd()
        conflicting = dataset.conflicting_gd()
        # The two orientations are exact negations; stats must mirror.
        s1 = difference_stats(consistent)
        s2 = difference_stats(conflicting)
        assert s1.num_positive_edges == s2.num_negative_edges
        assert s1.max_weight == pytest.approx(-s2.min_weight)
        # Each planted clique is found in its own orientation only.
        ga_consistent = new_sea(consistent.positive_part())
        ga_conflicting = new_sea(conflicting.positive_part())
        assert affinity(consistent, ga_consistent.x) > 0
        assert affinity(conflicting, ga_conflicting.x) > 0
        assert is_positive_clique(consistent, ga_consistent.support)
        assert is_positive_clique(conflicting, ga_conflicting.support)

    def test_dcsad_larger_than_dcsga(self):
        from repro.datasets.synthetic_wiki import wiki_interactions

        dataset = wiki_interactions(n_editors=350, blob_size=50, seed=11)
        gd = dataset.consistent_gd()
        ad = dcs_greedy(gd)
        ga = new_sea(gd.positive_part())
        assert len(ad.subset) > len(ga.support)


class TestTextPipeline:
    def test_topic_mining_end_to_end(self):
        from repro.datasets.synthetic_text import keyword_corpus

        corpus = keyword_corpus(n_titles_per_era=800, seed=12)
        gd = difference_graph(corpus.g1, corpus.g2)
        solutions = solve_all_initializations(gd.positive_part()).solutions
        top_supports = [frozenset(s) for s, _, _ in solutions[:5]]
        planted = {frozenset(t) for t in corpus.emerging_topics}
        assert any(s in planted for s in top_supports)

    def test_contrast_beats_single_graph_for_trends(self):
        """Quantitative version of the paper's introduction argument."""
        from repro.datasets.synthetic_text import keyword_corpus

        corpus = keyword_corpus(n_titles_per_era=800, seed=13)
        gd = difference_graph(corpus.g1, corpus.g2)
        contrast_best = solve_all_initializations(
            gd.positive_part()
        ).solutions[0]
        # The best contrast support is a planted emerging topic...
        assert any(
            set(contrast_best[0]) == t for t in corpus.emerging_topics
        )
        # ...while the best single-graph topic is an evergreen one (it
        # has higher raw affinity but near-zero contrast).
        single_best = solve_all_initializations(corpus.g2).solutions[0]
        evergreen = any(
            set(single_best[0]) == t for t in corpus.stable_topics
        )
        emerging = any(
            set(single_best[0]) == t for t in corpus.emerging_topics
        )
        assert evergreen or emerging  # it is a real topic either way


class TestActorPipeline:
    def test_plain_affinity_maximisation_mode(self):
        """Section V-C: the DCSGA solvers double as plain affinity
        maximisers on positive graphs (the Actor use case)."""
        from repro.datasets.synthetic_actor import actor_network

        dataset = actor_network(n_actors=300, seed=14)
        result = new_sea(dataset.weighted_gd().positive_part())
        assert result.support <= dataset.prolific_trio
        capped = new_sea(dataset.discrete_gd().positive_part())
        # After capping, one planted ensemble dominates.
        best_overlap = max(
            len(capped.support & ensemble) / len(capped.support)
            for ensemble in dataset.ensembles
        )
        assert best_overlap >= 0.8
