"""Property-based tests for the extension modules (topk, monitor, flows)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def positive_graphs(draw, max_n=12):
    """Random small positive-weight graphs."""
    n = draw(st.integers(3, max_n))
    graph = Graph()
    graph.add_vertices(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                weight = draw(st.floats(min_value=0.25, max_value=4.0))
                graph.add_edge(u, v, weight)
    return graph


class TestTopKProperties:
    @given(positive_graphs())
    @settings(**SETTINGS)
    def test_first_topk_equals_all_inits_best(self, graph):
        """top_k_dcsga's first answer is the all-inits optimum."""
        from repro.core.newsea import solve_all_initializations
        from repro.core.topk import top_k_dcsga

        top = top_k_dcsga(graph, k=1)
        best = solve_all_initializations(graph).best
        assert top[0].objective == pytest.approx(best.objective, abs=1e-9)

    @given(positive_graphs())
    @settings(**SETTINGS)
    def test_dcsad_removal_never_improves(self, graph):
        """Iterated removal cannot find a better answer later than the
        first (the first round sees a superset of every later graph)."""
        from repro.core.topk import top_k_dcsad

        results = top_k_dcsad(graph, k=4, strategy="vertices")
        objectives = [item.objective for item in results]
        assert objectives == sorted(objectives, reverse=True)


class TestMonitorProperties:
    @given(positive_graphs(max_n=8), st.integers(1, 4))
    @settings(**SETTINGS)
    def test_stationary_stream_scores_zero(self, graph, window):
        """Observing the identical snapshot repeatedly: the difference
        graph is empty, so the contrast must be exactly 0."""
        from repro.core.monitor import ContrastMonitor

        monitor = ContrastMonitor(window=window, measure="average_degree")
        alerts = monitor.run([graph] * (window + 3))
        assert alerts
        assert all(alert.score == pytest.approx(0.0) for alert in alerts)

    @given(positive_graphs(max_n=8))
    @settings(**SETTINGS)
    def test_mean_graph_idempotent(self, graph):
        from repro.core.monitor import mean_graph

        assert mean_graph([graph]) == graph


class TestFlowBackendsProperty:
    @given(st.data())
    @settings(**SETTINGS)
    def test_dinic_equals_push_relabel(self, data):
        from repro.flow.dinic import FlowNetwork, max_flow
        from repro.flow.push_relabel import max_flow_push_relabel

        n = data.draw(st.integers(2, 6))
        arcs = []
        for u in range(n):
            for v in range(n):
                if u != v and data.draw(st.booleans()):
                    cap = data.draw(st.integers(1, 9))
                    arcs.append((u, v, float(cap)))

        def build():
            network = FlowNetwork()
            network.add_node(0)
            network.add_node(n - 1)
            for u, v, cap in arcs:
                network.add_arc(u, v, cap)
            return network

        a = max_flow(build(), 0, n - 1)
        b = max_flow_push_relabel(build(), 0, n - 1)
        assert a == pytest.approx(b, abs=1e-9)


class TestGoldbergVsExactProperty:
    @given(positive_graphs(max_n=9))
    @settings(max_examples=20, deadline=None)
    def test_goldberg_matches_subset_enumeration(self, graph):
        from repro.core.exact import exact_dcsad
        from repro.flow.goldberg import densest_subgraph

        if graph.num_edges == 0:
            return
        # Float weights: the default binary-search precision is only
        # exact for integers, so request the accuracy the test asserts.
        _, flow_density = densest_subgraph(graph, precision=1e-9)
        brute = exact_dcsad(graph).density
        assert flow_density == pytest.approx(brute, abs=1e-6)
