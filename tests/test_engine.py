"""Tests for the unified solver engine (repro/engine/).

Covers the three tentpole pieces and their contracts:

* the backend registry — round-trips, aliasing, unknown-name and
  missing-dependency errors, graceful fallback, capability errors,
  custom backend plug-in through every solver entry point;
* ``PreparedGraph`` — build-exactly-once sharing (GD+, CSR,
  fingerprint), fingerprint stability under no-op rebuilds and
  sensitivity to relabelling, executor integration (a paired
  DCSAD+DCSGA batch prepares once);
* the ``SolveRequest``/``SolveResult`` envelope — golden payload
  layout, byte-identity across serial / pooled / cached batch modes,
  and the CLI ``--json`` face of the same envelope.

The refactor's structural guarantee — no ``if backend ==`` string
dispatch outside the registry seam — is enforced tree-wide by the
``REPRO-BACKEND-LADDER`` rule of ``repro lint`` (see
``tests/test_lintkit.py`` for the rule's own regression tests).
"""

from __future__ import annotations

import json

import pytest

from repro.batch import BatchExecutor, BatchQuery, GraphSource
from repro.core.dcsad import dcs_greedy
from repro.core.difference import difference_graph
from repro.core.newsea import new_sea
from repro.engine import (
    PreparedGraph,
    SolveRequest,
    SolverBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
    solve,
    unregister_backend,
)
from repro.exceptions import (
    BackendCapabilityError,
    BackendUnavailableError,
    InputMismatchError,
    UnknownBackendError,
)
from repro.graph.graph import Graph
from repro.graph.sparse import scipy_available

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="sparse backend requires SciPy"
)

@pytest.fixture
def pair():
    g1 = Graph.from_edges([("a", "b", 1.0), ("d", "e", 4.0)], vertices="c")
    g2 = Graph.from_edges(
        [("a", "b", 3.0), ("b", "c", 2.0), ("a", "c", 2.5), ("d", "e", 1.0)]
    )
    return g1, g2


@pytest.fixture
def gd(pair):
    return difference_graph(*pair, require_same_vertices=False)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        for name in ("python", "heap", "segment_tree", "sparse"):
            assert name in names

    def test_unknown_name_is_clear_error(self):
        with pytest.raises(UnknownBackendError) as info:
            get_backend("no-such-backend")
        assert "no-such-backend" in str(info.value)
        assert "python" in str(info.value)  # names the known backends
        assert isinstance(info.value, ValueError)  # legacy catch works

    def test_register_round_trip(self):
        class Toy(SolverBackend):
            name = "toy-round-trip"

        backend = Toy()
        register_backend(backend, aliases=("toy-alias",))
        try:
            assert get_backend("toy-round-trip") is backend
            assert get_backend("toy-alias") is backend
            assert resolve_backend("toy-round-trip") is backend
            assert resolve_backend(backend) is backend  # instances pass through
        finally:
            unregister_backend("toy-round-trip")
            unregister_backend("toy-alias")
        with pytest.raises(UnknownBackendError):
            get_backend("toy-round-trip")

    def test_duplicate_registration_is_loud(self):
        class Shadow(SolverBackend):
            name = "python"

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Shadow())

    def test_replace_allows_shadowing_and_restore(self):
        original = get_backend("segment_tree", require=False)

        class Shadow(SolverBackend):
            name = "segment_tree"

        shadow = Shadow()
        register_backend(shadow, replace=True)
        try:
            assert get_backend("segment_tree") is shadow
        finally:
            register_backend(original, replace=True)
        assert get_backend("segment_tree") is original

    def test_nameless_backend_rejected(self):
        with pytest.raises(ValueError, match="name"):
            register_backend(SolverBackend())

    def test_capability_error_names_backend_and_capability(self, gd):
        with pytest.raises(BackendCapabilityError) as info:
            get_backend("segment_tree").seacd(gd, {"a": 1.0})
        assert "segment_tree" in str(info.value)
        assert "seacd" in str(info.value)
        assert isinstance(info.value, ValueError)

    def test_heap_is_alias_of_python(self):
        assert get_backend("heap") is get_backend("python")

    def test_has_and_require_capabilities(self):
        python = get_backend("python")
        tree = get_backend("segment_tree")
        assert python.has_capability("new_sea")
        assert tree.has_capability("peel")
        assert not tree.has_capability("new_sea")
        python.require_capabilities("peel", "new_sea", "mean_graph")
        with pytest.raises(BackendCapabilityError):
            tree.require_capabilities("peel", "new_sea")

    def test_long_lived_consumers_fail_fast_on_incapable_backends(self):
        # Monitor and streaming engine must reject a solver-incapable
        # backend at construction, not steps into a stream.
        from repro.core.monitor import ContrastMonitor
        from repro.stream.engine import StreamingDCSEngine

        with pytest.raises(BackendCapabilityError):
            ContrastMonitor(window=2, backend="segment_tree")
        with pytest.raises(BackendCapabilityError):
            StreamingDCSEngine(["a", "b"], measure="affinity",
                               backend="segment_tree")


class TestShrinkExpandCapabilities:
    """The coordinate-descent stages exposed as backend capabilities."""

    @pytest.fixture
    def plus(self, gd):
        return gd.positive_part()

    def test_python_shrink_reaches_local_kkt(self, plus):
        from repro.core.kkt import check_kkt

        backend = get_backend("python")
        start = {"a": 0.9, "b": 0.05, "c": 0.05}
        result = backend.shrink(plus, start, subset={"a", "b", "c"}, tol=1e-9)
        assert result.converged
        report = check_kkt(plus, result.x, subset={"a", "b", "c"}, tol=1e-6)
        assert report.is_kkt

    def test_python_expand_grows_support(self, plus):
        backend = get_backend("python")
        step = backend.expand(plus, {"a": 0.5, "b": 0.5})
        assert step.expanded
        assert step.objective_after >= 0.0

    @needs_scipy
    def test_sparse_shrink_matches_python(self, plus):
        start = {"a": 0.9, "b": 0.05, "c": 0.05}
        python = get_backend("python").shrink(
            plus, dict(start), subset={"a", "b", "c"}, tol=1e-9
        )
        sparse = get_backend("sparse").shrink(
            plus, dict(start), subset={"a", "b", "c"}, tol=1e-9
        )
        assert sparse.converged == python.converged
        assert sparse.objective == pytest.approx(python.objective)
        assert set(sparse.x) == set(python.x)

    def test_expand_not_overridden_on_sparse_raises_capability(self, plus):
        # The sparse backend implements the seacd loop whole; the
        # standalone expand stage stays a python capability.
        backend = get_backend("sparse", require=False)
        with pytest.raises(BackendCapabilityError):
            backend.expand(plus, {"a": 1.0})


class TestAvailabilityFallback:
    """The SciPy-absent path: loud by default, graceful on request."""

    @pytest.fixture
    def sparse_unavailable(self, monkeypatch):
        from repro.engine.backends import SparseBackend

        monkeypatch.setattr(SparseBackend, "available", lambda self: False)

    def test_unavailable_backend_raises_at_lookup(self, sparse_unavailable):
        with pytest.raises(BackendUnavailableError, match="SciPy"):
            get_backend("sparse")

    def test_unavailable_solve_raises_not_crashes(self, sparse_unavailable, gd):
        with pytest.raises(BackendUnavailableError):
            dcs_greedy(gd, backend="sparse")
        with pytest.raises(BackendUnavailableError):
            new_sea(gd.positive_part(), backend="sparse")

    def test_resolve_with_fallback_degrades(self, sparse_unavailable):
        import warnings

        from repro.engine import registry
        from repro.exceptions import BackendFallbackWarning

        registry._FALLBACK_WARNED.discard(("sparse", "python"))
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert resolve_backend(
                    "sparse", fallback="python"
                ) is get_backend("python")
            assert any(
                issubclass(w.category, BackendFallbackWarning)
                for w in caught
            )
        finally:
            registry._FALLBACK_WARNED.discard(("sparse", "python"))

    def test_fallback_never_hides_typos(self, sparse_unavailable):
        with pytest.raises(UnknownBackendError):
            resolve_backend("sparce", fallback="python")

    def test_lookup_without_require_still_returns(self, sparse_unavailable):
        assert get_backend("sparse", require=False).name == "sparse"


class TestCustomBackendPlugsInEverywhere:
    def test_counting_backend_through_all_layers(self, pair, gd):
        calls = []

        class Counting(SolverBackend):
            name = "test-counting"

            def peel(self, graph, adjacency=None):
                calls.append("peel")
                return get_backend("python").peel(graph, adjacency=adjacency)

            def new_sea(self, gd_plus, **kwargs):
                calls.append("new_sea")
                return get_backend("python").new_sea(gd_plus, **kwargs)

            def mean_graph(self, graphs):
                calls.append("mean_graph")
                return get_backend("python").mean_graph(graphs)

        register_backend(Counting())
        try:
            # core solvers
            ad = dcs_greedy(gd, backend="test-counting")
            ga = new_sea(gd.positive_part(), backend="test-counting")
            assert ad.subset == {"a", "b", "c"}
            assert ga.support == {"a", "b", "c"}
            # the envelope layer
            report = solve(
                SolveRequest(
                    measure="average_degree", backend="test-counting"
                ),
                PreparedGraph(gd),
            )
            assert report.provenance["backend"] == "test-counting"
            # the monitor layer
            from repro.core.monitor import mean_graph

            mean_graph([gd], backend="test-counting")
            assert calls.count("mean_graph") == 1
            assert calls.count("new_sea") == 1
            assert calls.count("peel") >= 2
        finally:
            unregister_backend("test-counting")

    def test_adjacency_rejected_on_non_csr_backend(self, gd):
        class NoCSR(SolverBackend):
            name = "test-nocsr"

            def new_sea(self, gd_plus, **kwargs):
                return get_backend("python").new_sea(gd_plus, **kwargs)

        register_backend(NoCSR())
        try:
            sentinel = object()
            with pytest.raises(InputMismatchError, match="CSR-capable"):
                new_sea(
                    gd.positive_part(),
                    backend="test-nocsr",
                    adjacency=sentinel,
                )
        finally:
            unregister_backend("test-nocsr")


# ----------------------------------------------------------------------
# PreparedGraph
# ----------------------------------------------------------------------
class TestPreparedGraph:
    def test_gd_plus_built_exactly_once(self, gd):
        prepared = PreparedGraph(gd)
        assert prepared.plus_builds == 0  # lazy
        first = prepared.gd_plus
        second = prepared.gd_plus
        assert first is second
        assert prepared.plus_builds == 1
        assert all(w > 0 for _, _, w in first.edges())

    @needs_scipy
    def test_csr_built_exactly_once_per_graph(self, gd):
        prepared = PreparedGraph(gd)
        assert prepared.csr() is prepared.csr()
        assert prepared.csr_plus() is prepared.csr_plus()
        assert prepared.csr_builds == 2  # one for GD, one for GD+
        assert prepared.csr().n == gd.num_vertices

    @needs_scipy
    def test_require_csr_returns_positive_part_adjacency(self, gd):
        prepared = PreparedGraph(gd)
        adj = prepared.require_csr()
        assert adj is prepared.csr_plus()
        assert (adj.data > 0).all()

    def test_csr_degrades_to_none_without_scipy(self, gd, monkeypatch):
        from repro.graph import sparse as sparse_module

        monkeypatch.setattr(sparse_module, "scipy_available", lambda: False)
        prepared = PreparedGraph(gd)
        assert prepared.csr() is None
        assert prepared.csr_plus() is None
        assert prepared.csr_builds == 0

    def test_fingerprint_lazy_and_cached(self, gd):
        prepared = PreparedGraph(gd)
        assert prepared.cached_fingerprint is None
        value = prepared.fingerprint
        assert prepared.cached_fingerprint == value
        assert prepared.fingerprint_builds == 1
        assert prepared.fingerprint == value  # no re-hash
        assert prepared.fingerprint_builds == 1

    def test_fingerprint_stable_under_noop_rebuild(self, gd):
        # Same content, different construction order -> same identity.
        rebuilt = Graph()
        for vertex in sorted(gd.vertices(), key=repr, reverse=True):
            rebuilt.add_vertex(vertex)
        for u, v, w in sorted(gd.edges(), key=repr, reverse=True):
            rebuilt.add_edge(u, v, w)
        assert PreparedGraph(gd).fingerprint == PreparedGraph(rebuilt).fingerprint

    def test_fingerprint_changes_under_vertex_relabel(self, gd):
        relabeled = Graph()
        mapping = {v: f"{v}x" for v in gd.vertices()}
        relabeled.add_vertices(mapping.values())
        for u, v, w in gd.edges():
            relabeled.add_edge(mapping[u], mapping[v], w)
        assert (
            PreparedGraph(gd).fingerprint
            != PreparedGraph(relabeled).fingerprint
        )

    def test_fingerprint_changes_with_weights(self, gd):
        heavier = gd.copy()
        u, v, w = next(iter(gd.edges()))
        heavier.add_edge(u, v, w + 1.0)
        assert PreparedGraph(gd).fingerprint != PreparedGraph(heavier).fingerprint

    def test_explicit_fingerprint_is_trusted(self, gd):
        prepared = PreparedGraph(gd, fingerprint="abc123")
        assert prepared.fingerprint == "abc123"
        assert prepared.fingerprint_builds == 0

    def test_check_owns_rejects_foreign_graph(self, gd):
        prepared = PreparedGraph(gd)
        prepared.check_owns(gd)
        prepared.check_owns(prepared.gd_plus)
        with pytest.raises(InputMismatchError):
            prepared.check_owns(gd.copy())

    def test_dcs_greedy_rejects_foreign_prepared(self, gd):
        with pytest.raises(InputMismatchError):
            dcs_greedy(gd, prepared=PreparedGraph(gd.copy()))

    def test_from_pair_assembles_difference(self, pair, gd):
        prepared = PreparedGraph.from_pair(*pair)
        assert prepared.fingerprint == PreparedGraph(gd).fingerprint


class TestPairedPreparationSharing:
    """The acceptance bar: DCSAD+DCSGA on one graph prepares once."""

    def test_python_pair_builds_gd_plus_once(self, gd, monkeypatch):
        builds = []
        original = Graph.positive_part

        def counting(self):
            builds.append(self.num_vertices)
            return original(self)

        monkeypatch.setattr(Graph, "positive_part", counting)
        source = GraphSource.from_graph(gd)
        results = BatchExecutor(mode="serial").run(
            [
                BatchQuery(kind="dcsad", source=source, qid="ad"),
                BatchQuery(kind="dcsga", source=source, qid="ga"),
            ]
        )
        assert [r.status for r in results] == ["ok", "ok"]
        assert len(builds) == 1

    @needs_scipy
    def test_sparse_pair_freezes_each_csr_once(self, gd, monkeypatch):
        from repro.graph.sparse import CSRAdjacency

        plus_builds = []
        original_plus = Graph.positive_part

        def counting_plus(self):
            plus_builds.append(self.num_vertices)
            return original_plus(self)

        csr_builds = []
        original_csr = CSRAdjacency.from_graph.__func__

        def counting_csr(cls, graph, order=None):
            csr_builds.append(graph.num_vertices)
            return original_csr(cls, graph, order=order)

        monkeypatch.setattr(Graph, "positive_part", counting_plus)
        monkeypatch.setattr(
            CSRAdjacency, "from_graph", classmethod(counting_csr)
        )
        source = GraphSource.from_graph(gd)
        results = BatchExecutor(mode="serial").run(
            [
                BatchQuery(
                    kind="dcsad", source=source, qid="ad", backend="sparse"
                ),
                BatchQuery(
                    kind="dcsga", source=source, qid="ga", backend="sparse"
                ),
                BatchQuery(
                    kind="dcsga",
                    source=source,
                    qid="ga3",
                    backend="sparse",
                    k=3,
                ),
            ]
        )
        assert [r.status for r in results] == ["ok"] * 3
        # GD+ walked once; exactly two CSR freezes (GD and GD+), shared
        # by the DCSAD peels and every DCSGA initialisation.
        assert len(plus_builds) == 1
        assert len(csr_builds) == 2

    def test_direct_shared_prepared_context(self, gd):
        prepared = PreparedGraph(gd)
        ad = dcs_greedy(gd, prepared=prepared)
        ga = new_sea(prepared.gd_plus)
        assert prepared.plus_builds == 1
        assert ad.subset == ga.support == {"a", "b", "c"}

    @needs_scipy
    def test_csr_of_follows_the_graph_passed(self, gd):
        prepared = PreparedGraph(gd)
        assert prepared.csr_of(gd) is prepared.csr()
        assert prepared.csr_of(prepared.gd_plus) is prepared.csr_plus()
        with pytest.raises(InputMismatchError):
            prepared.csr_of(gd.copy())

    @needs_scipy
    def test_sparse_dcs_greedy_accepts_gd_plus_pairing(self, gd):
        # check_owns sanctions calling dcs_greedy on prepared.gd_plus;
        # the peels must then pair with the GD+ adjacency, not GD's.
        assert any(w < 0 for _, _, w in gd.edges())  # mispairing would throw
        prepared = PreparedGraph(gd)
        via_plus = dcs_greedy(
            prepared.gd_plus, backend="sparse", prepared=prepared
        )
        direct = dcs_greedy(gd.positive_part(), backend="sparse")
        assert via_plus.subset == direct.subset
        assert via_plus.density == pytest.approx(direct.density)


# ----------------------------------------------------------------------
# the typed envelope
# ----------------------------------------------------------------------
class TestSolveRequest:
    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError, match="measure"):
            SolveRequest(measure="vibes")

    def test_nonpositive_k_rejected(self):
        with pytest.raises(ValueError, match="k"):
            SolveRequest(measure="affinity", k=0)

    def test_kind_mapping_round_trips(self):
        request = SolveRequest.from_params(
            "dcsga", {"backend": "python", "k": 2, "tol_scale": 0.5}
        )
        assert request.measure == "affinity"
        assert request.kind == "dcsga"
        assert request.k == 2
        assert request.tol_scale == 0.5
        with pytest.raises(ValueError):
            SolveRequest.from_params("nope", {})

    def test_params_canonical_shape(self):
        params = SolveRequest(measure="average_degree").params()
        assert params == {
            "kind": "dcsad",
            "backend": "python",
            "k": 1,
            "tol_scale": 1e-2,
            "strategy": "vertices",
        }
        assert "strategy" not in SolveRequest(measure="affinity").params()


class TestEnvelopeGolden:
    """Golden layout of the one envelope every layer emits."""

    def test_dcsad_payload_golden(self, gd):
        report = solve(
            SolveRequest(measure="average_degree"), PreparedGraph(gd)
        )
        assert report.payload() == {
            "kind": "dcsad",
            "measure": "average_degree",
            "params": {
                "kind": "dcsad",
                "backend": "python",
                "k": 1,
                "tol_scale": 0.01,
                "strategy": "vertices",
            },
            "vertices": ["a", "b", "c"],
            "density": 13.0 / 3.0,
            "beta": 2.0,
            "kkt": None,
            "detail": {
                "winner": "greedy_gd",
                "connected": True,
                "candidate_densities": {
                    "max_edge": 2.5,
                    "greedy_gd": 13.0 / 3.0,
                    "greedy_gd_plus": 13.0 / 3.0,
                },
            },
        }
        assert report.canonical_json() == json.dumps(
            report.payload(), sort_keys=True
        )

    def test_dcsga_payload_carries_kkt_and_embedding(self, gd):
        report = solve(SolveRequest(measure="affinity"), PreparedGraph(gd))
        payload = report.payload()
        assert payload["kind"] == "dcsga"
        assert payload["vertices"] == ["a", "b", "c"]
        assert payload["kkt"] == {
            "is_kkt_point": True,
            "is_positive_clique": True,
        }
        assert payload["beta"] is None
        assert set(payload["detail"]["embedding"]) == {"a", "b", "c"}
        assert payload["density"] == pytest.approx(report.density)
        assert sum(payload["detail"]["embedding"].values()) == pytest.approx(1.0)

    def test_top_k_payloads_rank_results(self, gd):
        report = solve(
            SolveRequest(measure="average_degree", k=2), PreparedGraph(gd)
        )
        results = report.payload()["detail"]["results"]
        assert [item["rank"] for item in results] == list(range(len(results)))
        assert report.payload()["vertices"] == results[0]["vertices"]
        assert report.payload()["density"] == results[0]["density"]

    def test_record_adds_timings_and_provenance(self, gd):
        prepared = PreparedGraph(gd)
        prepared.fingerprint  # pay for identity -> provenance carries it
        report = solve(SolveRequest(measure="average_degree"), prepared)
        record = report.to_record()
        assert record["provenance"]["backend"] == "python"
        assert record["provenance"]["fingerprint"] == prepared.fingerprint
        assert record["timings"]["solve_seconds"] >= 0.0
        # ...but the canonical answer excludes both.
        assert "timings" not in report.payload()
        assert "provenance" not in report.payload()

    def test_hot_path_skips_kkt_and_fingerprint(self, gd):
        prepared = PreparedGraph(gd)
        report = solve(
            SolveRequest(measure="affinity", check_kkt=False), prepared
        )
        assert report.kkt is None
        assert "fingerprint" not in report.provenance
        assert prepared.fingerprint_builds == 0

    @needs_scipy
    def test_backends_agree_byte_for_byte_on_support(self, gd):
        python = solve(SolveRequest(measure="affinity"), PreparedGraph(gd))
        sparse = solve(
            SolveRequest(measure="affinity", backend="sparse"),
            PreparedGraph(gd),
        )
        assert python.vertices == sparse.vertices
        assert sparse.density == pytest.approx(python.density)


class TestEnvelopeAcrossBatchModes:
    """Byte-identical canonical JSON: serial vs pooled vs cached."""

    def queries(self, pair):
        source = GraphSource.from_pair(*pair)
        return [
            BatchQuery(kind="dcsad", source=source, qid="ad"),
            BatchQuery(kind="dcsad", source=source, qid="adk", k=2),
            BatchQuery(kind="dcsga", source=source, qid="ga"),
            BatchQuery(kind="dcsga", source=source, qid="gak", k=2),
        ]

    def test_serial_pooled_cached_identical(self, pair):
        serial = BatchExecutor(mode="serial").run(self.queries(pair))
        pooled = BatchExecutor(workers=2, mode="process").run(
            self.queries(pair)
        )
        executor = BatchExecutor(mode="serial")
        executor.run(self.queries(pair))
        cached = executor.run(self.queries(pair))
        assert all(r.cached for r in cached)
        golden = [r.canonical_json() for r in serial]
        assert [r.canonical_json() for r in pooled] == golden
        assert [r.canonical_json() for r in cached] == golden

    def test_batch_payload_is_the_envelope_payload(self, pair, gd):
        (result,) = BatchExecutor(mode="serial").run(
            [BatchQuery(kind="dcsga", source=GraphSource.from_pair(*pair))]
        )
        direct = solve(SolveRequest(measure="affinity"), PreparedGraph(gd))
        assert result.payload == direct.payload()


class TestCLIJsonEnvelope:
    @pytest.fixture
    def pair_files(self, tmp_path, pair):
        from repro.graph.io import write_edge_list

        p1, p2 = tmp_path / "g1.txt", tmp_path / "g2.txt"
        write_edge_list(pair[0], p1)
        write_edge_list(pair[1], p2)
        return str(p1), str(p2)

    def test_dcsad_json_flag_prints_envelope(self, pair_files, capsys, gd):
        from repro.cli import main

        assert main(["dcsad", "--json", *pair_files]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "dcsad"
        assert record["vertices"] == ["a", "b", "c"]
        assert record["provenance"]["backend"] == "python"
        assert record["provenance"]["fingerprint"] == PreparedGraph(
            gd
        ).fingerprint
        assert record["timings"]["solve_seconds"] >= 0.0

    def test_dcsga_json_flag_prints_envelope(self, pair_files, capsys):
        from repro.cli import main

        assert main(["dcsga", "--json", "--top-k", "2", *pair_files]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "dcsga"
        assert record["detail"]["results"][0]["vertices"] == ["a", "b", "c"]

    def test_unknown_backend_exits_cleanly(self, pair_files):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown backend"):
            main(["dcsad", "--backend", "vibes", *pair_files])
