"""Tests for dominant-set clustering [Pavan & Pelillo]."""

from __future__ import annotations

import pytest

from repro.affinity.dominant_sets import (
    cluster_assignment,
    dominant_set_clustering,
    extract_dominant_set,
)
from repro.graph.generators import complete_graph, planted_partition_graph
from repro.graph.graph import Graph


def _two_cliques() -> Graph:
    graph = complete_graph(4, weight=3.0)
    for u, v in (("x", "y"), ("y", "z"), ("x", "z")):
        graph.add_edge(u, v, 1.0)
    return graph


class TestExtraction:
    def test_single_clique_is_dominant(self):
        graph = complete_graph(4)
        cluster = extract_dominant_set(graph)
        assert cluster is not None
        assert cluster.support == {0, 1, 2, 3}
        assert cluster.cohesiveness == pytest.approx(0.75, abs=1e-6)

    def test_edgeless_graph_gives_none(self):
        graph = Graph()
        graph.add_vertices("abc")
        assert extract_dominant_set(graph) is None

    def test_strong_clique_extracted_first(self):
        cluster = extract_dominant_set(_two_cliques())
        assert cluster is not None
        assert cluster.support == {0, 1, 2, 3}

    def test_seed_restriction(self):
        cluster = extract_dominant_set(
            _two_cliques(), seed_vertices={"x", "y", "z"}
        )
        assert cluster is not None
        assert cluster.support == {"x", "y", "z"}


class TestClustering:
    def test_negative_weights_rejected(self, signed_graph):
        with pytest.raises(ValueError, match="nonnegative"):
            dominant_set_clustering(signed_graph)

    def test_peels_both_cliques_in_order(self):
        clusters = dominant_set_clustering(_two_cliques())
        assert len(clusters) == 2
        assert clusters[0].support == {0, 1, 2, 3}
        assert clusters[1].support == {"x", "y", "z"}
        assert clusters[0].cohesiveness > clusters[1].cohesiveness

    def test_max_clusters_budget(self):
        clusters = dominant_set_clustering(_two_cliques(), max_clusters=1)
        assert len(clusters) == 1

    def test_min_cohesiveness_threshold(self):
        clusters = dominant_set_clustering(
            _two_cliques(), min_cohesiveness=1.0
        )
        # Only the heavy clique (cohesiveness 2.25) passes; the weak
        # triangle (2/3) does not.
        assert len(clusters) == 1

    def test_supports_are_disjoint(self):
        graph = planted_partition_graph(
            [10, 10, 10], p_in=0.9, p_out=0.02, seed=4
        )
        clusters = dominant_set_clustering(graph, max_clusters=5)
        seen = set()
        for cluster in clusters:
            assert not (cluster.support & seen)
            seen |= cluster.support

    def test_community_recovery(self):
        """On a strong planted partition the first clusters align with
        planted blocks."""
        from repro.graph.generators import partition_blocks

        graph = planted_partition_graph(
            [12, 12], p_in=0.95, p_out=0.01, seed=5
        )
        blocks = [set(b) for b in partition_blocks([12, 12])]
        clusters = dominant_set_clustering(graph, max_clusters=2)
        assert clusters
        top = clusters[0].support
        overlap = max(len(top & block) / len(top | block) for block in blocks)
        assert overlap >= 0.5

    def test_assignment_map(self):
        clusters = dominant_set_clustering(_two_cliques())
        assignment = cluster_assignment(clusters)
        assert assignment[0] == 0
        assert assignment["x"] == 1
