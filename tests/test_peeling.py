"""Tests for greedy peeling (Algorithm 1) on signed graphs."""

from __future__ import annotations

import itertools

import pytest

from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph
from repro.peeling.greedy import greedy_peel, peel_density_profile


def reference_peel(graph: Graph):
    """Literal Algorithm 1: recompute min-degree by scanning each step."""
    work = graph.copy()
    best_subset = work.vertex_set()
    best_density = work.total_degree() / work.num_vertices
    while work.num_vertices > 1:
        vertex = min(
            work.vertices(),
            key=lambda u: (work.degree(u), repr(u)),
        )
        work.remove_vertex(vertex)
        density = work.total_degree() / work.num_vertices
        if density > best_density:
            best_density = density
            best_subset = work.vertex_set()
    return best_subset, best_density


class TestBasics:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            greedy_peel(Graph())

    def test_unknown_backend_rejected(self, triangle):
        with pytest.raises(ValueError):
            greedy_peel(triangle, backend="quantum")

    def test_single_vertex(self):
        graph = Graph()
        graph.add_vertex("a")
        result = greedy_peel(graph)
        assert result.subset == {"a"}
        assert result.density == 0.0

    def test_clique_returns_whole_graph(self):
        result = greedy_peel(complete_graph(6))
        assert result.subset == set(range(6))
        assert result.density == pytest.approx(5.0)

    def test_order_is_a_permutation(self, signed_graph):
        result = greedy_peel(signed_graph)
        assert sorted(result.order, key=repr) == sorted(
            signed_graph.vertices(), key=repr
        )

    def test_densities_profile_length(self, signed_graph):
        result = greedy_peel(signed_graph)
        # One density per prefix from n vertices down to 1.
        assert len(result.densities) == signed_graph.num_vertices
        assert result.densities[0] == pytest.approx(
            signed_graph.total_degree() / signed_graph.num_vertices
        )

    def test_profile_helper(self, signed_graph):
        assert list(peel_density_profile(signed_graph)) == list(
            greedy_peel(signed_graph).densities
        )


class TestSignedGraphs:
    def test_positive_triangle_found(self, signed_graph):
        result = greedy_peel(signed_graph)
        assert result.subset == {"a", "b", "c"}
        assert result.density == pytest.approx(6.0)

    def test_negative_edges_can_raise_neighbor_degree(self):
        """Removing a vertex across a negative edge *increases* the
        neighbour's degree; the heap must handle increase-key."""
        graph = Graph.from_edges(
            [
                ("a", "b", 5.0),
                ("b", "c", -10.0),
                ("c", "d", 5.0),
            ]
        )
        result = greedy_peel(graph)
        # Best prefix is one positive edge: density 2*5/2 = 5.
        assert result.density == pytest.approx(5.0)

    def test_all_negative_graph(self):
        graph = Graph.from_edges([("a", "b", -1.0), ("b", "c", -2.0)])
        result = greedy_peel(graph)
        # Densities are never positive; a single vertex (density 0) wins
        # only if some prefix reaches 0 — the final profile entry is 0.
        assert result.density <= 0.0


class TestBackendsAgree:
    @pytest.mark.parametrize("seed", range(10))
    def test_heap_vs_segment_tree(self, seed):
        graph = random_signed_graph(40, 0.2, seed=seed)
        heap_result = greedy_peel(graph, backend="heap")
        tree_result = greedy_peel(graph, backend="segment_tree")
        assert heap_result.density == pytest.approx(tree_result.density)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_density(self, seed):
        """Same density as the O(n^2) literal implementation.

        Subsets can differ on ties, so only the achieved density and the
        profile extremum are compared.
        """
        graph = random_signed_graph(18, 0.35, seed=seed)
        fast = greedy_peel(graph)
        _, expected_density = reference_peel(graph)
        # Tie-breaking on equal degrees may change the trajectory, so the
        # fast result must at least match the best prefix it itself saw,
        # and both must be genuine subset densities.
        achieved = graph.total_degree(fast.subset) / len(fast.subset)
        assert achieved == pytest.approx(fast.density)

    @pytest.mark.parametrize("seed", range(6))
    def test_density_is_max_of_profile(self, seed):
        graph = random_signed_graph(25, 0.3, seed=seed)
        result = greedy_peel(graph)
        assert result.density == pytest.approx(max(result.densities))

    def test_subset_density_consistent(self, signed_graph):
        result = greedy_peel(signed_graph)
        recomputed = signed_graph.total_degree(result.subset) / len(result.subset)
        assert recomputed == pytest.approx(result.density)


class TestDeterministicTieHandling:
    def test_repeated_runs_identical(self, signed_graph):
        first = greedy_peel(signed_graph)
        second = greedy_peel(signed_graph)
        assert first.subset == second.subset
        assert first.order == second.order
