"""Property-based tests (hypothesis) for the paper's structural claims.

Each test encodes one of the paper's formal statements and checks it on
randomly generated graphs/embeddings:

* Property 1 — DCSAD prefers connected subgraphs;
* Property 2 — DCSGA prefers connected supports;
* Motzkin-Straus — unweighted affinity optimum is 1 - 1/omega(G);
* Theorem 2 — the data-dependent ratio is a true bound;
* Theorem 5 — there is always a positive-clique optimal solution;
* Theorem 6 — mu_u bounds clique affinities through u;
* the expansion-step improvement identity.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import affinity, average_degree
from repro.core.exact import exact_dcsad, exact_dcsga
from repro.graph.components import connected_components
from repro.graph.graph import Graph

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def signed_graphs(draw, max_n=10):
    """Random small signed graphs as edge dicts."""
    n = draw(st.integers(3, max_n))
    graph = Graph()
    graph.add_vertices(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            kind = draw(st.integers(0, 3))
            if kind == 0:
                continue
            weight = draw(
                st.floats(
                    min_value=0.25,
                    max_value=4.0,
                    allow_nan=False,
                )
            )
            graph.add_edge(u, v, weight if kind < 3 else -weight)
    return graph


@st.composite
def embeddings_on(draw, vertices):
    """Random simplex points over a subset of *vertices*."""
    members = draw(
        st.lists(
            st.sampled_from(list(vertices)), min_size=1, max_size=6, unique=True
        )
    )
    raw = [
        draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
        for _ in members
    ]
    total = sum(raw)
    return {u: w / total for u, w in zip(members, raw)}


class TestProperty1:
    @given(signed_graphs())
    @settings(**SETTINGS)
    def test_some_component_at_least_as_dense(self, gd):
        """Property 1: for any S, a connected component of GD(S) matches
        or beats its density."""
        subset = gd.vertex_set()
        components = connected_components(gd, subset)
        whole = average_degree(gd, subset)
        best = max(average_degree(gd, c) for c in components)
        assert best >= whole - 1e-9


class TestProperty2:
    @given(st.data())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            # Disconnected supports with f >= 0 are genuinely rare among
            # random embeddings; the assume() filters are the property's
            # precondition, not a generation bug.
            HealthCheck.filter_too_much,
        ],
    )
    def test_connected_support_at_least_as_good(self, data):
        """Property 2: if f(x) >= 0 and the support is disconnected, some
        component (renormalised) does at least as well."""
        gd = data.draw(signed_graphs())
        x = data.draw(embeddings_on(list(gd.vertices())))
        value = affinity(gd, x)
        assume(value >= 0.0)
        support = set(x)
        components = connected_components(gd, support)
        assume(len(components) > 1)
        best = -math.inf
        for component in components:
            mass = sum(x[u] for u in component)
            if mass <= 0:
                continue
            restricted = {u: x[u] / mass for u in component}
            best = max(best, affinity(gd, restricted))
        assert best >= value - 1e-9


class TestMotzkinStraus:
    @given(signed_graphs(max_n=9))
    @settings(max_examples=25, deadline=None)
    def test_unweighted_optimum_is_clique_number(self, gd):
        """On the unweighted positive skeleton: max x^T A x = 1 - 1/omega."""
        from repro.graph.cliques import max_clique_number

        skeleton = Graph()
        skeleton.add_vertices(gd.vertices())
        for u, v, w in gd.edges():
            if w > 0:
                skeleton.add_edge(u, v, 1.0)
        assume(skeleton.num_edges > 0)
        omega = max_clique_number(skeleton)
        optimum = exact_dcsga(skeleton).objective
        assert optimum == pytest.approx(1.0 - 1.0 / omega, abs=1e-9)


class TestTheorem2:
    @given(signed_graphs())
    @settings(**SETTINGS)
    def test_ratio_bound_holds(self, gd):
        from repro.core.dcsad import dcs_greedy

        result = dcs_greedy(gd)
        optimum = exact_dcsad(gd).density
        assert result.density <= optimum + 1e-9
        if result.ratio_bound is not None:
            assert optimum <= result.ratio_bound * result.density + 1e-9


class TestTheorem5:
    @given(signed_graphs())
    @settings(max_examples=25, deadline=None)
    def test_positive_clique_solution_is_optimal(self, gd):
        """The positive-clique-restricted optimum (exact_dcsga) can never
        be beaten by random simplex points — i.e. restricting to positive
        cliques loses nothing."""
        import numpy as np

        from repro.graph.matrices import affinity_matrix

        optimum = exact_dcsga(gd).objective
        matrix, order = affinity_matrix(gd)
        rng = np.random.default_rng(0)
        for _ in range(100):
            raw = rng.exponential(size=len(order))
            x = raw / raw.sum()
            assert float(x @ matrix @ x) <= optimum + 1e-9


class TestTheorem6:
    @given(signed_graphs())
    @settings(**SETTINGS)
    def test_mu_bound(self, gd):
        from repro.core.initialization import smart_initialization_plan

        gd_plus = gd.positive_part()
        plan = smart_initialization_plan(gd_plus)
        best = exact_dcsga(gd)
        if not best.support or best.objective == 0.0:
            return
        for u in best.support:
            assert best.objective <= plan.mu[u] + 1e-9


class TestExpansionIdentity:
    @given(st.data())
    @settings(**SETTINGS)
    def test_objective_mode_never_decreases(self, data):
        """With lambda_mode='objective', expansion is unconditional ascent
        — even from arbitrary (non-KKT) points."""
        from repro.core.expansion import expansion_step

        gd = data.draw(signed_graphs())
        gd_plus = gd.positive_part()
        assume(gd_plus.num_edges > 0)
        x = data.draw(embeddings_on(list(gd_plus.vertices())))
        step = expansion_step(gd_plus, x, lambda_mode="objective")
        if step.expanded:
            assert step.objective_after >= step.objective_before - 1e-9


class TestSolverAgreement:
    @given(signed_graphs(max_n=9))
    @settings(max_examples=25, deadline=None)
    def test_newsea_between_zero_and_optimum(self, gd):
        from repro.core.newsea import new_sea

        result = new_sea(gd.positive_part())
        optimum = exact_dcsga(gd).objective
        assert -1e-9 <= result.objective <= optimum + 1e-6

    @given(signed_graphs(max_n=9))
    @settings(max_examples=25, deadline=None)
    def test_greedy_subset_density_well_formed(self, gd):
        from repro.core.dcsad import dcs_greedy

        result = dcs_greedy(gd)
        assert result.subset <= gd.vertex_set()
        measured = gd.total_degree(result.subset) / len(result.subset)
        assert measured == pytest.approx(result.density, abs=1e-9)
