"""Tests for replicator dynamics (the original SEA shrink stage)."""

from __future__ import annotations

import pytest

from repro.affinity.replicator import replicator_dynamics
from repro.analysis.metrics import affinity
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph


class TestValidation:
    def test_empty_start_rejected(self, triangle):
        with pytest.raises(ValueError):
            replicator_dynamics(triangle, {})

    def test_negative_weights_rejected(self):
        # f(x0) > 0 so the dynamics actually run and hit the negative
        # (Dx) entry at vertex b.
        graph = Graph.from_edges([("a", "b", -1.0), ("a", "c", 2.0)])
        with pytest.raises(ValueError, match="nonnegative"):
            replicator_dynamics(
                graph, {"a": 0.4, "b": 0.3, "c": 0.3}, rule="objective"
            )


class TestDynamics:
    def test_single_vertex_fixed_point(self, triangle):
        result = replicator_dynamics(triangle, {"a": 1.0})
        assert result.converged
        assert result.x == {"a": 1.0}
        assert result.objective == 0.0

    def test_uniform_clique_fixed_point(self):
        graph = complete_graph(4)
        result = replicator_dynamics(graph, {u: 0.25 for u in range(4)})
        assert result.converged
        assert result.objective == pytest.approx(0.75, abs=1e-6)

    def test_objective_monotone_nondecreasing(self):
        """Baum-Eagon: the replicator never decreases x^T D x (D >= 0)."""
        for seed in range(8):
            gd_plus = random_signed_graph(15, 0.4, seed=seed).positive_part()
            support = sorted(gd_plus.vertices(), key=repr)[:6]
            x = {u: 1.0 / len(support) for u in support}
            before = affinity(gd_plus, x)
            result = replicator_dynamics(gd_plus, x, rule="objective")
            assert result.objective >= before - 1e-9

    def test_support_never_grows(self):
        for seed in range(8):
            gd_plus = random_signed_graph(15, 0.4, seed=seed).positive_part()
            support = sorted(gd_plus.vertices(), key=repr)[:6]
            x = {u: 1.0 / len(support) for u in support}
            result = replicator_dynamics(gd_plus, x)
            assert set(result.x) <= set(support)

    def test_simplex_preserved(self):
        for seed in range(6):
            gd_plus = random_signed_graph(12, 0.5, seed=seed).positive_part()
            support = sorted(gd_plus.vertices(), key=repr)[:5]
            x = {u: 0.2 for u in support}
            result = replicator_dynamics(gd_plus, x)
            assert sum(result.x.values()) == pytest.approx(1.0, abs=1e-9)


class TestConvergenceRules:
    def test_gradient_rule_reaches_local_kkt(self):
        from repro.core.kkt import check_kkt

        graph = complete_graph(5)
        x = {0: 0.4, 1: 0.3, 2: 0.2, 3: 0.05, 4: 0.05}
        result = replicator_dynamics(
            graph, x, rule="gradient", tol=1e-8, max_iterations=200_000
        )
        assert result.converged
        report = check_kkt(graph, result.x, subset=set(range(5)), tol=1e-6)
        assert report.is_kkt

    def test_objective_rule_can_stop_before_kkt(self):
        """The paper's point (Section V-C): the loose Delta-f condition
        stops while the gradient gap is still large on slow dynamics."""
        from repro.core.kkt import check_kkt

        # A weighted path: convergence toward the heavy end is slow.
        graph = Graph.from_edges(
            [("a", "b", 1.0), ("b", "c", 1.0001), ("c", "d", 1.0)]
        )
        x = {u: 0.25 for u in "abcd"}
        loose = replicator_dynamics(graph, x, rule="objective", tol=1e-6)
        report = check_kkt(
            graph, loose.x, subset=set("abcd"), tol=1e-6
        )
        assert loose.converged
        assert not report.is_kkt

    def test_gradient_rule_slower_than_objective_rule(self):
        graph = complete_graph(6)
        x = {u: (0.5 if u == 0 else 0.1) for u in range(6)}
        loose = replicator_dynamics(graph, dict(x), rule="objective", tol=1e-6)
        strict = replicator_dynamics(
            graph, dict(x), rule="gradient", tol=1e-10, max_iterations=500_000
        )
        assert strict.iterations >= loose.iterations
