"""Tests for clique utilities (Bron-Kerbosch, positivity, subsumption)."""

from __future__ import annotations

import itertools

from repro.graph.cliques import (
    count_cliques_by_size,
    is_clique,
    is_positive_clique,
    max_clique_number,
    maximal_cliques,
    maximum_clique,
    remove_subsumed_cliques,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    planted_clique_graph,
)
from repro.graph.graph import Graph


def reference_max_clique_size(graph: Graph) -> int:
    """Brute force over all subsets (tiny graphs only)."""
    vertices = list(graph.vertices())
    best = 0
    for size in range(1, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            if is_clique(graph, subset):
                best = max(best, size)
    return best


class TestIsClique:
    def test_empty_and_singleton_are_cliques(self, triangle):
        assert is_clique(triangle, [])
        assert is_clique(triangle, ["a"])

    def test_triangle_is_clique(self, triangle):
        assert is_clique(triangle, ["a", "b", "c"])

    def test_missing_edge_breaks_clique(self):
        graph = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
        assert not is_clique(graph, ["a", "b", "c"])

    def test_negative_edges_count_for_plain_clique(self):
        graph = Graph.from_edges(
            [("a", "b", -1.0), ("b", "c", 1.0), ("a", "c", 1.0)]
        )
        assert is_clique(graph, ["a", "b", "c"])
        assert not is_positive_clique(graph, ["a", "b", "c"])

    def test_positive_clique(self, signed_graph):
        assert is_positive_clique(signed_graph, ["a", "b", "c"])
        assert not is_positive_clique(signed_graph, ["c", "d"])


class TestEnumeration:
    def test_triangle_single_maximal_clique(self, triangle):
        cliques = list(maximal_cliques(triangle))
        assert cliques == [frozenset({"a", "b", "c"})]

    def test_cycle_maximal_cliques_are_edges(self):
        cliques = set(maximal_cliques(cycle_graph(5)))
        assert len(cliques) == 5
        assert all(len(c) == 2 for c in cliques)

    def test_isolated_vertex_is_singleton_clique(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["z"])
        cliques = set(maximal_cliques(graph))
        assert frozenset({"z"}) in cliques

    def test_counts_on_complete_graph(self):
        counts = count_cliques_by_size(complete_graph(6))
        assert counts == {6: 1}

    def test_all_maximal_cliques_are_cliques_and_maximal(self):
        graph = gnp_graph(18, 0.35, seed=1)
        for clique in maximal_cliques(graph):
            assert is_clique(graph, clique)
            for extra in graph.vertices():
                if extra not in clique:
                    assert not is_clique(graph, set(clique) | {extra})

    def test_enumeration_covers_every_maximal_clique(self):
        """Cross-check count against brute-force maximality testing."""
        graph = gnp_graph(12, 0.4, seed=2)
        found = set(maximal_cliques(graph))
        vertices = list(graph.vertices())
        brute = set()
        for size in range(1, len(vertices) + 1):
            for subset in itertools.combinations(vertices, size):
                s = frozenset(subset)
                if is_clique(graph, s):
                    if not any(
                        is_clique(graph, s | {v})
                        for v in vertices
                        if v not in s
                    ):
                        brute.add(s)
        assert found == brute


class TestMaximumClique:
    def test_planted_clique_recovered(self):
        graph = planted_clique_graph(40, 8, 0.15, seed=3)
        clique = maximum_clique(graph)
        assert clique == set(range(8))

    def test_matches_reference_on_random_graphs(self):
        for seed in range(6):
            graph = gnp_graph(13, 0.45, seed=seed)
            assert max_clique_number(graph) == reference_max_clique_size(graph)

    def test_empty_graph(self):
        assert maximum_clique(Graph()) == set()
        assert max_clique_number(Graph()) == 0


class TestSubsumption:
    def test_duplicates_removed(self):
        cliques = [["a", "b"], ["b", "a"], ["c"]]
        kept = remove_subsumed_cliques(cliques)
        assert sorted(sorted(c) for c in kept) == [["a", "b"], ["c"]]

    def test_subsets_removed(self):
        cliques = [["a", "b", "c"], ["a", "b"], ["c"], ["d", "e"]]
        kept = remove_subsumed_cliques(cliques)
        assert sorted(sorted(c) for c in kept) == [["a", "b", "c"], ["d", "e"]]

    def test_overlapping_non_subsets_both_kept(self):
        cliques = [["a", "b", "c"], ["b", "c", "d"]]
        kept = remove_subsumed_cliques(cliques)
        assert len(kept) == 2

    def test_empty_input(self):
        assert remove_subsumed_cliques([]) == []
