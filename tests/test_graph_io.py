"""Tests for edge-list I/O."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph
from repro.graph.io import (
    edges_sorted,
    read_edge_list,
    read_pair,
    write_edge_list,
    write_pair,
)


def roundtrip(graph: Graph, parser=None) -> Graph:
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    buffer.seek(0)
    return read_edge_list(buffer, parser)


class TestRoundTrip:
    def test_simple_graph(self):
        graph = Graph.from_edges([("a", "b", 1.5), ("b", "c", -2.0)])
        assert roundtrip(graph) == graph

    def test_isolated_vertices_survive(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["lonely"])
        restored = roundtrip(graph)
        assert restored.vertex_set() == {"a", "b", "lonely"}

    def test_int_labels_with_parser(self):
        graph = Graph.from_edges([(1, 2, 3.0)], vertices=[9])
        restored = roundtrip(graph, parser=int)
        assert restored == graph

    def test_float_precision_preserved(self):
        graph = Graph.from_edges([("a", "b", 0.1 + 0.2)])
        assert roundtrip(graph).weight("a", "b") == 0.1 + 0.2

    def test_file_paths(self, tmp_path):
        graph = Graph.from_edges([("x", "y", 4.0)])
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        assert read_edge_list(path) == graph


class TestParsing:
    def test_comments_and_blanks_skipped(self):
        text = "# header\n\na b 2.0\n# trailing\n"
        graph = read_edge_list(io.StringIO(text))
        assert graph.weight("a", "b") == 2.0

    def test_bad_weight_reports_line(self):
        with pytest.raises(InputMismatchError, match="line 2"):
            read_edge_list(io.StringIO("a b 1.0\na c nope\n"))

    def test_wrong_arity_rejected(self):
        with pytest.raises(InputMismatchError, match="line 1"):
            read_edge_list(io.StringIO("a b\n"))

    def test_whitespace_label_rejected_on_write(self):
        graph = Graph.from_edges([("bad label", "b", 1.0)])
        with pytest.raises(InputMismatchError):
            write_edge_list(graph, io.StringIO())


class TestPairs:
    def test_pair_roundtrip(self, tmp_path):
        g1 = Graph.from_edges([("a", "b", 1.0)], vertices=["c"])
        g2 = Graph.from_edges([("b", "c", 2.0)], vertices=["a"])
        p1, p2 = tmp_path / "g1.txt", tmp_path / "g2.txt"
        write_pair(g1, g2, p1, p2)
        r1, r2 = read_pair(p1, p2)
        assert r1 == g1
        assert r2 == g2

    def test_write_pair_requires_same_vertices(self, tmp_path):
        g1 = Graph.from_edges([("a", "b", 1.0)])
        g2 = Graph.from_edges([("b", "c", 2.0)])
        with pytest.raises(InputMismatchError):
            write_pair(g1, g2, tmp_path / "1", tmp_path / "2")

    def test_read_pair_aligns_universes(self, tmp_path):
        p1, p2 = tmp_path / "g1.txt", tmp_path / "g2.txt"
        p1.write_text("a b 1.0\n")
        p2.write_text("b c 1.0\n")
        g1, g2 = read_pair(p1, p2)
        assert g1.vertex_set() == g2.vertex_set() == {"a", "b", "c"}


class TestSortedEdges:
    def test_deterministic_order(self):
        graph = Graph.from_edges([("b", "a", 1.0), ("c", "a", 2.0)])
        assert edges_sorted(graph) == [("a", "b", 1.0), ("a", "c", 2.0)]
