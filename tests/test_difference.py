"""Tests for difference-graph construction and input transformations."""

from __future__ import annotations

import pytest

from repro.core.difference import (
    DBLP_DISCRETE,
    DiscreteLevels,
    cap_weights,
    difference_graph,
    difference_stats,
    discrete_difference_graph,
    flip,
    positive_part,
    scale_free_quantizer,
)
from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph


class TestDifferenceGraph:
    def test_basic_subtraction(self, paper_pair):
        g1, g2 = paper_pair
        gd = difference_graph(g1, g2)
        assert gd.weight(1, 4) == 3.0  # 4 - 1
        assert gd.weight(4, 5) == -2.0  # 3 - 5
        assert gd.weight(2, 3) == 1.0  # 3 - 2

    def test_equal_weights_cancel(self, paper_pair):
        g1, g2 = paper_pair
        gd = difference_graph(g1, g2)
        # (1,2) has weight 2 in both: no edge in GD.
        assert not gd.has_edge(1, 2)

    def test_one_sided_edges(self, paper_pair):
        g1, g2 = paper_pair
        gd = difference_graph(g1, g2)
        assert gd.weight(2, 5) == 2.0  # only in G2
        # (3,5) only in G1 with weight 2 -> -2 in GD.
        assert gd.weight(3, 5) == -2.0

    def test_vertex_set_preserved(self, paper_pair):
        g1, g2 = paper_pair
        gd = difference_graph(g1, g2)
        assert gd.vertex_set() == g1.vertex_set()

    def test_mismatched_vertices_rejected(self):
        g1 = Graph.from_edges([("a", "b", 1.0)])
        g2 = Graph.from_edges([("a", "c", 1.0)])
        with pytest.raises(InputMismatchError):
            difference_graph(g1, g2)

    def test_union_mode(self):
        g1 = Graph.from_edges([("a", "b", 1.0)])
        g2 = Graph.from_edges([("a", "c", 2.0)])
        gd = difference_graph(g1, g2, require_same_vertices=False)
        assert gd.vertex_set() == {"a", "b", "c"}
        assert gd.weight("a", "b") == -1.0
        assert gd.weight("a", "c") == 2.0

    def test_alpha_generalisation(self):
        """Section III-D: D = A2 - alpha * A1."""
        g1 = Graph.from_edges([("a", "b", 2.0)])
        g2 = Graph.from_edges([("a", "b", 3.0)])
        gd = difference_graph(g1, g2, alpha=1.5)
        assert gd.weight("a", "b") == pytest.approx(0.0, abs=1e-12)
        gd2 = difference_graph(g1, g2, alpha=0.5)
        assert gd2.weight("a", "b") == pytest.approx(2.0)

    def test_antisymmetry(self, paper_pair):
        """GD(G1, G2) == -GD(G2, G1)."""
        g1, g2 = paper_pair
        forward = difference_graph(g1, g2)
        backward = difference_graph(g2, g1)
        assert forward == backward.negated()

    def test_flip_equals_swapped_arguments(self, paper_pair):
        g1, g2 = paper_pair
        assert flip(difference_graph(g1, g2)) == difference_graph(g2, g1)


class TestPositivePart:
    def test_only_positive_edges(self, paper_pair):
        g1, g2 = paper_pair
        plus = positive_part(difference_graph(g1, g2))
        assert all(w > 0 for _, _, w in plus.edges())
        assert plus.vertex_set() == g1.vertex_set()


class TestDiscreteSetting:
    def test_paper_levels(self):
        """Section VI-B quantisation of collaboration-count differences."""
        assert DBLP_DISCRETE(7.0) == 2.0
        assert DBLP_DISCRETE(5.0) == 2.0
        assert DBLP_DISCRETE(3.0) == 1.0
        assert DBLP_DISCRETE(2.0) == 1.0
        assert DBLP_DISCRETE(1.0) == 0.0
        assert DBLP_DISCRETE(-1.0) == -1.0
        assert DBLP_DISCRETE(-3.0) == -1.0
        assert DBLP_DISCRETE(-4.0) == -2.0
        assert DBLP_DISCRETE(-10.0) == -2.0

    def test_discrete_difference_graph(self):
        g1 = Graph.from_edges(
            [("a", "b", 1.0), ("c", "d", 10.0)], vertices=["e"]
        )
        g2 = Graph.from_edges(
            [("a", "b", 7.0), ("c", "d", 1.0)], vertices=["e"]
        )
        gd = discrete_difference_graph(g1, g2)
        assert gd.weight("a", "b") == 2.0  # +6 -> 2
        assert gd.weight("c", "d") == -2.0  # -9 -> -2

    def test_level_misalignment_rejected(self):
        with pytest.raises(ValueError):
            DiscreteLevels(thresholds=(1.0,), values=(1.0, 2.0))

    def test_levels_must_decrease(self):
        with pytest.raises(ValueError):
            DiscreteLevels(thresholds=(1.0, 2.0), values=(1.0, 2.0))

    def test_zero_mapped_edges_dropped(self):
        g1 = Graph.from_edges([("a", "b", 1.0)])
        g2 = Graph.from_edges([("a", "b", 2.0)])  # diff +1 -> level 0
        gd = discrete_difference_graph(g1, g2)
        assert gd.num_edges == 0


class TestCapAndQuantize:
    def test_cap_weights(self):
        graph = Graph.from_edges(
            [("a", "b", 50.0), ("b", "c", -30.0), ("c", "d", 5.0)]
        )
        capped = cap_weights(graph, 10.0)
        assert capped.weight("a", "b") == 10.0
        assert capped.weight("b", "c") == -10.0
        assert capped.weight("c", "d") == 5.0

    def test_cap_must_be_positive(self, triangle):
        with pytest.raises(ValueError):
            cap_weights(triangle, 0.0)

    def test_scale_free_quantizer(self):
        quantize = scale_free_quantizer([1.0, 3.0, 8.0])
        assert quantize(0.5) == 0.0
        assert quantize(2.0) == 1.0
        assert quantize(-2.0) == -1.0
        assert quantize(5.0) == 2.0
        assert quantize(100.0) == 3.0

    def test_quantizer_validates_boundaries(self):
        with pytest.raises(ValueError):
            scale_free_quantizer([])
        with pytest.raises(ValueError):
            scale_free_quantizer([2.0, 1.0])
        with pytest.raises(ValueError):
            scale_free_quantizer([-1.0])


class TestStats:
    def test_stats_fields(self, paper_pair):
        g1, g2 = paper_pair
        stats = difference_stats(difference_graph(g1, g2))
        assert stats.num_vertices == 5
        assert stats.num_positive_edges + stats.num_negative_edges == stats.num_edges
        assert stats.max_weight >= stats.min_weight
        assert stats.positive_density == stats.num_positive_edges / 5

    def test_stats_empty_graph(self):
        graph = Graph()
        graph.add_vertices("ab")
        stats = difference_stats(graph)
        assert stats.max_weight is None
        assert stats.average_weight is None
        assert stats.positive_density == 0.0

    def test_stats_average(self):
        graph = Graph.from_edges([("a", "b", 2.0), ("b", "c", -1.0)])
        stats = difference_stats(graph)
        assert stats.average_weight == pytest.approx(0.5)
