"""Tests for connected components and the densest-component refinement."""

from __future__ import annotations

from repro.graph.components import (
    connected_components,
    densest_component,
    is_connected,
)
from repro.graph.graph import Graph


def two_triangles() -> Graph:
    """Two disjoint triangles with different densities."""
    return Graph.from_edges(
        [
            ("a", "b", 1.0),
            ("b", "c", 1.0),
            ("a", "c", 1.0),
            ("x", "y", 5.0),
            ("y", "z", 5.0),
            ("x", "z", 5.0),
        ]
    )


class TestComponents:
    def test_single_component(self, triangle):
        components = connected_components(triangle)
        assert len(components) == 1
        assert components[0] == {"a", "b", "c"}

    def test_two_components(self):
        components = connected_components(two_triangles())
        assert sorted(len(c) for c in components) == [3, 3]

    def test_isolated_vertices_are_components(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["z"])
        components = connected_components(graph)
        assert {"z"} in components

    def test_subset_restriction(self):
        graph = two_triangles()
        components = connected_components(graph, subset={"a", "b", "x"})
        assert sorted(sorted(c) for c in components) == [["a", "b"], ["x"]]

    def test_negative_edges_still_connect(self):
        graph = Graph.from_edges([("a", "b", -1.0)])
        assert is_connected(graph)

    def test_empty_graph_counts_connected(self):
        assert is_connected(Graph())

    def test_singleton_connected(self):
        graph = Graph()
        graph.add_vertex("a")
        assert is_connected(graph)

    def test_is_connected_subset(self):
        graph = two_triangles()
        assert is_connected(graph, {"a", "b", "c"})
        assert not is_connected(graph, {"a", "x"})


class TestDensestComponent:
    def test_picks_heavier_triangle(self):
        graph = two_triangles()
        best = densest_component(graph, graph.vertex_set())
        assert best == {"x", "y", "z"}

    def test_single_component_passthrough(self, triangle):
        assert densest_component(triangle, {"a", "b", "c"}) == {"a", "b", "c"}

    def test_property1_component_at_least_as_dense(self):
        """Property 1: some component has density >= the whole set."""
        graph = two_triangles()
        subset = graph.vertex_set()
        whole = graph.total_degree(subset) / len(subset)
        best = densest_component(graph, subset)
        best_density = graph.total_degree(best) / len(best)
        assert best_density >= whole

    def test_empty_subset_raises(self, triangle):
        import pytest

        with pytest.raises(ValueError):
            densest_component(triangle, set())
