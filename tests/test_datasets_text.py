"""Tests for the synthetic keyword corpus (DM data substitute)."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import uniform_affinity
from repro.core.difference import difference_graph
from repro.datasets.synthetic_text import (
    DEFAULT_TOPICS,
    association_graph,
    keyword_corpus,
)
from repro.graph.graph import Graph


@pytest.fixture(scope="module")
def corpus():
    return keyword_corpus(
        n_titles_per_era=1200, n_background_words=100, seed=2
    )


class TestAssociationGraph:
    def test_weights_match_cooccurrence(self):
        titles = [["a", "b"], ["a", "b", "c"], ["c", "d"]]
        graph = association_graph(titles, ["a", "b", "c", "d"])
        assert graph.weight("a", "b") == pytest.approx(100 * 2 / 3)
        assert graph.weight("a", "c") == pytest.approx(100 * 1 / 3)
        assert graph.weight("a", "d") == 0.0

    def test_duplicate_words_in_title_count_once(self):
        graph = association_graph([["a", "a", "b"]], ["a", "b"])
        assert graph.weight("a", "b") == pytest.approx(100.0)

    def test_empty_corpus(self):
        graph = association_graph([], ["a", "b"])
        assert graph.num_edges == 0
        assert graph.vertex_set() == {"a", "b"}


class TestCorpus:
    def test_vocabulary_covers_topics(self, corpus):
        for topic_set in (
            corpus.emerging_topics
            + corpus.disappearing_topics
            + corpus.stable_topics
        ):
            assert topic_set <= corpus.vocabulary

    def test_era2_growth(self, corpus):
        assert len(corpus.titles2) > len(corpus.titles1)

    def test_shared_vertex_sets(self, corpus):
        assert corpus.g1.vertex_set() == corpus.g2.vertex_set()

    def test_topic_classification(self, corpus):
        assert {"social", "networks"} in corpus.emerging_topics
        assert {"mining", "association", "rules"} in corpus.disappearing_topics
        assert {"time", "series"} in corpus.stable_topics

    def test_determinism(self):
        a = keyword_corpus(n_titles_per_era=300, seed=9)
        b = keyword_corpus(n_titles_per_era=300, seed=9)
        assert a.g1 == b.g1 and a.g2 == b.g2


class TestContrastShape:
    def test_emerging_topic_has_positive_contrast(self, corpus):
        gd = difference_graph(corpus.g1, corpus.g2)
        for topic in corpus.emerging_topics:
            assert uniform_affinity(gd, topic) > 0.0

    def test_disappearing_topic_has_negative_contrast(self, corpus):
        gd = difference_graph(corpus.g1, corpus.g2)
        for topic in corpus.disappearing_topics:
            assert uniform_affinity(gd, topic) < 0.0

    def test_stable_topics_hot_in_both_eras(self, corpus):
        """The 'time series' trap: high affinity in each era separately,
        small contrast between them."""
        gd = difference_graph(corpus.g1, corpus.g2)
        for topic in corpus.stable_topics:
            in_g1 = uniform_affinity(corpus.g1, topic)
            in_g2 = uniform_affinity(corpus.g2, topic)
            contrast = abs(uniform_affinity(gd, topic))
            assert in_g1 > contrast
            assert in_g2 > contrast

    def test_emerging_beats_stable_on_contrast(self, corpus):
        gd = difference_graph(corpus.g1, corpus.g2)
        best_emerging = max(
            uniform_affinity(gd, t) for t in corpus.emerging_topics
        )
        best_stable = max(
            abs(uniform_affinity(gd, t)) for t in corpus.stable_topics
        )
        assert best_emerging > best_stable
