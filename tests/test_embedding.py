"""Tests for sparse simplex embeddings."""

from __future__ import annotations

import pytest

from repro.core.embedding import Embedding, validate_simplex
from repro.exceptions import EmbeddingError
from repro.graph.graph import Graph


class TestConstruction:
    def test_unit(self):
        x = Embedding.unit("a")
        assert x["a"] == 1.0
        assert x.support() == {"a"}
        assert len(x) == 1

    def test_uniform(self):
        x = Embedding.uniform(["a", "b", "c", "d"])
        assert x["a"] == pytest.approx(0.25)
        assert len(x) == 4

    def test_uniform_empty_rejected(self):
        with pytest.raises(EmbeddingError):
            Embedding.uniform([])

    def test_normalized(self):
        x = Embedding.normalized({"a": 2.0, "b": 6.0})
        assert x["a"] == pytest.approx(0.25)
        assert x["b"] == pytest.approx(0.75)

    def test_normalized_rejects_nonpositive(self):
        with pytest.raises(EmbeddingError):
            Embedding.normalized({"a": 0.0})

    def test_validation_of_sum(self):
        with pytest.raises(EmbeddingError):
            Embedding({"a": 0.3, "b": 0.3})

    def test_validation_of_negatives(self):
        with pytest.raises(EmbeddingError):
            Embedding({"a": 1.5, "b": -0.5})

    def test_zero_entries_dropped(self):
        x = Embedding({"a": 1.0, "b": 0.0})
        assert "b" not in x
        assert x.support() == {"a"}

    def test_validate_simplex_helper(self):
        validate_simplex({"a": 0.5, "b": 0.5})
        with pytest.raises(EmbeddingError):
            validate_simplex({"a": 0.9})
        with pytest.raises(EmbeddingError):
            validate_simplex({"a": 1.5, "b": -0.5})


class TestAlgebra:
    def test_affinity_single_edge(self):
        graph = Graph.from_edges([("a", "b", 4.0)])
        x = Embedding.uniform(["a", "b"])
        # f = 2 * 0.5 * 0.5 * 4 = 2 (edge counted in both directions).
        assert x.affinity(graph) == pytest.approx(2.0)

    def test_affinity_uniform_clique(self, triangle):
        """Motzkin-Straus sanity: uniform on a k-clique gives (k-1)/k."""
        x = Embedding.uniform(["a", "b", "c"])
        assert x.affinity(triangle) == pytest.approx(2.0 / 3.0)

    def test_affinity_with_negative_edges(self, signed_graph):
        x = Embedding.uniform(["c", "d"])
        assert x.affinity(signed_graph) == pytest.approx(2 * 0.25 * -2.0)

    def test_affinity_ignores_vertices_outside_graph(self):
        graph = Graph.from_edges([("a", "b", 1.0)])
        x = Embedding({"a": 0.5, "ghost": 0.5}, validate=False)
        assert x.affinity(graph) == 0.0

    def test_gradient(self, triangle):
        x = Embedding.uniform(["a", "b"])
        # grad_c = 2 * (0.5*1 + 0.5*1) = 2.
        assert x.gradient(triangle, "c") == pytest.approx(2.0)
        # grad_a = 2 * (x_b * w_ab) = 1.
        assert x.gradient(triangle, "a") == pytest.approx(1.0)

    def test_gradient_map_default_candidates(self, signed_graph):
        x = Embedding.unit("a")
        grads = x.gradient_map(signed_graph)
        # Support + neighbours of a: b, c, e.
        assert set(grads) == {"a", "b", "c", "e"}
        assert grads["b"] == pytest.approx(2 * 3.0)
        assert grads["e"] == pytest.approx(2 * -4.0)

    def test_kkt_identity_lambda_equals_2f(self, triangle):
        """At any x: sum_u x_u grad_u = 2 f(x)."""
        x = Embedding.normalized({"a": 1.0, "b": 2.0, "c": 3.0})
        f = x.affinity(triangle)
        weighted = sum(x[u] * x.gradient(triangle, u) for u in x)
        assert weighted == pytest.approx(2 * f)


class TestTransforms:
    def test_with_entry_adds_and_removes(self):
        x = Embedding.uniform(["a", "b"])
        y = x.with_entry("c", 0.5)
        assert y["c"] == 0.5
        z = y.with_entry("a", 0.0)
        assert "a" not in z

    def test_restricted_renormalises(self):
        x = Embedding.normalized({"a": 1.0, "b": 1.0, "c": 2.0})
        y = x.restricted({"a", "c"})
        assert y["a"] == pytest.approx(1.0 / 3.0)
        assert y["c"] == pytest.approx(2.0 / 3.0)
        assert "b" not in y

    def test_restricted_to_nothing_rejected(self):
        x = Embedding.unit("a")
        with pytest.raises(EmbeddingError):
            x.restricted({"z"})

    def test_close_to(self):
        x = Embedding.uniform(["a", "b"])
        y = Embedding({"a": 0.5 + 1e-12, "b": 0.5 - 1e-12}, validate=False)
        assert x.close_to(y)
        assert not x.close_to(Embedding.unit("a"))

    def test_as_dict_is_copy(self):
        x = Embedding.unit("a")
        d = x.as_dict()
        d["b"] = 1.0
        assert "b" not in x

    def test_repr_contains_support_size(self):
        x = Embedding.uniform(["a", "b", "c"])
        assert "|S|=3" in repr(x)
