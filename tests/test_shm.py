"""Shared-memory graph store: lifecycle, parity, accounting.

The zero-copy substrate of the multi-worker service
(:mod:`repro.engine.shm`): exported segments must serve byte-equal
answers through read-only views, pickle as tiny attach stubs, refcount
their way to an unlink when the last holder closes, and charge a host
for each graph exactly once however many registries hold it warm.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.difference import assemble_difference
from repro.engine import PreparedGraph, SolveRequest, solve
from repro.engine.shm import (
    SharedGraphStore,
    graph_from_csr,
    list_segments,
    shared_prepared,
    shm_available,
    unlink_segment,
)
from repro.exceptions import InputMismatchError
from repro.graph.generators import random_signed_graph
from repro.graph.io import write_edge_list
from repro.service.registry import GraphRegistry

pytestmark = pytest.mark.skipif(
    not shm_available(),
    reason="shared-memory graph store needs shared_memory+NumPy+SciPy",
)


@pytest.fixture
def store():
    """A fresh store on a unique prefix, audited leak-free on exit."""
    store = SharedGraphStore()
    yield store
    store.close_all()
    assert list_segments(store.prefix) == []


def _prepared(seed: int = 7, n: int = 24) -> PreparedGraph:
    """A small prepared difference graph for parity checks."""
    g1 = random_signed_graph(n, 0.3, seed=seed).positive_part()
    g2 = random_signed_graph(n, 0.35, seed=seed + 1).positive_part()
    for v in g1.vertices():
        g2.add_vertex(v)
    for v in g2.vertices():
        g1.add_vertex(v)
    return PreparedGraph(assemble_difference(g1, g2))


def _answers(prepared: PreparedGraph, backend: str = "sparse"):
    out = []
    for measure in ("average_degree", "affinity"):
        result = solve(
            SolveRequest(measure=measure, backend=backend), prepared
        )
        out.append((result.vertices, result.density))
    return out


def _assert_same_answers(mine, reference):
    """Same subsets; densities to float tolerance.

    A shared preparation's dict-of-dicts graph is lazily reconstructed
    from the CSR in a different iteration order, so density sums can
    drift in the last bits.  (Cluster byte-identity is stronger, but it
    holds by owner routing — owners solve the original dict graph — not
    by cross-representation float determinism.)
    """
    for (mine_v, mine_d), (ref_v, ref_d) in zip(mine, reference):
        assert mine_v == ref_v
        assert mine_d == pytest.approx(ref_d, rel=1e-6)


class TestSegmentLifecycle:
    def test_export_attach_roundtrip_parity(self, store):
        prepared = _prepared()
        reference = _answers(prepared)

        segment = store.export(prepared)
        assert segment.created
        assert segment.fingerprint == prepared.fingerprint
        assert list_segments(store.prefix) == [segment.name]

        sibling = SharedGraphStore(prefix=store.prefix)
        attached = sibling.attach_fingerprint(prepared.fingerprint)
        assert not attached.created
        shared = shared_prepared(attached)
        assert shared.fingerprint == prepared.fingerprint
        # Zero-copy views are read-only — solvers cannot corrupt a
        # segment siblings are serving from.
        for csr in (attached.csr(), attached.csr_plus()):
            assert not csr.data.flags.writeable
            assert not csr.indices.flags.writeable
        _assert_same_answers(_answers(shared), reference)
        _assert_same_answers(
            _answers(shared, backend="python"),
            _answers(prepared, backend="python"),
        )
        sibling.close_all()

    def test_refcount_drain_unlinks(self, store):
        prepared = _prepared(seed=11)
        segment = store.export(prepared)
        assert segment.refcount() == 1

        a = SharedGraphStore(prefix=store.prefix)
        b = SharedGraphStore(prefix=store.prefix)
        a.attach(segment.name)
        b.attach(segment.name)
        assert segment.refcount() == 3

        assert not a.release(segment.name)  # 2 holders remain
        assert not store.release(segment.name)  # 1 holder remains
        assert list_segments(store.prefix) == [segment.name]
        assert b.release(segment.name)  # last close unlinks
        assert list_segments(store.prefix) == []

    def test_export_idempotent_and_cached(self, store):
        prepared = _prepared(seed=13)
        first = store.export(prepared)
        assert store.export(prepared) is first
        assert store.exports == 1
        assert first.refcount() == 1  # the re-export did not double-hold
        assert store.held() == [first.name]

    def test_attach_missing_segment_raises(self, store):
        with pytest.raises(FileNotFoundError):
            store.attach(f"{store.prefix}_nosuchsegment")

    def test_attach_waits_for_the_ready_flag(self, store, monkeypatch):
        import repro.engine.shm as shm_mod

        monkeypatch.setattr(shm_mod, "_READY_TIMEOUT", 0.2)
        name = f"{store.prefix}_halfwritten"
        raw = shm_mod._QuietSharedMemory(name=name, create=True, size=1024)
        shm_mod._untrack(name)
        try:
            # The magic is written last by export; a segment that never
            # becomes ready (exporter crashed mid-copy) is refused
            # after the poll window rather than served half-populated.
            with pytest.raises(ValueError):
                store.attach(name)
        finally:
            raw.unlink()
            raw.close()

    def test_unlink_segment_is_the_crash_backstop(self, store):
        prepared = _prepared(seed=17)
        segment = store.export(prepared)
        # A SIGKILLed worker never decrements; the supervisor sweep
        # reclaims by name regardless of the stuck refcount.
        assert unlink_segment(segment.name)
        assert list_segments(store.prefix) == []
        assert not unlink_segment(segment.name)  # idempotent

    def test_graph_from_csr_reconstruction(self, store):
        prepared = _prepared(seed=19)
        segment = store.export(prepared)
        rebuilt = graph_from_csr(segment.csr())
        original = prepared.gd
        assert set(rebuilt.vertices()) == set(original.vertices())
        assert rebuilt.num_edges == original.num_edges
        for u, v, w in original.edges():
            assert rebuilt.weight(u, v) == w


class TestPickleStubs:
    def test_prepared_pickles_as_attach_stub(self, store):
        prepared = _prepared(seed=23)
        reference = _answers(prepared)
        segment = store.export(prepared)
        prepared.adopt_segment(segment)

        blob = pickle.dumps(prepared)
        # The stub names the segment instead of carrying CSR buffers.
        assert len(blob) < 1024
        assert segment.name.encode() in blob

        clone = pickle.loads(blob)
        try:
            assert clone.fingerprint == prepared.fingerprint
            _assert_same_answers(_answers(clone), reference)
        finally:
            from repro.engine.shm import process_store

            # In-process unpickling rides the pickle attach cache;
            # drop its hold so the store fixture's leak audit passes.
            process_store().release(segment.name)

    def test_csr_adjacency_pickles_as_stub(self, store):
        prepared = _prepared(seed=29)
        segment = store.export(prepared)
        csr = segment.csr()
        blob = pickle.dumps(csr)
        assert len(blob) < 1024
        clone = pickle.loads(blob)
        try:
            assert clone.vertices == csr.vertices
            assert (clone.data == csr.data).all()
        finally:
            from repro.engine.shm import process_store

            process_store().release(segment.name)


class TestRegistryIntegration:
    def _pair_texts(self, tmp_path, seed: int = 31):
        g1 = random_signed_graph(20, 0.3, seed=seed).positive_part()
        g2 = random_signed_graph(20, 0.35, seed=seed + 1).positive_part()
        for v in g1.vertices():
            g2.add_vertex(v)
        for v in g2.vertices():
            g1.add_vertex(v)
        p1, p2 = tmp_path / "g1.txt", tmp_path / "g2.txt"
        write_edge_list(g1, p1)
        write_edge_list(g2, p2)
        return p1.read_text(), p2.read_text()

    def test_cold_build_exports_and_announces(self, store, tmp_path):
        announced = []
        registry = GraphRegistry(
            capacity=4,
            scale=0.0,
            shm_store=store,
            on_export=lambda *a: announced.append(a),
        )
        g1, g2 = self._pair_texts(tmp_path)
        prepared = registry.register_pair("up", g1, g2)

        assert registry.cold_builds == 1
        assert len(announced) == 1
        name, fingerprint, segment_name = announced[0]
        assert name == "up"
        assert fingerprint == prepared.fingerprint
        assert list_segments(store.prefix) == [segment_name]
        # The owner's warm entry itself rides the segment now: one copy
        # of the frozen arrays on the host.
        assert prepared.shm_segment is not None
        registry.forget("up")

    def test_sibling_attach_serves_without_rebuild(self, store, tmp_path):
        owner = GraphRegistry(capacity=4, scale=0.0, shm_store=store)
        g1, g2 = self._pair_texts(tmp_path, seed=37)
        prepared = owner.register_pair("shared", g1, g2)
        segment_name = store.segment_name(prepared.fingerprint)

        sibling_store = SharedGraphStore(prefix=store.prefix)
        sibling = GraphRegistry(
            capacity=4, scale=0.0, shm_store=sibling_store
        )
        sibling.register_shared(
            "shared", prepared.fingerprint, segment_name
        )
        resolved = sibling.resolve("shared")
        assert sibling.cold_builds == 0
        assert sibling.shared_attaches == 1
        assert resolved.fingerprint == prepared.fingerprint
        _assert_same_answers(_answers(resolved), _answers(prepared))

        # Cell accounting: the graph is charged once per host — the
        # exporting owner pays, attachers ride free.
        assert owner.warm_cells() > 0
        assert sibling.warm_cells() == 0

        sibling_store.close_all()
        owner.forget("shared")

    def test_stale_announcement_falls_back_to_rebuild(
        self, store, tmp_path
    ):
        registry = GraphRegistry(capacity=4, scale=0.0, shm_store=store)
        g1, g2 = self._pair_texts(tmp_path, seed=41)
        registry.register_pair("gone", g1, g2)
        registry.register_shared(
            "gone", "f" * 64, f"{store.prefix}_missingseg"
        )
        # The announced segment never existed (owner evicted/crashed):
        # resolve drops the stale record and cold-builds from the
        # retained upload instead of failing the request.
        resolved = registry.resolve("gone")
        assert resolved is not None
        assert registry.cold_builds == 2
        registry.forget("gone")

    def test_rejected_upload_is_not_exported(self, store, tmp_path):
        announced = []
        registry = GraphRegistry(
            capacity=4,
            scale=0.0,
            max_uploads=1,
            shm_store=store,
            on_export=lambda *a: announced.append(a),
        )
        g1, g2 = self._pair_texts(tmp_path, seed=53)
        registry.register_pair("kept", g1, g2)
        before = list_segments(store.prefix)
        h1, h2 = self._pair_texts(tmp_path, seed=59)
        with pytest.raises(InputMismatchError):
            registry.register_pair("extra", h1, h2)
        # The rejected upload announced nothing and leaked no segment:
        # the limit bounds memory and the cluster name namespace, not
        # just this process's upload table.
        assert [a[0] for a in announced] == ["kept"]
        assert list_segments(store.prefix) == before
        with pytest.raises(KeyError):
            registry.resolve("extra")
        registry.forget("kept")

    def test_unready_squatted_segment_never_fails_the_build(
        self, store, tmp_path, monkeypatch
    ):
        import repro.engine.shm as shm_mod

        monkeypatch.setattr(shm_mod, "_READY_TIMEOUT", 0.2)
        g1, g2 = self._pair_texts(tmp_path, seed=61)
        plain = GraphRegistry(capacity=4, scale=0.0)
        fingerprint = plain.register_pair("probe", g1, g2).fingerprint
        name = store.segment_name(fingerprint)
        squat = shm_mod._QuietSharedMemory(
            name=name, create=True, size=1024
        )
        shm_mod._untrack(name)
        registry = GraphRegistry(capacity=4, scale=0.0, shm_store=store)
        try:
            # Export collides with a never-ready segment under its own
            # fingerprint (a crashed exporter's leftovers): sharing is
            # skipped for this graph, the build still serves.
            prepared = registry.register_pair("up", g1, g2)
            assert prepared.shm_segment is None
            assert registry.resolve("up") is prepared
        finally:
            squat.unlink()
            squat.close()
        registry.forget("up")

    def test_reannounce_drops_stale_store_cache(self, store, tmp_path):
        owner = GraphRegistry(capacity=4, scale=0.0, shm_store=store)
        g1, g2 = self._pair_texts(tmp_path, seed=67)
        h1, h2 = self._pair_texts(tmp_path, seed=71)
        first = owner.register_pair("re", g1, g2)
        seg1 = store.segment_name(first.fingerprint)

        sibling_store = SharedGraphStore(prefix=store.prefix)
        sibling = GraphRegistry(
            capacity=4, scale=0.0, shm_store=sibling_store
        )
        sibling.register_shared("re", first.fingerprint, seg1)
        assert sibling.resolve("re").fingerprint == first.fingerprint
        assert sibling_store.held() == [seg1]

        second = owner.register_pair("re", h1, h2)  # content replaced
        assert second.fingerprint != first.fingerprint
        sibling.register_shared(
            "re",
            second.fingerprint,
            store.segment_name(second.fingerprint),
        )
        # Dropping the stale warm entry must evict the sibling store's
        # cached mapping too: a later announcement of that segment name
        # re-attaches a live mapping instead of handing back the
        # already-closed cached one.
        assert seg1 not in sibling_store.held()
        resolved = sibling.resolve("re")
        assert resolved.fingerprint == second.fingerprint
        _assert_same_answers(_answers(resolved), _answers(second))
        sibling_store.close_all()
        owner.forget("re")

    def test_eviction_releases_segment(self, store, tmp_path):
        registry = GraphRegistry(capacity=1, scale=0.0, shm_store=store)
        a1, a2 = self._pair_texts(tmp_path, seed=43)
        b1, b2 = self._pair_texts(tmp_path, seed=47)
        registry.register_pair("first", a1, a2)
        first_segments = list_segments(store.prefix)
        assert len(first_segments) == 1
        registry.register_pair("second", b1, b2)
        assert registry.evictions == 1
        # The evicted preparation's segment drained to zero and was
        # unlinked; only the resident graph's segment remains.
        remaining = list_segments(store.prefix)
        assert len(remaining) == 1
        assert remaining != first_segments
        registry.forget("second")
