"""Tests for Goldberg's exact densest subgraph algorithm."""

from __future__ import annotations

import pytest

from repro.flow.goldberg import densest_subgraph, max_density_value
from repro.graph.generators import (
    barbell_graph,
    complete_graph,
    gnp_graph,
    planted_clique_graph,
    star_graph,
)
from repro.graph.graph import Graph
from tests.conftest import brute_force_densest


class TestKnownOptima:
    def test_clique_density(self):
        subset, density = densest_subgraph(complete_graph(5))
        assert subset == {0, 1, 2, 3, 4}
        # rho(K5) = 2 * 10 / 5 = 4 (paper's total-degree convention).
        assert density == pytest.approx(4.0)

    def test_star_density(self):
        # Whole star: rho = 2n/(n+1); any sub-star is sparser.
        subset, density = densest_subgraph(star_graph(5))
        assert subset == set(range(6))
        assert density == pytest.approx(10.0 / 6.0)

    def test_heavy_edge_beats_light_clique(self):
        graph = complete_graph(4, weight=1.0)
        graph.add_edge("h1", "h2", 100.0)
        subset, density = densest_subgraph(graph)
        assert subset == {"h1", "h2"}
        assert density == pytest.approx(100.0)

    def test_barbell_takes_both_cliques(self):
        subset, density = densest_subgraph(barbell_graph(5))
        # Both K5s plus the bridge: rho = 2 * 21 / 10 = 4.2 > 4 (one K5).
        assert len(subset) == 10
        assert density == pytest.approx(4.2, abs=1e-6)

    def test_planted_dense_region_found(self):
        graph = planted_clique_graph(30, 8, 0.05, seed=1)
        subset, density = densest_subgraph(graph)
        assert set(range(8)) <= subset
        assert density >= 7.0 - 1e-6

    def test_edgeless_graph(self):
        graph = Graph()
        graph.add_vertices("abc")
        subset, density = densest_subgraph(graph)
        assert len(subset) == 1
        assert density == 0.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            densest_subgraph(Graph())

    def test_negative_weight_rejected(self, signed_graph):
        with pytest.raises(ValueError, match="positive"):
            densest_subgraph(signed_graph)


class TestAgainstBruteForce:
    def test_random_unweighted(self):
        for seed in range(6):
            graph = gnp_graph(10, 0.4, seed=seed)
            if graph.num_edges == 0:
                continue
            _, density = densest_subgraph(graph)
            _, expected = brute_force_densest(graph)
            assert density == pytest.approx(expected, abs=1e-6)

    def test_random_weighted(self):
        for seed in range(6):
            graph = gnp_graph(
                9, 0.5, seed=seed, weight=lambda r: float(r.randint(1, 5))
            )
            if graph.num_edges == 0:
                continue
            _, density = densest_subgraph(graph)
            _, expected = brute_force_densest(graph)
            assert density == pytest.approx(expected, abs=1e-6)

    def test_value_helper(self):
        graph = complete_graph(4)
        assert max_density_value(graph) == pytest.approx(3.0)


class TestGreedyApproximationAudit:
    def test_greedy_within_factor_two(self):
        """Charikar's guarantee, verified against the exact optimum."""
        from repro.peeling.greedy import greedy_peel

        for seed in range(8):
            graph = gnp_graph(
                25, 0.25, seed=seed, weight=lambda r: r.uniform(0.5, 4.0)
            )
            if graph.num_edges == 0:
                continue
            optimum = max_density_value(graph)
            greedy = greedy_peel(graph).density
            assert greedy <= optimum + 1e-6
            assert greedy >= optimum / 2.0 - 1e-6
