"""Tests for the addressable indexed heap."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.heap import IndexedHeap


class TestBasics:
    def test_empty_heap_is_falsy(self):
        heap = IndexedHeap()
        assert len(heap) == 0
        assert not heap

    def test_push_and_peek(self):
        heap = IndexedHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        assert heap.peek_min() == ("b", 1.0)
        assert len(heap) == 2

    def test_pop_in_sorted_order(self):
        heap = IndexedHeap([("a", 5.0), ("b", 2.0), ("c", 9.0), ("d", 1.0)])
        order = [heap.pop_min()[0] for _ in range(len(heap))]
        assert order == ["d", "b", "a", "c"]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().pop_min()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().peek_min()

    def test_duplicate_push_rejected(self):
        heap = IndexedHeap([("a", 1.0)])
        with pytest.raises(ValueError):
            heap.push("a", 2.0)

    def test_contains_and_key_of(self):
        heap = IndexedHeap([("a", 1.0)])
        assert "a" in heap
        assert "b" not in heap
        assert heap.key_of("a") == 1.0

    def test_key_of_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedHeap().key_of("ghost")


class TestUpdates:
    def test_decrease_key_moves_to_front(self):
        heap = IndexedHeap([("a", 5.0), ("b", 2.0)])
        heap.update("a", 0.5)
        assert heap.peek_min() == ("a", 0.5)

    def test_increase_key_moves_back(self):
        heap = IndexedHeap([("a", 1.0), ("b", 2.0)])
        heap.update("a", 10.0)
        assert heap.peek_min() == ("b", 2.0)

    def test_adjust_adds_delta(self):
        heap = IndexedHeap([("a", 1.0)])
        heap.adjust("a", -3.0)
        assert heap.key_of("a") == -2.0

    def test_negative_keys_supported(self):
        # Peeling difference graphs produces negative degrees routinely.
        heap = IndexedHeap([("a", -5.0), ("b", 3.0), ("c", -1.0)])
        assert heap.pop_min() == ("a", -5.0)
        assert heap.pop_min() == ("c", -1.0)

    def test_push_or_update(self):
        heap = IndexedHeap()
        heap.push_or_update("a", 4.0)
        heap.push_or_update("a", 1.0)
        assert heap.key_of("a") == 1.0
        assert len(heap) == 1

    def test_update_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedHeap().update("ghost", 1.0)


class TestRemoval:
    def test_remove_returns_key(self):
        heap = IndexedHeap([("a", 1.0), ("b", 2.0), ("c", 3.0)])
        assert heap.remove("b") == 2.0
        assert "b" not in heap
        assert heap.check_invariant()

    def test_remove_root(self):
        heap = IndexedHeap([("a", 1.0), ("b", 2.0)])
        heap.remove("a")
        assert heap.peek_min() == ("b", 2.0)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedHeap().remove("ghost")


class TestRandomized:
    def test_matches_sorted_reference(self):
        rng = random.Random(42)
        items = [(i, rng.uniform(-100, 100)) for i in range(200)]
        heap = IndexedHeap(items)
        expected = sorted(items, key=lambda kv: kv[1])
        popped = [heap.pop_min() for _ in range(len(items))]
        assert [k for k, _ in popped] == [
            k for k, _ in sorted(popped, key=lambda kv: kv[1])
        ]
        assert sorted(v for _, v in popped) == sorted(v for _, v in expected)

    def test_interleaved_operations_keep_invariant(self):
        rng = random.Random(7)
        heap = IndexedHeap()
        alive = {}
        for step in range(2000):
            op = rng.random()
            if op < 0.5 or not alive:
                key = rng.uniform(-50, 50)
                item = f"item{step}"
                heap.push(item, key)
                alive[item] = key
            elif op < 0.8:
                item = rng.choice(list(alive))
                key = rng.uniform(-50, 50)
                heap.update(item, key)
                alive[item] = key
            else:
                item, key = heap.pop_min()
                assert key == min(alive.values())
                del alive[item]
        assert heap.check_invariant()
        assert len(heap) == len(alive)


@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.floats(-1e6, 1e6)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_heap_pops_global_minimum(pairs):
    """Property: pop_min always returns the smallest live key."""
    heap = IndexedHeap()
    live = {}
    for item, key in pairs:
        if item in heap:
            heap.update(item, key)
        else:
            heap.push(item, key)
        live[item] = key
    while heap:
        item, key = heap.pop_min()
        assert key == min(live.values())
        assert live.pop(item) == key
