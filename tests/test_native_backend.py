"""Property and differential tier for the native kernel backend.

The native backend's kernels (:mod:`repro.core.native_kernels`) are
plain loop-nest Python that Numba compiles verbatim — so running them
*interpreted* (``NativeBackend(jit=False)``) exercises exactly the code
the JIT compiles, and the differential assertions here hold with or
without Numba installed:

* **bitwise parity with sparse** — the kernels replay the sparse
  implementations' float operations in the same order, so coordinate
  descent and NewSEA must agree *exactly* (``==``, not approx) with
  the ``sparse`` backend; peeling agrees exactly on pop order and
  subset, with densities free only in the last bits (NumPy pairwise
  ``removed.sum()`` vs the kernel's sequential accumulation);
* **reference parity with python** — supports equal, objectives equal
  up to summation order (the PR-1 contract);
* **JIT edge cases** — empty/one-vertex graphs, isolated vertices,
  self-loops and duplicate edges, all-equal weights (tie-breaking),
  extreme weight magnitudes — the inputs where a transcribed kernel
  silently diverges (hypothesis drives the structure);
* **operational contracts** — graceful ``fallback="sparse"``
  degradation with a single warning, kernel-set caching (one build per
  process), and the batch warm-once regression (pool initializers warm
  the backend; queries never re-trigger a build).

Tests marked ``jit`` compile for real and only run with Numba present
(``pytest -m jit``); everything else is the default tier.
"""

from __future__ import annotations

import random
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.native_kernels import (
    get_kernels,
    kernel_build_count,
    numba_available,
    warm_kernels,
)
from repro.exceptions import (
    BackendFallbackWarning,
    BackendUnavailableError,
    SelfLoopError,
)
from repro.graph.graph import Graph
from repro.graph.sparse import scipy_available

pytestmark = pytest.mark.skipif(
    not scipy_available(), reason="native kernels operate on CSR arrays"
)

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="requires numba"
)
needs_no_numba = pytest.mark.skipif(
    numba_available(), reason="exercises the numba-absent degradation path"
)

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def native_backend():
    """A NativeBackend running the kernel bodies interpreted.

    ``jit=False`` keeps these tests meaningful without Numba — the
    bodies are identical to what ``@njit`` compiles, so interpreted
    parity is the correctness half of the proof; the ``jit``-marked
    tests add the compiled-equals-interpreted half.
    """
    from repro.engine.backends import NativeBackend

    return NativeBackend(jit=False)


def sparse_backend():
    from repro.engine import get_backend

    return get_backend("sparse")


def python_backend():
    from repro.engine import get_backend

    return get_backend("python")


def build_graph(
    n: int,
    density: float,
    seed: int,
    signed: bool = True,
    low: float = 0.05,
    high: float = 2.0,
) -> Graph:
    """Seeded G(n, p) with continuous weights (ties improbable)."""
    rng = random.Random(seed)
    graph = Graph()
    graph.add_vertices(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                weight = rng.uniform(low, high)
                if signed and rng.random() < 0.35:
                    weight = -weight
                graph.add_edge(u, v, weight)
    return graph


@st.composite
def graph_cases(draw, max_n=18, signed=True):
    n = draw(st.integers(2, max_n))
    density = draw(st.floats(min_value=0.05, max_value=0.7))
    seed = draw(st.integers(0, 10**6))
    return build_graph(n, density, seed, signed=signed)


def _objective(graph: Graph, x) -> float:
    total = 0.0
    for u, xu in x.items():
        for v, weight in graph.neighbors(u).items():
            xv = x.get(v)
            if xv is not None:
                total += xu * xv * weight
    return total


# ----------------------------------------------------------------------
# greedy peeling
# ----------------------------------------------------------------------
class TestPeelDifferential:
    @settings(**SETTINGS)
    @given(graph_cases())
    def test_peel_matches_sparse(self, graph):
        # Pop order and subset are exact; densities may differ in the
        # last bits because _peel_sparse reduces each removed row with
        # NumPy's pairwise `removed.sum()` while the kernel accumulates
        # sequentially (the one tolerated divergence in the parity
        # contract of repro.core.native_kernels).
        native = native_backend().peel(graph)
        sparse = sparse_backend().peel(graph)
        assert native.order == sparse.order
        assert native.subset == sparse.subset
        assert native.density == pytest.approx(sparse.density, rel=1e-12)
        assert len(native.densities) == len(sparse.densities)
        for a, b in zip(native.densities, sparse.densities):
            assert a == pytest.approx(b, rel=1e-12, abs=1e-12)

    @settings(**SETTINGS)
    @given(graph_cases(signed=False))
    def test_peel_matches_python_reference(self, graph):
        native = native_backend().peel(graph)
        python = python_backend().peel(graph)
        # Continuous weights: no ties, so the subsets agree; densities
        # agree up to summation order.
        assert native.subset == python.subset
        assert native.density == pytest.approx(python.density)

    def test_empty_graph_raises(self):
        from repro.peeling.greedy import greedy_peel

        with pytest.raises(ValueError):
            greedy_peel(Graph(), backend=native_backend())
        with pytest.raises(ValueError):
            get_kernels(jit=False).peel(Graph())

    def test_one_vertex_graph(self):
        graph = Graph()
        graph.add_vertex("only")
        result = native_backend().peel(graph)
        assert result.subset == {"only"}
        assert result.density == 0.0
        assert result.order == ["only"]
        assert result.densities == [0.0]

    def test_isolated_vertices(self):
        graph = build_graph(12, 0.4, seed=3, signed=False)
        graph.add_vertices(["iso1", "iso2", "iso3"])
        native = native_backend().peel(graph)
        sparse = sparse_backend().peel(graph)
        assert native.order == sparse.order
        assert native.subset == sparse.subset
        assert native.density == pytest.approx(sparse.density, rel=1e-12)
        assert not {"iso1", "iso2", "iso3"} & native.subset

    def test_all_equal_weights_tie_breaking(self):
        # Every weight identical: the peel is one long tie — the lazy
        # heap's (key, vertex) order must match heapq's exactly.
        graph = Graph()
        graph.add_vertices(range(10))
        rng = random.Random(5)
        for u in range(10):
            for v in range(u + 1, 10):
                if rng.random() < 0.5:
                    graph.add_edge(u, v, 1.0)
        native = native_backend().peel(graph)
        sparse = sparse_backend().peel(graph)
        assert native.order == sparse.order
        assert native.subset == sparse.subset
        assert native.densities == sparse.densities

    def test_negative_degrees(self):
        # Signed graphs: deleting a vertex can *raise* a neighbour's
        # degree; the lazy heap must tolerate both key directions.
        graph = build_graph(16, 0.5, seed=11, signed=True)
        native = native_backend().peel(graph)
        sparse = sparse_backend().peel(graph)
        assert native.order == sparse.order
        assert native.subset == sparse.subset
        for a, b in zip(native.densities, sparse.densities):
            assert a == pytest.approx(b, rel=1e-12, abs=1e-12)


# ----------------------------------------------------------------------
# 2-coordinate descent (shrink)
# ----------------------------------------------------------------------
class TestShrinkDifferential:
    @settings(**SETTINGS)
    @given(graph_cases(signed=False))
    def test_shrink_matches_sparse_bitwise(self, graph):
        subset = list(graph.vertices())
        x0 = {u: 1.0 / len(subset) for u in subset}
        native = native_backend().shrink(graph, dict(x0), subset, tol=1e-9)
        sparse = sparse_backend().shrink(graph, dict(x0), subset, tol=1e-9)
        assert native.x == sparse.x
        assert native.objective == sparse.objective
        assert native.iterations == sparse.iterations
        assert native.converged == sparse.converged

    def test_shrink_singleton_support(self):
        graph = build_graph(6, 0.6, seed=2, signed=False)
        native = native_backend().shrink(graph, {0: 1.0}, [0], tol=1e-9)
        assert native.x == {0: 1.0}
        assert native.objective == 0.0
        assert native.converged

    def test_extreme_weight_magnitudes(self):
        rng = random.Random(17)
        graph = Graph()
        graph.add_vertices(range(12))
        for u in range(12):
            for v in range(u + 1, 12):
                if rng.random() < 0.5:
                    graph.add_edge(
                        u, v, rng.uniform(1.0, 9.0) * 10.0 ** rng.randint(-9, 9)
                    )
        subset = list(graph.vertices())
        x0 = {u: 1.0 / len(subset) for u in subset}
        native = native_backend().shrink(graph, dict(x0), subset, tol=1e-9)
        sparse = sparse_backend().shrink(graph, dict(x0), subset, tol=1e-9)
        assert native.x == sparse.x
        assert native.objective == sparse.objective

    def test_all_equal_weights(self):
        # A clique with equal weights: selection is all ties; argmax /
        # argmin replicas must pick the same (first) coordinates.
        graph = Graph()
        graph.add_vertices(range(8))
        for u in range(8):
            for v in range(u + 1, 8):
                graph.add_edge(u, v, 2.0)
        subset = list(range(8))
        x0 = {u: (1.0 if u == 0 else 0.0) for u in subset}
        x0 = {u: w for u, w in x0.items() if w > 0.0} or {0: 1.0}
        native = native_backend().seacd(graph, {0: 1.0})
        sparse = sparse_backend().seacd(graph, {0: 1.0})
        assert native.x == sparse.x
        assert native.objective == sparse.objective

    def test_cd_csr_path_matches_dense_path(self):
        # Force the CSR branch by dropping DENSE_SUPPORT_LIMIT: the two
        # code paths of the kernel must land on the same KKT point.
        import repro.core.native_kernels as nk
        import repro.core.sparse_solvers as ss

        graph = build_graph(30, 0.3, seed=23, signed=False)
        subset = list(graph.vertices())
        x0 = {u: 1.0 / len(subset) for u in subset}
        dense = native_backend().shrink(graph, dict(x0), subset, tol=1e-9)
        original = ss.DENSE_SUPPORT_LIMIT
        ss.DENSE_SUPPORT_LIMIT = 2
        try:
            csr = native_backend().shrink(graph, dict(x0), subset, tol=1e-9)
            sparse = sparse_backend().shrink(graph, dict(x0), subset, tol=1e-9)
        finally:
            ss.DENSE_SUPPORT_LIMIT = original
        assert nk is not None
        assert csr.x == sparse.x
        assert csr.objective == sparse.objective
        assert set(csr.x) == set(dense.x)
        assert csr.objective == pytest.approx(dense.objective, rel=1e-9)


# ----------------------------------------------------------------------
# full solvers: NewSEA, expansion, replicator
# ----------------------------------------------------------------------
class TestSolverDifferential:
    @settings(**SETTINGS)
    @given(graph_cases())
    def test_new_sea_matches_sparse_bitwise(self, graph):
        from repro.core.kkt import check_kkt

        gd_plus = graph.positive_part()
        if gd_plus.num_vertices == 0:
            return
        native = native_backend().new_sea(gd_plus)
        sparse = sparse_backend().new_sea(gd_plus)
        assert native.support == sparse.support
        assert native.objective == sparse.objective
        assert native.x == sparse.x
        assert native.initializations == sparse.initializations
        assert native.expansion_errors == sparse.expansion_errors
        assert native.is_positive_clique == sparse.is_positive_clique
        if gd_plus.num_edges:
            assert check_kkt(gd_plus, native.x, tol=5e-3).is_kkt

    def test_new_sea_matches_python_reference(self):
        gd_plus = build_graph(30, 0.25, seed=31).positive_part()
        native = native_backend().new_sea(gd_plus)
        python = python_backend().new_sea(gd_plus)
        assert native.support == python.support
        assert native.objective == pytest.approx(python.objective, rel=1e-6)

    def test_one_vertex_graph(self):
        graph = Graph()
        graph.add_vertex("v")
        native = native_backend().new_sea(graph)
        assert native.x == {"v": 1.0}
        assert native.objective == 0.0

    def test_edgeless_graph_fallback(self):
        graph = Graph()
        graph.add_vertices(["b", "a", "c"])
        native = native_backend().new_sea(graph)
        sparse = sparse_backend().new_sea(graph)
        assert native.x == sparse.x == {"a": 1.0}
        assert native.objective == 0.0

    def test_self_loops_rejected_at_graph_layer(self):
        # The kernels assume a zero diagonal; the Graph contract
        # guarantees it before any backend sees the input.
        graph = Graph()
        graph.add_vertex("v")
        with pytest.raises(SelfLoopError):
            graph.add_edge("v", "v", 1.0)

    def test_duplicate_edges_overwrite(self):
        # add_edge is last-write-wins; both backends must see the same
        # final weight, not an accumulated one.
        graph = Graph()
        graph.add_vertices(range(4))
        for u, v in [(0, 1), (1, 2), (0, 2), (2, 3)]:
            graph.add_edge(u, v, 9.0)
            graph.add_edge(u, v, 1.5)  # overwrite
        native = native_backend().new_sea(graph)
        sparse = sparse_backend().new_sea(graph)
        python = python_backend().new_sea(graph)
        assert native.x == sparse.x
        assert native.objective == sparse.objective
        assert native.support == python.support

    @settings(**SETTINGS)
    @given(graph_cases(signed=False, max_n=14))
    def test_expand_matches_python_reference(self, graph):
        if graph.num_edges == 0:
            return
        start = max(graph.vertices(), key=lambda u: graph.degree(u))
        native = native_backend().expand(graph, {start: 1.0})
        python = python_backend().expand(graph, {start: 1.0})
        assert native.expanded == python.expanded
        assert native.z_size == python.z_size
        assert set(native.x) == set(python.x)
        assert native.objective_after == pytest.approx(
            python.objective_after, rel=1e-9, abs=1e-12
        )

    @settings(**SETTINGS)
    @given(graph_cases(signed=False, max_n=14))
    def test_replicator_matches_sparse(self, graph):
        if graph.num_edges == 0:
            return
        x0 = {u: 1.0 / graph.num_vertices for u in graph.vertices()}
        native = native_backend().replicator(graph, dict(x0))
        sparse = sparse_backend().replicator(graph, dict(x0))
        assert native.iterations == sparse.iterations
        assert native.converged == sparse.converged
        assert set(native.x) == set(sparse.x)
        assert native.objective == pytest.approx(sparse.objective, rel=1e-9)

    def test_replicator_rejects_negative_weights(self):
        # A strong positive triangle keeps the objective positive while
        # the pendant's negative edge makes (Dx)_d < 0 — exactly the
        # state the lazy nonnegativity check (kernel status flag) must
        # surface as the same ValueError the sparse path raises.
        graph = Graph.from_edges(
            [
                ("a", "b", 10.0),
                ("b", "c", 10.0),
                ("a", "c", 10.0),
                ("c", "d", -1.0),
            ]
        )
        x0 = {u: 0.25 for u in graph.vertices()}
        with pytest.raises(ValueError, match="nonnegative"):
            native_backend().replicator(graph, dict(x0))
        with pytest.raises(ValueError, match="nonnegative"):
            sparse_backend().replicator(graph, dict(x0))


# ----------------------------------------------------------------------
# registry / fallback behaviour
# ----------------------------------------------------------------------
class TestRegistryIntegration:
    def test_native_is_registered_with_numba_alias(self):
        from repro.engine import backend_names, get_backend

        assert "native" in backend_names()
        assert "numba" in backend_names()
        assert get_backend("numba", require=False) is get_backend(
            "native", require=False
        )

    def test_capability_table(self):
        backend = native_backend()
        for capability in (
            "peel",
            "shrink",
            "expand",
            "seacd",
            "refine",
            "new_sea",
            "vertex_solver",
            "initialization_plan",
            "replicator",
            "mean_graph",
        ):
            assert backend.has_capability(capability), capability
        assert backend.supports_shared_adjacency

    @needs_no_numba
    def test_unavailable_without_numba(self):
        from repro.engine import get_backend, resolve_backend

        backend = get_backend("native", require=False)
        assert not backend.available()
        assert "Numba" in backend.missing_reason()
        with pytest.raises(BackendUnavailableError):
            get_backend("native")
        with pytest.raises(BackendUnavailableError):
            resolve_backend("native")

    @needs_no_numba
    def test_fallback_degrades_with_single_warning(self):
        from repro.engine import registry, resolve_backend

        registry._FALLBACK_WARNED.clear()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = resolve_backend("native", fallback="sparse")
                second = resolve_backend("native", fallback="sparse")
            assert first.name == "sparse"
            assert second.name == "sparse"
            fallback_warnings = [
                w
                for w in caught
                if issubclass(w.category, BackendFallbackWarning)
            ]
            assert len(fallback_warnings) == 1
            assert "native" in str(fallback_warnings[0].message)
        finally:
            registry._FALLBACK_WARNED.clear()

    def test_shared_adjacency_contract(self):
        from repro.exceptions import InputMismatchError
        from repro.graph.sparse import CSRAdjacency

        gd = build_graph(20, 0.3, seed=9)
        gd_plus = gd.positive_part()
        wrong = CSRAdjacency.from_graph(gd)
        with pytest.raises(InputMismatchError):
            native_backend().new_sea(gd_plus, adjacency=wrong)
        right = CSRAdjacency.from_graph(gd_plus)
        shared = native_backend().new_sea(gd_plus, adjacency=right)
        rebuilt = native_backend().new_sea(gd_plus)
        assert shared.x == rebuilt.x
        assert shared.objective == rebuilt.objective


# ----------------------------------------------------------------------
# kernel cache + batch warm-once regression
# ----------------------------------------------------------------------
class TestKernelCacheAndWarm:
    def test_kernel_set_is_cached_per_mode(self):
        first = get_kernels(jit=False)
        builds = kernel_build_count()
        second = get_kernels(jit=False)
        assert second is first
        assert kernel_build_count() == builds

    def test_warm_is_idempotent(self):
        kernels = warm_kernels(jit=False)
        assert kernels.warmed
        builds = kernel_build_count()
        again = warm_kernels(jit=False)
        assert again is kernels
        assert kernel_build_count() == builds

    def test_solves_do_not_rebuild_kernels(self):
        warm_kernels(jit=False)
        builds = kernel_build_count()
        graph = build_graph(15, 0.3, seed=41)
        backend = native_backend()
        for _ in range(3):
            backend.new_sea(graph.positive_part())
        assert kernel_build_count() == builds

    def test_batch_serial_warms_once_not_per_query(self):
        from repro.batch.executor import BatchExecutor
        from repro.batch.queries import BatchQuery, GraphSource
        from repro.engine.backends import NativeBackend
        from repro.engine.registry import register_backend, unregister_backend

        class CountingNative(NativeBackend):
            name = "counting_native"
            warm_calls = 0

            def __init__(self) -> None:
                super().__init__(jit=False)

            def warm(self) -> None:
                type(self).warm_calls += 1
                super().warm()

        register_backend(CountingNative())
        try:
            graphs = [
                build_graph(12, 0.4, seed=s, signed=True) for s in (1, 2, 3)
            ]
            queries = [
                BatchQuery(
                    kind="dcsga",
                    source=GraphSource.from_graph(g),
                    backend="counting_native",
                )
                for g in graphs
            ]
            executor = BatchExecutor(mode="serial")
            results = executor.run(queries)
            assert all(r.ok for r in results)
            # The warm-once regression: one pool/serial initialisation,
            # not one (JIT-compilation-sized) warm per query.
            assert CountingNative.warm_calls == 1
        finally:
            unregister_backend("counting_native")

    def test_batch_pooled_native_queries_succeed(self):
        # Pooled mode on the registered backends: the initargs plumbing
        # must pickle and the workers must produce the same payloads as
        # a serial run.  (Warm counters cannot cross the process
        # boundary; the serial test above pins the once-per-process
        # claim.)
        from repro.batch.executor import BatchExecutor
        from repro.batch.queries import BatchQuery, GraphSource

        graphs = [build_graph(12, 0.4, seed=s) for s in (1, 2)]
        queries = [
            BatchQuery(
                kind="dcsga",
                source=GraphSource.from_graph(g),
                backend="sparse",
            )
            for g in graphs
        ]
        pooled = BatchExecutor(mode="process", workers=2).run(list(queries))
        serial = BatchExecutor(mode="serial").run(list(queries))
        assert all(r.ok for r in pooled)
        assert [r.canonical_json() for r in pooled] == [
            r.canonical_json() for r in serial
        ]

    def test_batch_accepts_native_backend_name(self):
        # The query vocabulary must accept every registered backend —
        # 'native' included — even when it cannot run here; an unknown
        # name still fails fast.
        from repro.batch.queries import BatchQuery, GraphSource
        from repro.exceptions import InputMismatchError

        source = GraphSource.from_graph(build_graph(6, 0.5, seed=1))
        BatchQuery(kind="dcsga", source=source, backend="native")
        BatchQuery(kind="dcsga", source=source, backend="numba")
        with pytest.raises(InputMismatchError):
            BatchQuery(kind="dcsga", source=source, backend="nativ")


# ----------------------------------------------------------------------
# compiled-mode tests (run with -m jit on a numba-equipped interpreter)
# ----------------------------------------------------------------------
@needs_numba
@pytest.mark.jit
class TestCompiledKernels:
    def test_warm_compiles_once_and_is_idempotent(self):
        import time

        kernels = warm_kernels(jit=True)
        assert kernels.jit and kernels.warmed
        builds = kernel_build_count()
        start = time.perf_counter()
        warm_kernels(jit=True)
        assert time.perf_counter() - start < 0.5  # no recompilation
        assert kernel_build_count() == builds

    def test_compiled_matches_interpreted_bitwise(self):
        warm_kernels(jit=True)
        from repro.engine import get_backend
        from repro.engine.backends import NativeBackend

        compiled = get_backend("native")
        interpreted = NativeBackend(jit=False)
        for seed in (0, 1, 2):
            gd_plus = build_graph(40, 0.2, seed=seed).positive_part()
            a = compiled.new_sea(gd_plus)
            b = interpreted.new_sea(gd_plus)
            assert a.x == b.x
            assert a.objective == b.objective
            assert a.initializations == b.initializations
            pa = compiled.peel(gd_plus)
            pb = interpreted.peel(gd_plus)
            assert pa.order == pb.order
            assert pa.densities == pb.densities

    def test_compiled_solves_do_not_rebuild(self):
        warm_kernels(jit=True)
        builds = kernel_build_count()
        from repro.engine import get_backend

        backend = get_backend("native")
        for seed in (5, 6):
            backend.new_sea(build_graph(25, 0.3, seed=seed).positive_part())
        assert kernel_build_count() == builds
