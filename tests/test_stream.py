"""Tests for the incremental streaming DCS engine (`repro/stream/`).

The contract under test is *parity*: the engine's incrementally
maintained window sums, difference graphs, and solver answers must
match a naive full recompute — on both compute backends — while doing
asymptotically less work per step.
"""

from __future__ import annotations

import json

import pytest

from repro.core.difference import difference_graph
from repro.core.monitor import ContrastMonitor, mean_graph
from repro.datasets.streaming import burst_event_stream
from repro.exceptions import InputMismatchError, VertexNotFound
from repro.graph.graph import Graph
from repro.graph.sparse import scipy_available
from repro.stream import (
    AlertLog,
    EdgeEvent,
    EventLog,
    SlidingWindowAccumulator,
    StreamAlert,
    StreamingDCSEngine,
    alert_keys,
    edge_key,
    events_between,
    group_by_step,
    read_events,
    snapshot_recompute,
    solve_difference,
    write_events,
)

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="sparse backend requires SciPy"
)

BACKENDS = ["python"] + (["sparse"] if scipy_available() else [])


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
class TestEdgeEvent:
    def test_self_loop_rejected(self):
        with pytest.raises(InputMismatchError):
            EdgeEvent(t=0, u="a", v="a", w=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(InputMismatchError):
            EdgeEvent(t=-1, u="a", v="b", w=1.0)

    def test_non_finite_weight_rejected(self):
        with pytest.raises(InputMismatchError):
            EdgeEvent(t=0, u="a", v="b", w=float("nan"))

    def test_key_is_canonical(self):
        assert EdgeEvent(t=0, u="b", v="a", w=1.0).key == ("a", "b")
        assert edge_key("b", "a") == edge_key("a", "b")

    def test_group_by_step(self):
        events = [
            EdgeEvent(t=0, u="a", v="b", w=1.0),
            EdgeEvent(t=0, u="b", v="c", w=2.0),
            EdgeEvent(t=3, u="a", v="b", w=3.0),
        ]
        groups = list(group_by_step(events))
        assert [t for t, _ in groups] == [0, 3]
        assert len(groups[0][1]) == 2

    def test_group_rejects_time_travel(self):
        events = [
            EdgeEvent(t=2, u="a", v="b", w=1.0),
            EdgeEvent(t=1, u="a", v="b", w=2.0),
        ]
        with pytest.raises(InputMismatchError):
            list(group_by_step(events))

    def test_events_between_diffs_snapshots(self):
        g1 = Graph.from_edges([("a", "b", 1.0), ("b", "c", 2.0)])
        g2 = Graph.from_edges([("a", "b", 3.0)], vertices=["c"])
        batch = events_between(g1, g2, t=7)
        replayed = g1.copy()
        for event in batch:
            replayed.add_edge(event.u, event.v, event.w)
        assert replayed == g2
        assert all(event.t == 7 for event in batch)

    def test_file_round_trip(self, tmp_path):
        log = EventLog(
            events=[
                EdgeEvent(t=0, u="a", v="b", w=1.5),
                EdgeEvent(t=2, u="b", v="c", w=-0.25),
            ],
            declared={"lonely"},
        )
        path = tmp_path / "events.txt"
        write_events(log, path)
        loaded = read_events(path)
        assert loaded.events == log.events
        assert loaded.universe == {"a", "b", "c", "lonely"}
        assert loaded.last_step == 2

    def test_read_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 a b\n")
        with pytest.raises(InputMismatchError):
            read_events(path)

    def test_read_rejects_decreasing_time(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("2 a b 1.0\n1 a b 2.0\n")
        with pytest.raises(InputMismatchError):
            read_events(path)


# ----------------------------------------------------------------------
# sliding-window accumulator
# ----------------------------------------------------------------------
class TestAccumulator:
    def test_stable_edge_has_exact_zero_difference(self):
        acc = SlidingWindowAccumulator(window=3)
        assert acc.observe(("a", "b"), 0.1)
        deltas = acc.close_step()  # t=0: warming
        assert deltas == {("a", "b"): 0.0}
        # 0.1 is the classic float that breaks (w+w+w)/3 == w; the
        # segment path must never compute it.
        for _ in range(5):
            deltas = acc.close_step()
            assert deltas.get(("a", "b"), 0.0) == 0.0
        assert acc.active_edges == 0
        assert acc.state_weight(("a", "b")) == 0.1

    def test_difference_tracks_window_mean(self):
        acc = SlidingWindowAccumulator(window=2)
        acc.observe(("a", "b"), 1.0)
        acc.close_step()  # step 0: weight 1
        acc.observe(("a", "b"), 3.0)
        acc.close_step()  # step 1: window = [1], diff = 3 - 1
        acc.observe(("a", "b"), 3.0)  # no-op re-observation
        deltas = acc.close_step()  # step 2: window = [1, 3], diff = 3 - 2
        assert deltas[("a", "b")] == pytest.approx(1.0)
        deltas = acc.close_step()  # step 3: window = [3, 3] -> stable
        assert deltas[("a", "b")] == 0.0
        assert acc.active_edges == 0

    def test_deletion_event(self):
        acc = SlidingWindowAccumulator(window=2)
        acc.observe(("a", "b"), 2.0)
        acc.close_step()
        acc.observe(("a", "b"), 0.0)
        acc.close_step()  # state 0, window mean 2 -> diff -2
        assert acc.state_weight(("a", "b")) == 0.0
        assert acc.expectation_weight(("a", "b")) == pytest.approx(2.0)

    def test_same_step_override_collapses(self):
        acc = SlidingWindowAccumulator(window=2)
        acc.observe(("a", "b"), 2.0)
        acc.close_step()
        changed = acc.observe(("a", "b"), 9.0)
        assert changed
        acc.observe(("a", "b"), 2.0)  # overridden back within the step
        deltas = acc.close_step()
        assert deltas.get(("a", "b"), 0.0) == 0.0
        assert acc.active_edges == 0

    def test_window_sums_match_naive(self):
        stream = burst_event_stream(
            n_vertices=40, n_steps=12, anomaly_start=6, anomaly_duration=2, seed=1
        )
        snapshots = stream.snapshots()
        acc = SlidingWindowAccumulator(window=3)
        grouped = {t: batch for t, batch in group_by_step(stream.log.events)}
        for step in range(stream.n_steps):
            for event in grouped.get(step, ()):
                acc.observe(event.key, event.w)
            acc.close_step()
            window = snapshots[max(0, step - 3) : step]
            if not window:
                continue
            # Every pair seen anywhere must agree with the naive sum.
            naive = mean_graph(window)
            for u, v, weight in naive.edges():
                key = edge_key(u, v)
                assert acc.window_sum(key) / len(window) == pytest.approx(
                    weight
                ), f"step {step} edge {key}"
                assert acc.expectation_weight(key) == pytest.approx(weight)


# ----------------------------------------------------------------------
# engine parity against naive recompute and the batch monitor
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    return burst_event_stream(
        n_vertices=60,
        n_steps=18,
        anomaly_size=5,
        anomaly_start=9,
        anomaly_duration=3,
        seed=7,
    )


class TestEngineParity:
    def _run(self, workload, backend, **kwargs):
        engine = StreamingDCSEngine(
            workload.universe, window=4, min_score=1e-6, backend=backend, **kwargs
        )
        alerts = engine.run(workload.log.events, n_steps=workload.n_steps)
        return engine, alerts

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_difference_matches_naive_rebuild(self, workload, backend):
        engine = StreamingDCSEngine(
            workload.universe, window=4, backend=backend, min_score=1e-6
        )
        snapshots = workload.snapshots()
        grouped = {t: b for t, b in group_by_step(workload.log.events)}
        for step in range(workload.n_steps):
            for event in grouped.get(step, ()):
                engine.ingest(event)
            engine.advance_to(step + 1)
            window = snapshots[max(0, step - 4) : step]
            if not window:
                continue
            naive = difference_graph(mean_graph(window), snapshots[step])
            maintained = engine.difference
            keys = {edge_key(u, v) for u, v, _ in naive.edges()}
            keys |= {edge_key(u, v) for u, v, _ in maintained.edges()}
            for u, v in keys:
                assert maintained.weight(u, v) == pytest.approx(
                    naive.weight(u, v), abs=1e-9
                ), f"step {step} edge ({u}, {v})"

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("measure", ["average_degree", "affinity"])
    def test_exact_policy_matches_naive_recompute(self, workload, backend, measure):
        _, alerts = self._run(workload, backend, measure=measure)
        naive = snapshot_recompute(
            workload.log.events,
            workload.universe,
            n_steps=workload.n_steps,
            window=4,
            measure=measure,
            backend=backend,
            min_score=1e-6,
        )
        assert alert_keys(alerts) == alert_keys(naive)
        by_step = {a.step: a for a in naive}
        for alert in alerts:
            assert alert.score == pytest.approx(by_step[alert.step].score)

    @needs_scipy
    def test_backends_agree(self, workload):
        _, py = self._run(workload, "python")
        _, sp = self._run(workload, "sparse")
        assert alert_keys(py) == alert_keys(sp)
        for a, b in zip(py, sp):
            assert a.score == pytest.approx(b.score)

    def test_matches_contrast_monitor(self, workload):
        """The engine is the event-native ContrastMonitor."""
        monitor = ContrastMonitor(window=4, measure="average_degree")
        monitor_alerts = monitor.run(workload.snapshots())
        _, engine_alerts = self._run(workload, "python")
        by_step = {a.step: a for a in engine_alerts}
        for alert in monitor_alerts:
            if alert.score < 1e-6:
                continue  # engine suppresses empty/zero answers
            mine = by_step[alert.step]
            assert mine.score == pytest.approx(alert.score)
            assert mine.subset == frozenset(alert.subset)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gated_policy_parity_on_burst(self, workload, backend):
        """Gating may re-rank sub-threshold noise, never the burst."""
        _, gated = self._run(workload, backend, policy="gated")
        naive = snapshot_recompute(
            workload.log.events,
            workload.universe,
            n_steps=workload.n_steps,
            window=4,
            backend=backend,
            min_score=1e-6,
        )
        threshold = 2.0
        assert alert_keys(gated.fired(threshold)) == alert_keys(
            naive.fired(threshold)
        )

    def test_burst_is_detected(self, workload):
        _, alerts = self._run(workload, "python")
        hot = [a for a in alerts if workload.is_anomalous_step(a.step)]
        quiet = [a for a in alerts if not workload.is_anomalous_step(a.step)]
        assert hot and min(a.score for a in hot) > 2 * max(
            a.score for a in quiet
        )
        flagged = set().union(*(a.subset for a in hot))
        assert flagged >= workload.anomaly_members

    def test_incremental_machinery_engaged(self, workload):
        engine, _ = self._run(workload, "python", policy="gated")
        stats = engine.stats
        assert stats.diff_edits > 0
        assert stats.rescores > 0
        # The engine must not full-solve every warmed step.
        warmed = workload.n_steps - engine.warmup
        assert stats.full_solves < warmed


def _adversarial_log():
    """Expiry bursts + vertex churn — the gated policy's hard regime.

    Three stressors the incumbent-gating heuristics must survive:

    * **expiry bursts** — clusters surge for two steps and are then
      re-observed at 0, so their difference contrast first spikes, then
      *flips sign* while the window mean still remembers the surge;
    * **vertex churn** — the ``b*`` vertices acquire edges and later
      lose every one of them, leaving isolated universe members whose
      stale incumbent answers must be dropped, not held;
    * a stable background pair so the difference is never empty noise.

    Steps 0..19 over a 13-vertex universe; deterministic by design.
    """
    events = []

    def ev(t, u, v, w):
        events.append(EdgeEvent(t, u, v, w))

    for t in range(0, 20, 2):  # stable background
        ev(t, "s1", "s2", 1.0)
        ev(t, "s2", "s3", 1.0)
    cluster_a = ["a1", "a2", "a3", "a4"]
    for t in (6, 7):  # burst
        for i, u in enumerate(cluster_a):
            for v in cluster_a[i + 1:]:
                ev(t, u, v, 6.0)
    for i, u in enumerate(cluster_a):  # expiry
        for v in cluster_a[i + 1:]:
            ev(8, u, v, 0.0)
    cluster_b = ["b1", "b2", "b3"]
    for i, u in enumerate(cluster_b):  # churn in
        for v in cluster_b[i + 1:]:
            ev(10, u, v, 4.0)
    for i, u in enumerate(cluster_b):  # churn out (all edges vanish)
        for v in cluster_b[i + 1:]:
            ev(12, u, v, 0.0)
    cluster_c = ["c1", "c2", "c3"]
    for t in (14, 15):  # late burst on fresh vertices
        for i, u in enumerate(cluster_c):
            for v in cluster_c[i + 1:]:
                ev(t, u, v, 5.0)
    for i, u in enumerate(cluster_c):
        for v in cluster_c[i + 1:]:
            ev(16, u, v, 0.0)
    events.sort()
    universe = (
        {"s1", "s2", "s3"} | set(cluster_a) | set(cluster_b) | set(cluster_c)
    )
    return events, universe, 20


class TestGatedAdversarialParity:
    """Regression pins: gated == exact on the adversarial log.

    The gated policy trades exactness for fewer solves in general; on
    this expiry-burst + churn log it currently achieves *full* alert
    parity with the exact policy on both backends and both measures,
    while genuinely holding incumbents.  These tests pin that behaviour
    so a future gating change that starts dropping or inventing alerts
    under expiry/churn is caught immediately.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("measure", ["average_degree", "affinity"])
    def test_alert_parity_exact_vs_gated(self, backend, measure):
        events, universe, n_steps = _adversarial_log()

        def run(policy):
            engine = StreamingDCSEngine(
                universe,
                window=4,
                min_score=1e-6,
                backend=backend,
                policy=policy,
                measure=measure,
            )
            return engine, engine.run(events, n_steps=n_steps)

        _, exact_alerts = run("exact")
        gated_engine, gated_alerts = run("gated")
        assert alert_keys(gated_alerts) == alert_keys(exact_alerts)
        by_step = {a.step: a.score for a in exact_alerts}
        for alert in gated_alerts:
            assert alert.score == pytest.approx(by_step[alert.step], abs=1e-9)
        # The parity must be earned, not vacuous: the gate really held
        # incumbents and skipped solves on this log.
        stats = gated_engine.stats
        assert stats.incumbent_holds > 0
        assert stats.rescores > 0

    def test_gated_solves_fewer_than_exact(self):
        events, universe, n_steps = _adversarial_log()
        exact = StreamingDCSEngine(
            universe, window=4, min_score=1e-6, policy="exact"
        )
        exact.run(events, n_steps=n_steps)
        gated = StreamingDCSEngine(
            universe, window=4, min_score=1e-6, policy="gated"
        )
        gated.run(events, n_steps=n_steps)
        assert gated.stats.full_solves < exact.stats.full_solves

    def test_expiry_burst_alerts_flag_the_bursting_cluster(self):
        events, universe, n_steps = _adversarial_log()
        engine = StreamingDCSEngine(
            universe, window=4, min_score=1e-6, policy="gated"
        )
        alerts = engine.run(events, n_steps=n_steps)
        by_step = {a.step: a for a in alerts}
        # While cluster A bursts, it is the flagged structure.
        assert by_step[6].subset == frozenset({"a1", "a2", "a3", "a4"})
        assert by_step[7].subset == frozenset({"a1", "a2", "a3", "a4"})
        # After the churn-out at 12, the b-cluster never resurfaces.
        for step, alert in by_step.items():
            if step >= 13:
                assert not (alert.subset & {"b1", "b2", "b3"}), step


class TestEngineBehaviour:
    def test_unknown_vertex_rejected(self):
        engine = StreamingDCSEngine(["a", "b"], window=2)
        with pytest.raises(VertexNotFound):
            engine.ingest(EdgeEvent(t=0, u="a", v="zzz", w=1.0))

    def test_stale_timestamp_rejected(self):
        engine = StreamingDCSEngine(["a", "b", "c"], window=2)
        engine.ingest(EdgeEvent(t=3, u="a", v="b", w=1.0))
        with pytest.raises(InputMismatchError):
            engine.ingest(EdgeEvent(t=1, u="b", v="c", w=1.0))

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            StreamingDCSEngine([], window=2)

    def test_no_alerts_before_warmup(self):
        engine = StreamingDCSEngine(["a", "b", "c"], window=3, min_score=-1.0)
        alerts = engine.run(
            [
                EdgeEvent(t=0, u="a", v="b", w=1.0),
                EdgeEvent(t=1, u="a", v="b", w=5.0),
                EdgeEvent(t=2, u="b", v="c", w=2.0),
            ],
            n_steps=3,
        )
        assert all(a.step >= 3 for a in alerts)

    def test_quiet_stream_caches(self):
        """Once every edge is stable, answers come from the cache."""
        events = [EdgeEvent(t=0, u="a", v="b", w=1.0)]
        engine = StreamingDCSEngine(
            ["a", "b", "c"], window=2, warmup=1, min_score=0.0
        )
        engine.run(events, n_steps=12)
        stats = engine.stats
        assert stats.cache_hits > 0
        assert stats.full_solves <= 2

    def test_time_gap_closes_intermediate_steps(self):
        engine = StreamingDCSEngine(["a", "b"], window=2, warmup=1)
        engine.ingest(EdgeEvent(t=0, u="a", v="b", w=1.0))
        alerts = engine.ingest(EdgeEvent(t=6, u="a", v="b", w=9.0))
        assert engine.step == 6
        assert all(a.step < 6 for a in alerts)

    def test_run_without_n_steps_stops_after_last_event(self):
        engine = StreamingDCSEngine(["a", "b"], window=2, warmup=1)
        engine.run([EdgeEvent(t=4, u="a", v="b", w=1.0)])
        assert engine.step == 5

    def test_run_truncates_events_beyond_n_steps(self):
        """Events past the requested horizon must not leak steps/alerts."""
        engine = StreamingDCSEngine(["a", "b", "c"], window=2, warmup=1)
        alerts = engine.run(
            [
                EdgeEvent(t=0, u="a", v="b", w=1.0),
                EdgeEvent(t=2, u="a", v="b", w=9.0),
                EdgeEvent(t=8, u="b", v="c", w=9.0),  # beyond the horizon
            ],
            n_steps=3,
        )
        assert engine.step == 3
        assert all(a.step < 3 for a in alerts)
        assert engine.state_graph().weight("b", "c") == 0.0

    def test_alert_json_round_trips(self):
        alert = StreamAlert(
            step=3,
            subset=frozenset({"b", "a"}),
            score=1.25,
            measure="average_degree",
        )
        payload = json.loads(alert.to_json())
        assert payload["step"] == 3
        assert payload["subset"] == ["a", "b"]
        assert payload["size"] == 2
        assert payload["source"] == "solve"

    def test_alert_log_helpers(self):
        low = StreamAlert(step=1, subset=frozenset("a"), score=0.5, measure="m")
        high = StreamAlert(step=2, subset=frozenset("b"), score=5.0, measure="m")
        log = AlertLog([low, high])
        assert log.steps == [1, 2]
        assert log.fired(1.0).steps == [2]
        assert len(log.json_lines().splitlines()) == 2


class TestSolveDifference:
    def test_empty_difference(self):
        gd = Graph()
        gd.add_vertices("abc")
        outcome = solve_difference(gd, "average_degree")
        assert outcome.empty and outcome.score == 0.0

    def test_no_positive_edge(self):
        gd = Graph.from_edges([("a", "b", -2.0)], vertices=["c"])
        assert solve_difference(gd, "average_degree").empty
        assert solve_difference(gd, "affinity").empty

    @pytest.mark.parametrize("measure", ["average_degree", "affinity"])
    def test_isolated_vertices_do_not_matter(self, signed_graph, measure):
        padded = signed_graph.copy()
        for i in range(20):
            padded.add_vertex(f"pad{i}")
        bare = solve_difference(signed_graph, measure)
        assert solve_difference(padded, measure) == bare
        assert bare.subset == {"a", "b", "c"}

    def test_unknown_measure(self, signed_graph):
        with pytest.raises(ValueError):
            solve_difference(signed_graph, "vibes")


# ----------------------------------------------------------------------
# mutable CSR adjacency (patch-and-rebuild)
# ----------------------------------------------------------------------
@needs_scipy
class TestMutableCSR:
    def _assert_matches_fresh(self, mutable):
        import numpy as np

        from repro.graph.sparse import CSRAdjacency

        fresh = CSRAdjacency.from_graph(mutable.graph, order=mutable.order)
        current = mutable.adjacency
        assert current.n == fresh.n
        assert current.num_edges == fresh.num_edges
        assert np.array_equal(
            current.matrix.toarray(), fresh.matrix.toarray()
        )

    def test_value_updates_patch_in_place(self, signed_graph):
        from repro.graph.sparse import MutableCSRAdjacency

        mutable = MutableCSRAdjacency(signed_graph.copy())
        before = mutable.adjacency
        mutable.set_edge("a", "b", 7.0)
        mutable.set_edge("c", "d", -1.0)
        assert mutable.patches == 2
        assert not mutable.is_stale
        assert mutable.adjacency is before  # no rebuild happened
        self._assert_matches_fresh(mutable)

    def test_structural_updates_rebuild_lazily(self, signed_graph):
        from repro.graph.sparse import MutableCSRAdjacency

        mutable = MutableCSRAdjacency(signed_graph.copy())
        mutable.adjacency
        rebuilds = mutable.rebuilds
        mutable.set_edge("b", "e", 2.0)  # new edge
        mutable.set_edge("a", "b", 0.0)  # deletion
        assert mutable.is_stale
        assert mutable.rebuilds == rebuilds  # amortised: not yet rebuilt
        self._assert_matches_fresh(mutable)
        assert mutable.rebuilds == rebuilds + 1
        assert mutable.structural_edits == 2

    def test_new_vertex_extends_order(self, triangle):
        from repro.graph.sparse import MutableCSRAdjacency

        mutable = MutableCSRAdjacency(triangle.copy())
        mutable.adjacency
        mutable.set_edge("a", "zz", 1.0)
        adj = mutable.adjacency
        assert "zz" in adj.index
        self._assert_matches_fresh(mutable)

    def test_noop_update_costs_nothing(self, triangle):
        from repro.graph.sparse import MutableCSRAdjacency

        mutable = MutableCSRAdjacency(triangle.copy())
        mutable.adjacency
        mutable.set_edge("a", "b", 1.0)  # already this weight
        assert mutable.patches == 0 and not mutable.is_stale

    def test_subset_degree_matches_graph(self, signed_graph):
        from repro.graph.sparse import MutableCSRAdjacency

        mutable = MutableCSRAdjacency(signed_graph.copy())
        subset = ["a", "b", "c"]
        assert mutable.subset_degree(subset) == pytest.approx(
            signed_graph.total_degree(subset)
        )
        mutable.set_edge("a", "b", 10.0)
        assert mutable.subset_degree(subset) == pytest.approx(
            mutable.graph.total_degree(subset)
        )

    def test_update_existing_rejects_structural(self, triangle):
        from repro.graph.sparse import CSRAdjacency

        adj = CSRAdjacency.from_graph(triangle)
        assert not adj.update_existing("a", "b", 0.0)  # zero is structural
        assert not adj.update_existing("a", "zz", 1.0)  # unknown vertex
        assert adj.update_existing("a", "b", 4.0)
        assert adj.matrix[adj.index["a"], adj.index["b"]] == 4.0
        assert adj.matrix[adj.index["b"], adj.index["a"]] == 4.0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestStreamCLI:
    def test_stream_command_emits_json(self, tmp_path, capsys):
        from repro.cli import main

        stream = burst_event_stream(
            n_vertices=40,
            n_steps=14,
            anomaly_start=8,
            anomaly_duration=2,
            seed=5,
        )
        path = tmp_path / "events.txt"
        write_events(stream.log, path)
        code = main(
            ["stream", str(path), "--window", "4", "--threshold", "2.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines() if line]
        assert records, "burst should alert"
        assert {r["step"] for r in records} == {8, 9}
        for record in records:
            assert record["score"] > 2.0
            assert set(record["subset"]) >= stream.anomaly_members

    def test_stream_rejects_empty_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(SystemExit):
            main(["stream", str(path)])


# ----------------------------------------------------------------------
# exact-zero retirement under non-integer alpha-scaled weights
# ----------------------------------------------------------------------
class TestRetirementFloatResidue:
    """An edge whose strength is a non-representable float (the shape
    ``alpha``-scaled weights take, e.g. ``0.7 * 0.3``) must still
    retire to *exactly* zero difference once its history stabilises —
    a mean rebuilt as ``(w + ... + w) / L`` would carry residue that
    keeps the edge alive forever."""

    #: weights with no exact binary representation
    ALPHA_WEIGHTS = (0.7 * 0.3, 0.1 + 0.2, 1.0 / 3.0, 0.49 * 1.1)

    def test_expiry_burst_then_reinsert_retires_exactly(self):
        window = 3
        acc = SlidingWindowAccumulator(window=window)
        key = ("a", "b")
        # Burst: a different awkward weight every step.
        for weight in self.ALPHA_WEIGHTS:
            acc.observe(key, weight)
            acc.close_step()
        # Hold the last value until every burst segment expires.
        final = self.ALPHA_WEIGHTS[-1]
        retired_delta = None
        for _ in range(window + 1):
            deltas = acc.close_step()
            if key in deltas:
                retired_delta = deltas[key]
        # The last report for the edge is its retirement: exactly 0.0,
        # not float residue near zero.
        assert retired_delta == 0.0
        assert acc.active_edges == 0
        assert acc.expectation_weight(key) == final
        # Re-insert (same awkward scale), burst again, re-stabilise:
        # the second retirement must be exact too.
        acc.observe(key, final * 2)
        acc.close_step()
        acc.observe(key, final)  # back to the stable value
        acc.close_step()
        retired_delta = None
        for _ in range(window + 1):
            deltas = acc.close_step()
            if key in deltas:
                retired_delta = deltas[key]
        assert retired_delta == 0.0
        assert acc.active_edges == 0
        assert acc.state_weight(key) == final

    def test_engine_difference_graph_carries_no_residue(self):
        """Through the full engine: after the window passes a burst of
        alpha-scaled weights, the maintained difference graph is empty
        (no epsilon edges scheduling pointless solves)."""
        window = 3
        engine = StreamingDCSEngine({"a", "b", "c"}, window=window)
        for step, weight in enumerate(self.ALPHA_WEIGHTS):
            engine.ingest(EdgeEvent(step, "a", "b", weight))
        engine.advance_to(len(self.ALPHA_WEIGHTS) + window + 1)
        gd = engine.difference
        assert all(weight == 0.0 for _, _, weight in gd.edges())
        assert gd.num_edges == 0
