"""Tests for the observability layer (`repro/obs/`).

The contracts under test, layer by layer:

* tracing core — nesting, self-time phase aggregation (totals sum to
  the root duration), the zero-overhead no-op default;
* registry instrumentation — `resolve_backend` wraps only while a
  recording tracer is active, and the wrapper is capability-transparent;
* the envelope — `timings["phases"]` appears exactly when recording,
  sums to within 10% of `solve_seconds`, and never perturbs the
  canonical answer bytes;
* batch — per-result `profile` rides in `to_json` but stays out of the
  canonical identity; plan-level phase totals accumulate in the stats;
* stream — per-step `StepProfile` records and `phase_stats()`;
* Prometheus text exposition — render/parse round-trip on a real
  `/metrics` snapshot;
* structured logs — `JsonFormatter` output is parseable JSON carrying
  the `extra` fields;
* the CLI `--profile` flag.
"""

from __future__ import annotations

import io
import json
import logging
import time

import pytest

from repro.batch.executor import BatchExecutor, BatchResult
from repro.batch.queries import query_from_dict
from repro.core.difference import assemble_difference
from repro.engine.envelope import SolveRequest, solve
from repro.engine.prepared import PreparedGraph
from repro.engine.registry import get_backend, resolve_backend
from repro.graph.generators import random_signed_graph
from repro.graph.graph import Graph
from repro.obs.backend import TracingBackend, maybe_wrap, wrap_backend
from repro.obs.logs import JsonFormatter, configure_logging
from repro.obs.prometheus import parse_exposition, render_exposition
from repro.obs.trace import (
    NOOP_TRACER,
    Tracer,
    current_tracer,
    new_trace_id,
    phase_of,
    phase_totals,
    recording,
    render_trace,
)


def _difference_graph(n: int = 24, seed: int = 3) -> Graph:
    g1 = random_signed_graph(n, 0.2, seed=seed).positive_part()
    g2 = random_signed_graph(n, 0.3, seed=seed + 1).positive_part()
    for v in g1.vertices():
        g2.add_vertex(v)
    for v in g2.vertices():
        g1.add_vertex(v)
    return assemble_difference(g1, g2)


# ----------------------------------------------------------------------
# tracing core
# ----------------------------------------------------------------------
class TestTracer:
    def test_default_is_the_shared_noop(self):
        tracer = current_tracer()
        assert tracer is NOOP_TRACER
        assert tracer.is_noop
        # The no-op span is shared and does nothing.
        with tracer.span("anything", weight=3) as span:
            span.set(more=1)
        assert tracer.roots == []

    def test_recording_activates_and_restores(self):
        assert current_tracer().is_noop
        with recording() as tracer:
            assert current_tracer() is tracer
            assert not tracer.is_noop
            assert len(tracer.trace_id) == 16
        assert current_tracer() is NOOP_TRACER

    def test_spans_nest_and_time(self):
        with recording() as tracer:
            with tracer.span("outer", kind="x") as outer:
                time.sleep(0.002)
                with tracer.span("inner"):
                    time.sleep(0.002)
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner"]
        inner = outer.children[0]
        assert outer.duration >= inner.duration > 0.0
        assert outer.attributes == {"kind": "x"}
        # self time excludes the child interval
        assert outer.self_seconds == pytest.approx(
            outer.duration - inner.duration
        )

    def test_span_to_dict_round_trips_through_json(self):
        with recording() as tracer:
            with tracer.span("a", n=1):
                with tracer.span("b"):
                    pass
        tree = json.loads(json.dumps(tracer.to_dict()))
        assert tree["trace_id"] == tracer.trace_id
        assert tree["spans"][0]["name"] == "a"
        assert tree["spans"][0]["children"][0]["name"] == "b"

    def test_new_trace_ids_are_distinct(self):
        assert new_trace_id() != new_trace_id()


class TestPhaseDerivation:
    def test_phase_of_mapping(self):
        assert phase_of("solve") == "driver"
        assert phase_of("prepare.gd_plus") == "prepare"
        assert phase_of("prepare.csr") == "prepare"
        assert phase_of("backend.peel") == "peel"
        assert phase_of("backend.new_sea") == "new_sea"
        assert phase_of("seacd.shrink") == "shrink"
        assert phase_of("seacd.expand") == "expand"
        assert phase_of("other") == "other"

    def test_totals_sum_exactly_to_root_duration(self):
        with recording() as tracer:
            with tracer.span("solve") as root:
                with tracer.span("backend.peel"):
                    time.sleep(0.002)
                with tracer.span("backend.seacd"):
                    with tracer.span("seacd.shrink"):
                        time.sleep(0.001)
        totals = phase_totals([root])
        assert set(totals) == {"driver", "peel", "seacd", "shrink"}
        assert sum(totals.values()) == pytest.approx(
            root.duration, rel=1e-9
        )

    def test_render_trace_merges_siblings_and_footers(self):
        with recording() as tracer:
            with tracer.span("solve"):
                for _ in range(3):
                    with tracer.span("backend.seacd"):
                        pass
        text = render_trace(tracer)
        assert text.startswith(f"trace {tracer.trace_id}")
        assert "backend.seacd" in text and "×3" in text
        assert "phase totals:" in text
        assert "phase sum:" in text


# ----------------------------------------------------------------------
# registry instrumentation
# ----------------------------------------------------------------------
class TestTracingBackend:
    def test_resolve_is_bare_under_the_noop(self):
        backend = resolve_backend("python")
        assert not isinstance(backend, TracingBackend)

    def test_resolve_wraps_while_recording(self):
        with recording():
            backend = resolve_backend("python")
        assert isinstance(backend, TracingBackend)
        assert backend.name == "python"

    def test_wrap_is_idempotent_per_tracer(self):
        inner = get_backend("python")
        tracer = Tracer()
        once = wrap_backend(inner, tracer)
        twice = wrap_backend(once, tracer)
        assert twice is once
        other = wrap_backend(once, Tracer())
        assert other is not once

    def test_maybe_wrap_passthrough_on_noop(self):
        inner = get_backend("python")
        assert maybe_wrap(inner) is inner

    def test_capability_introspection_delegates(self):
        inner = get_backend("python")
        wrapped = wrap_backend(inner, Tracer())
        for capability in ("peel", "seacd", "refine", "new_sea"):
            assert wrapped.has_capability(capability) == (
                inner.has_capability(capability)
            )
        assert wrapped.available() == inner.available()
        assert (
            wrapped.supports_shared_adjacency
            == inner.supports_shared_adjacency
        )

    def test_capability_calls_record_spans(self):
        gd = _difference_graph()
        with recording() as tracer:
            backend = resolve_backend("python")
            backend.peel(gd)
        names = [span.name for span in tracer.roots]
        assert "backend.peel" in names


# ----------------------------------------------------------------------
# the envelope
# ----------------------------------------------------------------------
class TestEnvelopeProfile:
    @pytest.mark.parametrize("measure", ["average_degree", "affinity"])
    def test_phases_appear_only_when_recording(self, measure):
        prepared = PreparedGraph(_difference_graph())
        request = SolveRequest(measure=measure)
        untraced = solve(request, prepared)
        assert set(untraced.timings) == {"solve_seconds"}
        with recording():
            traced = solve(request, PreparedGraph(_difference_graph()))
        assert "phases" in traced.timings
        assert all(
            seconds >= 0.0 for seconds in traced.timings["phases"].values()
        )

    def test_phase_sum_within_ten_percent_of_solve_seconds(self):
        prepared = PreparedGraph(_difference_graph(30, seed=9))
        with recording():
            result = solve(SolveRequest(measure="affinity"), prepared)
        phases = result.timings["phases"]
        total = sum(phases.values())
        solve_seconds = result.timings["solve_seconds"]
        assert total == pytest.approx(solve_seconds, rel=0.10)
        # NewSEA under the python backend shows the full alternation.
        assert {"driver", "new_sea", "seacd"} <= set(phases)

    def test_answer_bytes_identical_traced_and_untraced(self):
        request = SolveRequest(measure="average_degree")
        plain = solve(request, PreparedGraph(_difference_graph()))
        with recording():
            traced = solve(request, PreparedGraph(_difference_graph()))
        assert traced.canonical_json() == plain.canonical_json()
        assert traced.provenance == plain.provenance


# ----------------------------------------------------------------------
# batch profiles
# ----------------------------------------------------------------------
class TestBatchProfiles:
    def test_results_carry_profiles_out_of_band(self):
        gd = _difference_graph()
        query = query_from_dict({"qid": "q1", "kind": "dcsad", "graph": "g"},
                                graph_resolver=lambda ref: gd)
        executor = BatchExecutor(workers=1, mode="serial")
        results = executor.run([query])
        assert len(results) == 1
        result = results[0]
        assert result.status == "ok"
        assert result.profile, "graph solves must ship a phase profile"
        record = json.loads(result.to_json())
        assert record["profile"] == result.profile
        # ... but the canonical identity ignores it.
        assert "profile" not in json.loads(result.canonical_json())
        # Plan-level accumulation:
        assert executor.stats.phase_seconds
        assert "phases[" in executor.stats.summary()

    def test_cached_results_skip_profiles(self):
        gd = _difference_graph()
        make = lambda: query_from_dict(  # noqa: E731 - local shorthand
            {"qid": "q1", "kind": "dcsad", "graph": "g"},
            graph_resolver=lambda ref: gd,
        )
        executor = BatchExecutor(workers=1, mode="serial")
        executor.run([make()])
        results = executor.run([make()])
        assert results[0].cached
        assert results[0].profile is None


# ----------------------------------------------------------------------
# stream step profiles
# ----------------------------------------------------------------------
class TestStreamProfiles:
    def _engine(self):
        from repro.stream.engine import StreamingDCSEngine
        from repro.stream.events import EdgeEvent

        universe = {f"v{i}" for i in range(8)}
        engine = StreamingDCSEngine(universe, window=2, warmup=1)
        for step in range(4):
            for i in range(4):
                engine.ingest(
                    EdgeEvent(step, f"v{i}", f"v{(i + 1) % 8}", 2.0)
                )
        engine.advance_to(4)
        return engine

    def test_step_profiles_accumulate(self):
        engine = self._engine()
        profiles = engine.step_profiles()
        # 4 closed steps, minus the warmup step that answers nothing.
        assert len(profiles) == 3
        last = engine.last_step_profile
        assert last is not None
        assert last.step == profiles[-1].step
        assert last.seconds >= 0.0
        assert last.touched >= 0

    def test_phase_stats_shape(self):
        engine = self._engine()
        stats = engine.phase_stats()
        assert stats["steps"] == 4
        assert stats["events"] == 16
        assert set(stats["dirty"]) == {
            "touched",
            "evented",
            "evented_since_full",
        }
        assert stats["last_step"] == engine.last_step_profile.to_dict()


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def _snapshot(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.observe_request("/v1/solve", 200)
        metrics.observe_request("(unmatched)", 404)
        metrics.observe_query("ok", 0.01)
        metrics.observe_query("timeout", 2.0)
        metrics.observe_rejection()
        metrics.observe_phases({"driver": 0.001, "peel": 0.005})
        metrics.observe_loop_lag(0.002)
        return metrics.snapshot(
            cache_hits=3,
            cache_misses=1,
            warm_prepared=2,
            warm_capacity=8,
            warm_hits=5,
            warm_evictions=1,
            pending=0,
            sessions={"active": 1, "events": 7, "alerts": 2},
        )

    def test_render_parse_round_trip(self):
        text = render_exposition(self._snapshot())
        families = parse_exposition(text)
        assert families["repro_requests_total"]["type"] == "counter"
        requests = families["repro_requests_total"]["samples"]
        assert requests['repro_requests_total{route="/v1/solve"}'] == 1.0
        assert families["repro_query_latency_seconds"]["type"] == "summary"
        phases = families["repro_solve_phase_seconds_total"]["samples"]
        assert set(phases) == {
            'repro_solve_phase_seconds_total{phase="driver"}',
            'repro_solve_phase_seconds_total{phase="peel"}',
        }
        lag = families["repro_event_loop_lag_seconds"]["samples"]
        assert lag["repro_event_loop_lag_seconds"] == pytest.approx(0.002)

    def test_sessions_section_is_optional(self):
        from repro.service.metrics import ServiceMetrics

        snapshot = ServiceMetrics().snapshot(
            cache_hits=0,
            cache_misses=0,
            warm_prepared=0,
            warm_capacity=8,
            warm_hits=0,
            warm_evictions=0,
            pending=0,
        )
        families = parse_exposition(render_exposition(snapshot))
        assert "repro_sessions_active" not in families
        assert "repro_uptime_seconds" in families

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_exposition("repro_thing 1.0\n")  # sample before TYPE
        with pytest.raises(ValueError):
            parse_exposition(
                "# TYPE bad_kind gadget\nbad_kind 1\n"
            )
        with pytest.raises(ValueError):
            parse_exposition(
                "# TYPE x counter\nx not_a_number\n"
            )


# ----------------------------------------------------------------------
# structured logs
# ----------------------------------------------------------------------
class TestLogs:
    def test_json_formatter_carries_extras(self):
        formatter = JsonFormatter()
        logger = logging.getLogger("repro.test.access")
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(formatter)
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            logger.info(
                "access",
                extra={"request_id": "abc", "status": 200, "seconds": 0.01},
            )
        finally:
            logger.removeHandler(handler)
        record = json.loads(stream.getvalue())
        assert record["event"] == "access"
        assert record["level"] == "INFO"
        assert record["request_id"] == "abc"
        assert record["status"] == 200
        assert record["ts"] > 0

    def test_configure_logging_attaches_and_is_removable(self):
        stream = io.StringIO()
        handler = configure_logging(level="info", stream=stream)
        root = logging.getLogger("repro")
        try:
            assert handler in root.handlers
            logging.getLogger("repro.service.access").info("hello")
        finally:
            root.removeHandler(handler)
        assert json.loads(stream.getvalue())["event"] == "hello"


# ----------------------------------------------------------------------
# the CLI flag
# ----------------------------------------------------------------------
class TestCliProfile:
    def _write_pair(self, tmp_path):
        g1 = tmp_path / "g1.txt"
        g2 = tmp_path / "g2.txt"
        g1.write_text("a b 1\nb c 1\na c 1\nc d 1\n")
        g2.write_text("a b 3\nb c 3\na c 3\nc d 1\n")
        return str(g1), str(g2)

    def test_profile_prints_tree_to_stderr(self, tmp_path, capsys):
        from repro.cli import main

        g1, g2 = self._write_pair(tmp_path)
        assert main(["dcsga", g1, g2, "--profile"]) == 0
        captured = capsys.readouterr()
        assert "phase sum:" in captured.err
        assert "backend.new_sea" in captured.err
        assert "phase sum" not in captured.out

    def test_profile_with_json_keeps_stdout_parseable(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        g1, g2 = self._write_pair(tmp_path)
        assert main(["dcsad", g1, g2, "--json", "--profile"]) == 0
        captured = capsys.readouterr()
        record = json.loads(captured.out)
        phases = record["timings"]["phases"]
        assert sum(phases.values()) == pytest.approx(
            record["timings"]["solve_seconds"], rel=0.10
        )
        assert "trace " in captured.err

    def test_no_profile_means_no_tree(self, tmp_path, capsys):
        from repro.cli import main

        g1, g2 = self._write_pair(tmp_path)
        assert main(["dcsad", g1, g2]) == 0
        captured = capsys.readouterr()
        assert "phase sum" not in captured.err
