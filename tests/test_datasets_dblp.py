"""Tests for the synthetic DBLP co-authorship generator."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import average_degree_contrast
from repro.core.difference import difference_graph
from repro.datasets.synthetic_dblp import (
    coauthor_snapshots,
    community_index,
    dblp_c_snapshots,
)
from repro.graph.cliques import is_positive_clique


@pytest.fixture(scope="module")
def dataset():
    return coauthor_snapshots(n_authors=300, n_communities=15, seed=1)


class TestStructure:
    def test_shared_vertex_set(self, dataset):
        assert dataset.g1.vertex_set() == dataset.g2.vertex_set()
        assert dataset.g1.num_vertices == 300

    def test_integer_weights(self, dataset):
        for graph in (dataset.g1, dataset.g2):
            for _, _, weight in graph.edges():
                assert weight == int(weight)
                assert weight > 0

    def test_planted_group_counts(self, dataset):
        assert len(dataset.emerging_groups) == 3
        assert len(dataset.disappearing_groups) == 3

    def test_groups_disjoint(self, dataset):
        groups = dataset.emerging_groups + dataset.disappearing_groups
        for i, a in enumerate(groups):
            for b in groups[i + 1 :]:
                assert not (a & b)

    def test_determinism(self):
        a = coauthor_snapshots(n_authors=150, n_communities=10, seed=5)
        b = coauthor_snapshots(n_authors=150, n_communities=10, seed=5)
        assert a.g1 == b.g1
        assert a.g2 == b.g2
        assert a.emerging_groups == b.emerging_groups

    def test_seed_changes_output(self):
        a = coauthor_snapshots(n_authors=150, n_communities=10, seed=5)
        b = coauthor_snapshots(n_authors=150, n_communities=10, seed=6)
        assert a.g1 != b.g1

    def test_too_few_communities_rejected(self):
        with pytest.raises(ValueError):
            coauthor_snapshots(n_authors=30, n_communities=30, n_emerging=20)


class TestPlantedContrast:
    def test_emerging_groups_are_positive_cliques_in_gd(self, dataset):
        gd = difference_graph(dataset.g1, dataset.g2)
        for group in dataset.emerging_groups:
            assert is_positive_clique(gd, group)

    def test_disappearing_groups_positive_in_flipped_gd(self, dataset):
        gd = difference_graph(dataset.g2, dataset.g1)
        for group in dataset.disappearing_groups:
            assert is_positive_clique(gd, group)

    def test_emerging_contrast_dominates_background(self, dataset):
        """Planted groups have far higher density contrast than a random
        same-size author set."""
        import random

        rng = random.Random(0)
        authors = sorted(dataset.authors)
        for group in dataset.emerging_groups:
            planted = average_degree_contrast(dataset.g1, dataset.g2, group)
            random_set = rng.sample(authors, len(group))
            background = average_degree_contrast(
                dataset.g1, dataset.g2, random_set
            )
            assert planted > background + 5.0

    def test_community_index_covers_groups(self, dataset):
        index = community_index(dataset)
        members = set().union(
            *dataset.emerging_groups, *dataset.disappearing_groups
        )
        assert set(index) == members


class TestDBLPC:
    def test_prolific_duo_planted(self):
        dataset = dblp_c_snapshots(n_authors=400, n_communities=20, seed=2)
        gd = difference_graph(dataset.g1, dataset.g2)
        duo = dataset.emerging_groups[-1]
        assert len(duo) == 2
        u, v = sorted(duo)
        assert gd.weight(u, v) >= 200.0

    def test_bigger_than_base(self):
        dataset = dblp_c_snapshots(n_authors=400, n_communities=20, seed=2)
        assert len(dataset.emerging_groups) == 5  # 4 + the duo
        assert len(dataset.disappearing_groups) == 4
