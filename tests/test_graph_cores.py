"""Tests for k-core decomposition and degeneracy orderings."""

from __future__ import annotations

import random

from repro.graph.cores import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    k_core,
)
from repro.graph.generators import complete_graph, gnp_graph, path_graph, star_graph
from repro.graph.graph import Graph


def reference_core_numbers(graph: Graph) -> dict:
    """O(n^2) reference: repeatedly strip min-degree vertices."""
    work = graph.copy()
    cores = {}
    level = 0
    while work.num_vertices:
        vertex = min(
            work.vertices(), key=lambda u: (work.unweighted_degree(u), repr(u))
        )
        level = max(level, work.unweighted_degree(vertex))
        cores[vertex] = level
        work.remove_vertex(vertex)
    return cores


class TestKnownGraphs:
    def test_clique_cores(self):
        cores = core_numbers(complete_graph(5))
        assert all(value == 4 for value in cores.values())

    def test_path_cores(self):
        cores = core_numbers(path_graph(6))
        assert all(value == 1 for value in cores.values())

    def test_star_cores(self):
        cores = core_numbers(star_graph(7))
        assert all(value == 1 for value in cores.values())

    def test_isolated_vertices_have_core_zero(self):
        graph = Graph()
        graph.add_vertices(["a", "b"])
        assert core_numbers(graph) == {"a": 0, "b": 0}

    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}
        assert degeneracy(Graph()) == 0

    def test_clique_plus_tail(self):
        """K4 with a pendant path: clique vertices core 3, tail core 1."""
        graph = complete_graph(4)
        graph.add_edge(3, 4, 1.0)
        graph.add_edge(4, 5, 1.0)
        cores = core_numbers(graph)
        assert cores[0] == cores[1] == cores[2] == cores[3] == 3
        assert cores[4] == cores[5] == 1

    def test_degeneracy_of_clique(self):
        assert degeneracy(complete_graph(6)) == 5


class TestAgainstReference:
    def test_random_graphs_match_reference(self):
        for seed in range(8):
            graph = gnp_graph(30, 0.2, seed=seed)
            assert core_numbers(graph) == reference_core_numbers(graph)

    def test_core_numbers_ignore_weights(self):
        rng = random.Random(5)
        graph = gnp_graph(25, 0.25, seed=1, weight=lambda r: r.uniform(-5, 5))
        unweighted = Graph.from_unweighted_edges(
            [(u, v) for u, v, _ in graph.edges()], vertices=graph.vertices()
        )
        assert core_numbers(graph) == core_numbers(unweighted)


class TestDegeneracyOrdering:
    def test_is_a_permutation(self):
        graph = gnp_graph(40, 0.15, seed=2)
        order = degeneracy_ordering(graph)
        assert sorted(order, key=repr) == sorted(graph.vertices(), key=repr)

    def test_back_degree_bounded_by_degeneracy(self):
        """Each vertex has <= degeneracy neighbours later in the order."""
        graph = gnp_graph(40, 0.2, seed=3)
        d = degeneracy(graph)
        position = {v: i for i, v in enumerate(degeneracy_ordering(graph))}
        for u in graph.vertices():
            later = sum(
                1 for v in graph.neighbors(u) if position[v] > position[u]
            )
            assert later <= d


class TestKCore:
    def test_k_core_subgraph(self):
        graph = complete_graph(4)
        graph.add_edge(3, 4, 1.0)
        core2 = k_core(graph, 2)
        assert core2.vertex_set() == {0, 1, 2, 3}

    def test_k_core_min_degree_property(self):
        graph = gnp_graph(50, 0.15, seed=4)
        for k in (1, 2, 3):
            sub = k_core(graph, k)
            for u in sub.vertices():
                assert sub.unweighted_degree(u) >= k

    def test_k_core_too_deep_is_empty(self):
        assert k_core(path_graph(5), 2).num_vertices == 0
