"""Tests for the Refinement step (Algorithm 4 / Theorem 5)."""

from __future__ import annotations

import pytest

from repro.core.refinement import is_positive_clique_solution, refine
from repro.core.seacd import seacd_from_vertex
from repro.graph.cliques import is_clique
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph


class TestBasics:
    def test_empty_rejected(self, triangle):
        with pytest.raises(ValueError):
            refine(triangle, {})

    def test_clique_input_unchanged(self):
        graph = complete_graph(4)
        x = {u: 0.25 for u in range(4)}
        result = refine(graph, x)
        assert result.merges == 0
        assert result.x == x

    def test_singleton_is_already_clique(self, triangle):
        result = refine(triangle, {"a": 1.0})
        assert result.merges == 0
        assert result.x == {"a": 1.0}

    def test_non_adjacent_pair_merged(self):
        """A path a-b-c: support {a, c} has no edge -> merge to one."""
        graph = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
        result = refine(graph, {"a": 0.5, "c": 0.5})
        assert is_clique(graph, result.x)
        assert result.merges >= 1


class TestTheorem5:
    @pytest.mark.parametrize("seed", range(12))
    def test_output_is_clique_of_gd_plus(self, seed):
        gd_plus = random_signed_graph(20, 0.3, seed=seed).positive_part()
        start = sorted(gd_plus.vertices(), key=repr)[0]
        kkt = seacd_from_vertex(gd_plus, start)
        refined = refine(gd_plus, kkt.x)
        assert is_clique(gd_plus, refined.x)
        assert is_positive_clique_solution(gd_plus, refined.x)

    @pytest.mark.parametrize("seed", range(12))
    def test_objective_never_decreases(self, seed):
        """Theorem 5: f(y) >= f(x) through the whole construction."""
        gd_plus = random_signed_graph(20, 0.35, seed=seed).positive_part()
        start = sorted(gd_plus.vertices(), key=repr)[0]
        kkt = seacd_from_vertex(gd_plus, start)
        refined = refine(gd_plus, kkt.x)
        assert refined.objective >= refined.initial_objective - 1e-6

    @pytest.mark.parametrize("seed", range(12))
    def test_support_shrinks_into_input_support(self, seed):
        """Theorem 5 guarantees S_y is a subset of S_x."""
        gd_plus = random_signed_graph(18, 0.35, seed=seed).positive_part()
        start = sorted(gd_plus.vertices(), key=repr)[0]
        kkt = seacd_from_vertex(gd_plus, start)
        refined = refine(gd_plus, kkt.x)
        assert set(refined.x) <= set(kkt.x)

    def test_positive_clique_in_signed_graph(self):
        """Refining on GD+ makes the support a *positive* clique of GD."""
        from repro.graph.cliques import is_positive_clique

        for seed in range(8):
            gd = random_signed_graph(18, 0.4, seed=seed)
            gd_plus = gd.positive_part()
            start = sorted(gd.vertices(), key=repr)[0]
            kkt = seacd_from_vertex(gd_plus, start)
            refined = refine(gd_plus, kkt.x)
            assert is_positive_clique(gd, refined.x)

    def test_simplex_preserved(self):
        for seed in range(8):
            gd_plus = random_signed_graph(15, 0.4, seed=seed).positive_part()
            start = sorted(gd_plus.vertices(), key=repr)[0]
            kkt = seacd_from_vertex(gd_plus, start)
            refined = refine(gd_plus, kkt.x)
            assert sum(refined.x.values()) == pytest.approx(1.0, abs=1e-8)
            assert all(v > 0 for v in refined.x.values())


class TestObjectiveConsistency:
    def test_affinity_on_clique_equal_in_gd_and_gd_plus(self):
        """On a positive-clique support, f_D(x) == f_{D+}(x) — the identity
        justifying running the pipeline on GD+ alone."""
        from repro.analysis.metrics import affinity

        for seed in range(8):
            gd = random_signed_graph(15, 0.45, seed=seed)
            gd_plus = gd.positive_part()
            start = sorted(gd.vertices(), key=repr)[0]
            kkt = seacd_from_vertex(gd_plus, start)
            refined = refine(gd_plus, kkt.x)
            assert affinity(gd, refined.x) == pytest.approx(
                affinity(gd_plus, refined.x), abs=1e-9
            )
