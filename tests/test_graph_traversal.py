"""Tests for traversal primitives."""

from __future__ import annotations

import pytest

from repro.exceptions import VertexNotFound
from repro.graph.generators import cycle_graph, path_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_layers,
    diameter,
    dijkstra,
    eccentricity,
    hop_distances,
    k_hop_neighborhood,
    pairs_within_hops,
)


class TestBFS:
    def test_layers_of_path(self):
        layers = list(bfs_layers(path_graph(4), 0))
        assert layers == [{0}, {1}, {2}, {3}]

    def test_layers_of_star(self):
        layers = list(bfs_layers(star_graph(4), 0))
        assert layers == [{0}, {1, 2, 3, 4}]

    def test_missing_source_raises(self):
        with pytest.raises(VertexNotFound):
            list(bfs_layers(Graph(), "ghost"))

    def test_hop_distances(self):
        distances = hop_distances(path_graph(5), 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_hop_distances_capped(self):
        distances = hop_distances(path_graph(5), 0, max_hops=2)
        assert set(distances) == {0, 1, 2}

    def test_unreachable_vertices_absent(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["z"])
        assert "z" not in hop_distances(graph, "a")

    def test_negative_edges_still_traversed(self):
        graph = Graph.from_edges([("a", "b", -1.0)])
        assert hop_distances(graph, "a") == {"a": 0, "b": 1}


class TestKHop:
    def test_one_hop_is_closed_neighborhood(self, triangle):
        assert k_hop_neighborhood(triangle, "a", 1) == {"a", "b", "c"}

    def test_zero_hops(self, triangle):
        assert k_hop_neighborhood(triangle, "a", 0) == {"a"}
        assert k_hop_neighborhood(triangle, "a", 0, include_source=False) == set()

    def test_negative_k_rejected(self, triangle):
        with pytest.raises(ValueError):
            k_hop_neighborhood(triangle, "a", -1)

    def test_two_hop_on_path(self):
        graph = path_graph(5)
        assert k_hop_neighborhood(graph, 0, 2) == {0, 1, 2}

    def test_pairs_within_hops_matches_douban_special_case(self):
        from repro.datasets.synthetic_douban import two_hop_pairs
        from repro.graph.generators import gnp_graph

        numeric = gnp_graph(20, 0.15, seed=3)
        graph = numeric.relabeled({u: f"u{u}" for u in numeric.vertices()})
        expected = two_hop_pairs(graph)
        # Normalise pair orientation (both use repr ordering).
        assert pairs_within_hops(graph, 2) == expected

    def test_pairs_within_one_hop_are_edges(self, triangle):
        pairs = pairs_within_hops(triangle, 1)
        assert len(pairs) == 3


class TestDijkstra:
    def test_weighted_path(self):
        graph = Graph.from_edges(
            [("a", "b", 2.0), ("b", "c", 3.0), ("a", "c", 10.0)]
        )
        distances = dijkstra(graph, "a")
        assert distances["c"] == pytest.approx(5.0)

    def test_early_stop_at_target(self):
        graph = path_graph(50)
        distances = dijkstra(graph, 0, target=3)
        assert distances[3] == pytest.approx(3.0)
        assert 49 not in distances

    def test_nonpositive_weight_rejected(self):
        graph = Graph.from_edges([("a", "b", -1.0)])
        with pytest.raises(ValueError):
            dijkstra(graph, "a")

    def test_missing_source(self):
        with pytest.raises(VertexNotFound):
            dijkstra(Graph(), "ghost")


class TestEccentricityDiameter:
    def test_path_diameter(self):
        assert diameter(path_graph(6)) == 5

    def test_cycle_diameter(self):
        assert diameter(cycle_graph(6)) == 3

    def test_star_eccentricities(self):
        graph = star_graph(5)
        assert eccentricity(graph, 0) == 1
        assert eccentricity(graph, 1) == 2
