"""Concurrency and fault tests for the multi-tenant stream sessions.

The session layer is the first *stateful* serving surface — concurrent
tenants mutate resident engines behind one ``ServiceApp`` — so this
suite leans on threads: interleaved event batches, polls racing
ingestion, create/close races, and solver faults injected through the
backend registry.  Single-tenant semantics (lifecycle, cursor rules,
batch validation) are pinned first so the concurrent failures, when
they come, point at the layer and not the vocabulary.
"""

from __future__ import annotations

import asyncio
import io
import threading
import time

import pytest

from repro.engine.registry import (
    SolverBackend,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.graph.generators import random_signed_graph
from repro.graph.io import write_edge_list
from repro.service import GraphRegistry, ServiceApp
from repro.service.sessions import SessionFailedError, SessionManager
from repro.stream.engine import snapshot_recompute
from repro.stream.events import EdgeEvent

UNIVERSE = ["a", "b", "c", "d"]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def make_app(**kwargs) -> ServiceApp:
    kwargs.setdefault("scale", 0.0)
    return ServiceApp(**kwargs)


def create_session(app: ServiceApp, **body) -> str:
    body.setdefault("universe", UNIVERSE)
    body.setdefault("window", 3)
    status, payload = app.request("POST", "/v1/stream/sessions", body)
    assert status == 200, payload
    return payload["session"]


def burst_records(n_steps: int = 12, heavy=(6, 8)):
    """A two-edge stream whose (a, b) edge spikes over *heavy* steps."""
    records = []
    for t in range(n_steps):
        w = 5.0 if heavy[0] <= t <= heavy[1] else 1.0
        records.append({"t": t, "u": "a", "v": "b", "w": w})
        records.append({"t": t, "u": "b", "v": "c", "w": 1.0})
    return records


def feed(app: ServiceApp, sid: str, records, chunk: int = 5):
    """Post *records* in batches; returns every alert the posts saw."""
    alerts = []
    for start in range(0, len(records), chunk):
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": records[start : start + chunk]},
        )
        assert status == 200, payload
        alerts.extend(payload["alerts"])
    return alerts


def feed_keys(feed_alerts):
    return {(a["step"], tuple(a["subset"])) for a in feed_alerts}


def reference_keys(records, n_steps, window=3, min_score=0.0):
    events = [EdgeEvent(r["t"], r["u"], r["v"], r["w"]) for r in records]
    alerts = snapshot_recompute(
        events, UNIVERSE, n_steps=n_steps, window=window, min_score=min_score
    )
    return {
        (a.step, tuple(sorted(str(v) for v in a.subset))) for a in alerts
    }


class LoopThread:
    """One background event loop shared by every concurrent caller.

    ``ServiceApp.request`` runs a private ``asyncio.run`` per call, so
    two *threads* calling it would each rebind the app's queue and pool
    mid-flight.  Real concurrency therefore goes through one loop:
    threads submit coroutines with ``run_coroutine_threadsafe`` and the
    app binds once.
    """

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self._thread.start()

    def call(self, coro, timeout: float = 30.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout
        )

    def submit(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def close(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        self.loop.close()


@pytest.fixture
def loop_thread():
    lt = LoopThread()
    yield lt
    lt.close()


@pytest.fixture
def app():
    return make_app()


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
class TestSessionLifecycle:
    def test_create_echoes_config(self, app):
        status, payload = app.request(
            "POST",
            "/v1/stream/sessions",
            {
                "universe": UNIVERSE,
                "window": 4,
                "policy": "gated",
                "threshold": 0.5,
                "k": 2,
            },
        )
        assert status == 200
        config = payload["config"]
        assert config["window"] == 4
        assert config["policy"] == "gated"
        assert config["threshold"] == 0.5
        assert config["k"] == 2
        assert config["universe_size"] == len(UNIVERSE)
        assert payload["session"].startswith("s-")

    def test_create_from_registered_graph(self, app):
        names = {i: f"v{i:02d}" for i in range(12)}
        g1 = (
            random_signed_graph(12, 0.3, seed=1)
            .positive_part()
            .relabeled(names)
        )
        g2 = (
            random_signed_graph(12, 0.3, seed=2)
            .positive_part()
            .relabeled(names)
        )
        for v in list(g1.vertices()) + list(g2.vertices()):
            g1.add_vertex(v)
            g2.add_vertex(v)
        buf1, buf2 = io.StringIO(), io.StringIO()
        write_edge_list(g1, buf1)
        write_edge_list(g2, buf2)
        status, _ = app.request(
            "POST",
            "/v1/graphs",
            {"name": "base", "g1": buf1.getvalue(), "g2": buf2.getvalue()},
        )
        assert status == 200
        status, payload = app.request(
            "POST", "/v1/stream/sessions", {"graph": "base"}
        )
        assert status == 200
        assert payload["config"]["graph"] == "base"
        assert payload["config"]["universe_size"] == g1.num_vertices

    def test_create_needs_universe_or_graph(self, app):
        status, payload = app.request("POST", "/v1/stream/sessions", {})
        assert status == 400
        assert "universe" in payload["error"]

    def test_create_rejects_both_sources(self, app):
        status, _ = app.request(
            "POST",
            "/v1/stream/sessions",
            {"universe": UNIVERSE, "graph": "base"},
        )
        assert status == 400

    def test_create_rejects_non_string_universe(self, app):
        status, _ = app.request(
            "POST", "/v1/stream/sessions", {"universe": [1, 2, 3]}
        )
        assert status == 400

    def test_create_unknown_graph_404(self, app):
        status, _ = app.request(
            "POST", "/v1/stream/sessions", {"graph": "never-uploaded"}
        )
        assert status == 404

    @pytest.mark.parametrize(
        "bad",
        [
            {"measure": "bogus"},
            {"policy": "sloppy"},
            {"k": 0},
            {"window": 0},
            {"k": "three"},
        ],
    )
    def test_create_rejects_bad_config(self, app, bad):
        status, _ = app.request(
            "POST", "/v1/stream/sessions", {"universe": UNIVERSE, **bad}
        )
        assert status == 400

    def test_list_shows_sessions(self, app):
        first = create_session(app)
        second = create_session(app)
        status, payload = app.request("GET", "/v1/stream/sessions")
        assert status == 200
        assert payload["sessions"] == [first, second]
        assert payload["stats"]["active"] == 2

    def test_info_reports_state(self, app):
        sid = create_session(app)
        feed(app, sid, burst_records(6), chunk=100)
        status, payload = app.request("GET", f"/v1/stream/sessions/{sid}")
        assert status == 200
        assert payload["session"] == sid
        assert payload["events"] == 12
        assert payload["step"] == 5  # last event opens step 5
        assert payload["failed"] is None
        assert payload["stats"]["steps"] == 5

    def test_info_unknown_404(self, app):
        status, _ = app.request("GET", "/v1/stream/sessions/s-99")
        assert status == 404

    def test_delete_closes(self, app):
        sid = create_session(app)
        status, payload = app.request("DELETE", f"/v1/stream/sessions/{sid}")
        assert status == 200
        assert payload["closed"] == sid
        status, payload = app.request("GET", "/healthz")
        assert payload["sessions"] == 0

    def test_delete_twice_404(self, app):
        sid = create_session(app)
        app.request("DELETE", f"/v1/stream/sessions/{sid}")
        status, _ = app.request("DELETE", f"/v1/stream/sessions/{sid}")
        assert status == 404

    def test_unsupported_method_405(self, app):
        sid = create_session(app)
        status, _ = app.request("PUT", f"/v1/stream/sessions/{sid}")
        assert status == 405

    def test_session_limit_answers_429(self):
        app = make_app(max_sessions=2)
        create_session(app)
        create_session(app)
        status, payload = app.request(
            "POST", "/v1/stream/sessions", {"universe": UNIVERSE}
        )
        assert status == 429
        assert "limit" in payload["error"]

    def test_limit_429_carries_retry_after(self, loop_thread):
        app = make_app(max_sessions=1)
        create_session(app)
        response = loop_thread.call(
            app.dispatch(
                "POST", "/v1/stream/sessions", {"universe": UNIVERSE}
            )
        )
        assert response.status == 429
        assert response.headers.get("Retry-After") == "1"

    def test_closing_frees_a_slot(self):
        app = make_app(max_sessions=1)
        sid = create_session(app)
        status, _ = app.request(
            "POST", "/v1/stream/sessions", {"universe": UNIVERSE}
        )
        assert status == 429
        app.request("DELETE", f"/v1/stream/sessions/{sid}")
        assert create_session(app)

    def test_idle_sessions_expire(self):
        app = make_app(session_ttl=10.0)
        sid = create_session(app)
        manager = app.sessions
        stale = manager.expire_idle(now=time.monotonic() + 11.0)
        assert stale == [sid]
        assert manager.active == 0
        assert manager.expired == 1

    def test_use_refreshes_idle_clock(self):
        app = make_app(session_ttl=10.0)
        sid = create_session(app)
        base = time.monotonic()
        manager = app.sessions
        # Touch at +8s, then check at +16s: still within ttl of the
        # touch, so the session must survive.
        manager.get(sid).last_used = base + 8.0
        assert manager.expire_idle(now=base + 16.0) == []
        assert manager.expire_idle(now=base + 19.0) == [sid]


# ----------------------------------------------------------------------
# ingestion and validation
# ----------------------------------------------------------------------
class TestIngestion:
    def test_alerts_match_snapshot_recompute(self, app):
        sid = create_session(app)
        records = burst_records()
        seen = feed(app, sid, records)
        # close the final step so the last alert can fire
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": 11, "u": "a", "v": "b", "w": 1.0}],
             "advance_to": 12},
        )
        assert status == 200
        seen.extend(payload["alerts"])
        assert feed_keys(seen) == reference_keys(records, n_steps=12)

    def test_advance_to_closes_silent_steps(self, app):
        sid = create_session(app)
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": 0, "u": "a", "v": "b", "w": 1.0}],
             "advance_to": 4},
        )
        assert status == 200
        assert payload["step"] == 4

    def test_default_weight_is_one(self, app):
        sid = create_session(app)
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": 0, "u": "a", "v": "b"}]},
        )
        assert status == 200

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"events": []},
            {"events": "not-a-list"},
            {"events": [["t", 0]]},
            {"events": [{"t": 0, "u": "a"}]},
            {"events": [{"t": 0, "u": "a", "v": "b", "bogus": 1}]},
            {"events": [{"t": True, "u": "a", "v": "b"}]},
            {"events": [{"t": 0.5, "u": "a", "v": "b"}]},
            {"events": [{"t": 0, "u": "a", "v": "b", "w": "heavy"}]},
            {"events": [{"t": 0, "u": "a", "v": "a"}]},
            {"events": [{"t": -1, "u": "a", "v": "b"}]},
        ],
    )
    def test_malformed_batches_400(self, app, body):
        sid = create_session(app)
        status, _ = app.request(
            "POST", f"/v1/stream/sessions/{sid}/events", body
        )
        assert status == 400

    def test_unknown_vertex_400_leaves_session_clean(self, app):
        sid = create_session(app)
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {
                "events": [
                    {"t": 0, "u": "a", "v": "b", "w": 1.0},
                    {"t": 0, "u": "a", "v": "zz", "w": 1.0},
                ]
            },
        )
        assert status == 400
        assert "universe" in payload["error"]
        # nothing applied: the valid prefix must not have ingested
        _, payload = app.request("GET", f"/v1/stream/sessions/{sid}")
        assert payload["events"] == 0
        assert payload["step"] == 0
        assert payload["failed"] is None

    def test_out_of_order_within_batch_400(self, app):
        sid = create_session(app)
        status, _ = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {
                "events": [
                    {"t": 3, "u": "a", "v": "b"},
                    {"t": 1, "u": "a", "v": "b"},
                ]
            },
        )
        assert status == 400

    def test_behind_session_clock_400(self, app):
        sid = create_session(app)
        feed(app, sid, [{"t": 5, "u": "a", "v": "b", "w": 1.0}])
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": 2, "u": "a", "v": "b", "w": 1.0}]},
        )
        assert status == 400
        assert "clock" in payload["error"]

    def test_advance_to_behind_clock_400(self, app):
        sid = create_session(app)
        feed(app, sid, [{"t": 5, "u": "a", "v": "b", "w": 1.0}])
        status, _ = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": 5, "u": "c", "v": "d", "w": 1.0}],
             "advance_to": 3},
        )
        assert status == 400

    def test_events_to_missing_session_404(self, app):
        status, _ = app.request(
            "POST",
            "/v1/stream/sessions/s-404/events",
            {"events": [{"t": 0, "u": "a", "v": "b"}]},
        )
        assert status == 404


# ----------------------------------------------------------------------
# the alert cursor
# ----------------------------------------------------------------------
class TestAlertCursor:
    def _session_with_alerts(self, app):
        sid = create_session(app)
        records = burst_records()
        feed(app, sid, records)
        app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": 11, "u": "a", "v": "b", "w": 1.0}],
             "advance_to": 12},
        )
        return sid

    def test_cursor_zero_replays_everything(self, app):
        sid = self._session_with_alerts(app)
        status, payload = app.request(
            "GET", f"/v1/stream/sessions/{sid}/alerts"
        )
        assert status == 200
        assert payload["alerts"]
        assert payload["cursor"] == len(payload["alerts"])

    def test_alerts_carry_engine_phase_stats(self, app):
        sid = self._session_with_alerts(app)
        status, payload = app.request(
            "GET", f"/v1/stream/sessions/{sid}/alerts"
        )
        assert status == 200
        stats = payload["stats"]
        assert stats["steps"] > 0
        assert stats["events"] > 0
        assert set(stats["dirty"]) == {
            "touched",
            "evented",
            "evented_since_full",
        }
        last = stats["last_step"]
        assert last is not None
        assert last["seconds"] >= 0.0
        assert last["source"]

    def test_cursor_resumes_after_read(self, app):
        sid = self._session_with_alerts(app)
        _, first = app.request("GET", f"/v1/stream/sessions/{sid}/alerts")
        _, second = app.request(
            "GET",
            f"/v1/stream/sessions/{sid}/alerts?cursor={first['cursor']}",
        )
        assert second["alerts"] == []
        assert second["cursor"] == first["cursor"]

    def test_cursor_is_monotone_across_batches(self, app):
        sid = create_session(app)
        cursors = []
        for start in range(0, 12, 3):
            records = burst_records()[2 * start : 2 * (start + 3)]
            status, payload = app.request(
                "POST",
                f"/v1/stream/sessions/{sid}/events",
                {"events": records},
            )
            assert status == 200
            cursors.append(payload["cursor"])
        assert cursors == sorted(cursors)

    def test_partial_cursor_reads_tile_the_feed(self, app):
        sid = self._session_with_alerts(app)
        _, whole = app.request("GET", f"/v1/stream/sessions/{sid}/alerts")
        collected = []
        cursor = 0
        for _ in range(len(whole["alerts"])):
            _, chunk = app.request(
                "GET",
                f"/v1/stream/sessions/{sid}/alerts?cursor={cursor}",
            )
            if not chunk["alerts"]:
                break
            collected.append(chunk["alerts"][0])
            cursor += 1
            # deliberately re-read from cursor, taking one at a time
        assert collected == whole["alerts"]

    def test_cursor_out_of_range_400(self, app):
        sid = create_session(app)
        status, _ = app.request(
            "GET", f"/v1/stream/sessions/{sid}/alerts?cursor=7"
        )
        assert status == 400

    def test_negative_cursor_400(self, app):
        sid = create_session(app)
        status, _ = app.request(
            "GET", f"/v1/stream/sessions/{sid}/alerts?cursor=-1"
        )
        assert status == 400

    def test_non_numeric_cursor_400(self, app):
        sid = create_session(app)
        status, _ = app.request(
            "GET", f"/v1/stream/sessions/{sid}/alerts?cursor=abc"
        )
        assert status == 400

    def test_alerts_for_missing_session_404(self, app):
        status, _ = app.request("GET", "/v1/stream/sessions/s-1/alerts")
        assert status == 404

    def test_long_poll_returns_existing_alerts_immediately(self, app):
        sid = self._session_with_alerts(app)
        start = time.perf_counter()
        status, payload = app.request(
            "GET", f"/v1/stream/sessions/{sid}/alerts?wait=5"
        )
        assert status == 200
        assert payload["alerts"]
        assert time.perf_counter() - start < 2.0

    def test_long_poll_expires_empty(self, app):
        sid = create_session(app)
        start = time.perf_counter()
        status, payload = app.request(
            "GET", f"/v1/stream/sessions/{sid}/alerts?wait=0.1"
        )
        assert status == 200
        assert payload["alerts"] == []
        assert time.perf_counter() - start >= 0.1

    def test_long_poll_wakes_on_concurrent_ingest(self, app, loop_thread):
        sid = create_session(app)
        poll = loop_thread.submit(
            app.dispatch("GET", f"/v1/stream/sessions/{sid}/alerts?wait=10")
        )
        time.sleep(0.1)
        records = burst_records()
        loop_thread.call(
            app.dispatch(
                "POST",
                f"/v1/stream/sessions/{sid}/events",
                {"events": records + [
                    {"t": 11, "u": "a", "v": "b", "w": 1.0}],
                 "advance_to": 12},
            )
        )
        response = poll.result(timeout=10)
        assert response.status == 200
        assert response.payload["alerts"]


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_parallel_tenants_match_serial_replay(self, app, loop_thread):
        """Eight threads each drive their own session; every tenant's
        final feed must equal the single-tenant reference."""
        n_tenants = 8
        records = burst_records()
        tail = [{"t": 11, "u": "a", "v": "b", "w": 1.0}]
        sids = [create_session(app) for _ in range(n_tenants)]
        errors = []

        def drive(sid: str) -> None:
            try:
                for start in range(0, len(records), 4):
                    response = loop_thread.call(
                        app.dispatch(
                            "POST",
                            f"/v1/stream/sessions/{sid}/events",
                            {"events": records[start : start + 4]},
                        )
                    )
                    assert response.status == 200, response.payload
                response = loop_thread.call(
                    app.dispatch(
                        "POST",
                        f"/v1/stream/sessions/{sid}/events",
                        {"events": tail, "advance_to": 12},
                    )
                )
                assert response.status == 200, response.payload
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(sid,)) for sid in sids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        expected = reference_keys(records + tail, n_steps=12)
        for sid in sids:
            status, payload = app.request(
                "GET", f"/v1/stream/sessions/{sid}/alerts"
            )
            assert status == 200
            assert feed_keys(payload["alerts"]) == expected

    def test_interleaved_batches_one_session(self, loop_thread):
        """Many threads hammer one session inside one open step; the
        engine must see every event exactly once."""
        n_threads, per_thread = 6, 10
        universe = [f"u{i}" for i in range(n_threads)] + [
            f"x{i}" for i in range(n_threads)
        ]
        app = make_app()
        status, payload = app.request(
            "POST", "/v1/stream/sessions", {"universe": universe}
        )
        sid = payload["session"]
        statuses = []

        def hammer(i: int) -> None:
            for j in range(per_thread):
                response = loop_thread.call(
                    app.dispatch(
                        "POST",
                        f"/v1/stream/sessions/{sid}/events",
                        {
                            "events": [
                                {
                                    "t": 0,
                                    "u": f"u{i}",
                                    "v": f"x{i}",
                                    "w": float(j + 1),
                                }
                            ]
                        },
                    )
                )
                statuses.append(response.status)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert statuses == [200] * (n_threads * per_thread)
        _, payload = app.request("GET", f"/v1/stream/sessions/{sid}")
        assert payload["events"] == n_threads * per_thread
        # per-edge last-write-wins is deterministic here: each thread
        # owns its edge, so the final open-step state is w=per_thread
        manager = app.sessions
        session = manager.get(sid)
        for i in range(n_threads):
            assert session.engine.accumulator.state_weight(
                tuple(sorted((f"u{i}", f"x{i}")))
            ) == float(per_thread)

    def test_create_close_race_keeps_counts_consistent(
        self, app, loop_thread
    ):
        n_threads, rounds = 4, 6
        errors = []

        def churn() -> None:
            try:
                for _ in range(rounds):
                    response = loop_thread.call(
                        app.dispatch(
                            "POST",
                            "/v1/stream/sessions",
                            {"universe": UNIVERSE},
                        )
                    )
                    assert response.status == 200
                    sid = response.payload["session"]
                    response = loop_thread.call(
                        app.dispatch(
                            "DELETE", f"/v1/stream/sessions/{sid}"
                        )
                    )
                    assert response.status == 200
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=churn) for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        manager = app.sessions
        assert manager.active == 0
        assert manager.created == n_threads * rounds
        assert manager.closed == n_threads * rounds
        assert app.registry.charged_cells == 0

    def test_polling_during_ingest_is_monotone(self, app, loop_thread):
        sid = create_session(app)
        records = burst_records(24, heavy=(4, 20))
        stop = threading.Event()
        observed = []
        failures = []

        def poll() -> None:
            try:
                while not stop.is_set():
                    response = loop_thread.call(
                        app.dispatch(
                            "GET", f"/v1/stream/sessions/{sid}/alerts"
                        )
                    )
                    assert response.status == 200
                    observed.append(
                        (response.payload["cursor"],
                         tuple(feed_keys(response.payload["alerts"]))),
                    )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append(exc)

        reader = threading.Thread(target=poll)
        reader.start()
        try:
            for start in range(0, len(records), 2):
                response = loop_thread.call(
                    app.dispatch(
                        "POST",
                        f"/v1/stream/sessions/{sid}/events",
                        {"events": records[start : start + 2]},
                    )
                )
                assert response.status == 200
        finally:
            stop.set()
            reader.join(timeout=30)
        assert not failures
        cursors = [cursor for cursor, _ in observed]
        assert cursors == sorted(cursors)
        # cursor=0 reads replay a growing prefix: later reads contain
        # every key an earlier read contained
        for earlier, later in zip(observed, observed[1:]):
            assert set(earlier[1]) <= set(later[1])

    def test_session_charges_shed_warm_graphs_under_load(self):
        registry = GraphRegistry(capacity=4, scale=0.0, budget_cells=120)
        app = make_app(registry=registry)
        names = {i: f"v{i:02d}" for i in range(10)}
        for slot in range(2):
            g1 = (
                random_signed_graph(10, 0.3, seed=slot)
                .positive_part()
                .relabeled(names)
            )
            g2 = (
                random_signed_graph(10, 0.3, seed=slot + 50)
                .positive_part()
                .relabeled(names)
            )
            for v in list(g1.vertices()) + list(g2.vertices()):
                g1.add_vertex(v)
                g2.add_vertex(v)
            buf1, buf2 = io.StringIO(), io.StringIO()
            write_edge_list(g1, buf1)
            write_edge_list(g2, buf2)
            status, _ = app.request(
                "POST",
                "/v1/graphs",
                {
                    "name": f"g{slot}",
                    "g1": buf1.getvalue(),
                    "g2": buf2.getvalue(),
                },
            )
            assert status == 200
        assert registry.warm_count == 2
        before = registry.evictions
        # a big tenant arrives: its charge must push warm entries out
        status, payload = app.request(
            "POST",
            "/v1/stream/sessions",
            {"universe": [f"n{i}" for i in range(200)]},
        )
        assert status == 200
        assert registry.warm_count == 1  # shed to the floor, never to 0
        assert registry.evictions > before
        assert registry.charged_cells >= 200
        app.request(
            "DELETE", f"/v1/stream/sessions/{payload['session']}"
        )
        assert registry.charged_cells == 0

    def test_ingest_grows_the_session_charge(self, app):
        # Measure mid-burst: the spike keeps change-point history and a
        # positive difference edge alive, so the session's resident
        # footprint — and hence its registry charge — must exceed the
        # just-created baseline.  (A fully quiet stream would retire
        # back to the baseline; that is shedding working correctly,
        # not a missing charge.)
        sid = create_session(app)
        base = app.registry.charged_cells
        feed(app, sid, burst_records(8), chunk=100)
        assert app.registry.charged_cells > base


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
class _FlakyPeel(SolverBackend):
    """Delegates peeling to the python backend, then starts raising."""

    name = "flaky-peel"

    def __init__(self, fail_after: int) -> None:
        self.fail_after = fail_after
        self.calls = 0

    def peel(self, graph, adjacency=None):
        self.calls += 1
        if self.calls > self.fail_after:
            raise RuntimeError("injected solver fault")
        return get_backend("python").peel(graph, adjacency)


class _HangingPeel(SolverBackend):
    """Blocks inside the solve long enough to trip a request deadline."""

    name = "hanging-peel"

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds

    def peel(self, graph, adjacency=None):
        time.sleep(self.seconds)
        return get_backend("python").peel(graph, adjacency)


@pytest.fixture
def flaky_backend():
    backend = _FlakyPeel(fail_after=1)
    register_backend(backend, replace=True)
    yield backend
    unregister_backend(backend.name)


@pytest.fixture
def hanging_backend():
    backend = _HangingPeel(seconds=1.0)
    register_backend(backend, replace=True)
    yield backend
    unregister_backend(backend.name)


class TestFaultInjection:
    def _alert_step(self):
        # two quiet steps then a spike: first solve at step 2 (warmup
        # passed, dirty), second solve on the next spike
        return [
            [{"t": t, "u": "a", "v": "b", "w": 1.0} for t in range(2)],
            [{"t": 2, "u": "a", "v": "b", "w": 9.0},
             {"t": 3, "u": "a", "v": "b", "w": 9.0}],
            [{"t": 4, "u": "a", "v": "b", "w": 20.0},
             {"t": 5, "u": "a", "v": "b", "w": 1.0}],
        ]

    def test_solver_fault_fails_only_its_session(self, app, flaky_backend):
        victim = create_session(app, backend=flaky_backend.name, window=2)
        bystander = create_session(app, window=2)
        batches = self._alert_step()
        outcomes = []
        for batch in batches:
            status, payload = app.request(
                "POST",
                f"/v1/stream/sessions/{victim}/events",
                {"events": batch},
            )
            outcomes.append(status)
        assert 422 in outcomes
        # the bystander streams on, unaffected
        for batch in batches:
            status, _ = app.request(
                "POST",
                f"/v1/stream/sessions/{bystander}/events",
                {"events": batch},
            )
            assert status == 200
        status, payload = app.request("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"

    def test_failed_session_answers_409(self, app, flaky_backend):
        sid = create_session(app, backend=flaky_backend.name, window=2)
        for batch in self._alert_step():
            app.request(
                "POST",
                f"/v1/stream/sessions/{sid}/events",
                {"events": batch},
            )
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": 9, "u": "a", "v": "b", "w": 1.0}]},
        )
        assert status == 409
        assert "failed" in payload["error"]

    def test_fault_recorded_in_metrics_and_info(self, app, flaky_backend):
        sid = create_session(app, backend=flaky_backend.name, window=2)
        for batch in self._alert_step():
            app.request(
                "POST",
                f"/v1/stream/sessions/{sid}/events",
                {"events": batch},
            )
        _, info = app.request("GET", f"/v1/stream/sessions/{sid}")
        assert info["failed"] is not None
        assert "injected solver fault" in info["failed"]
        _, metrics = app.request("GET", "/metrics")
        assert metrics["queries"]["error"] >= 1
        assert metrics["sessions"]["failed"] == 1

    def test_failed_session_still_closes(self, app, flaky_backend):
        sid = create_session(app, backend=flaky_backend.name, window=2)
        for batch in self._alert_step():
            app.request(
                "POST",
                f"/v1/stream/sessions/{sid}/events",
                {"events": batch},
            )
        status, payload = app.request(
            "DELETE", f"/v1/stream/sessions/{sid}"
        )
        assert status == 200
        assert payload["final"]["failed"] is not None
        assert app.sessions.active == 0

    def test_fault_preserves_bystander_alert_stream(
        self, app, flaky_backend
    ):
        victim = create_session(app, backend=flaky_backend.name, window=3)
        bystander = create_session(app, window=3)
        records = burst_records()
        tail = [{"t": 11, "u": "a", "v": "b", "w": 1.0}]
        for start in range(0, len(records), 4):
            app.request(
                "POST",
                f"/v1/stream/sessions/{victim}/events",
                {"events": records[start : start + 4]},
            )
            status, _ = app.request(
                "POST",
                f"/v1/stream/sessions/{bystander}/events",
                {"events": records[start : start + 4]},
            )
            assert status == 200
        status, _ = app.request(
            "POST",
            f"/v1/stream/sessions/{bystander}/events",
            {"events": tail, "advance_to": 12},
        )
        assert status == 200
        _, payload = app.request(
            "GET", f"/v1/stream/sessions/{bystander}/alerts"
        )
        assert feed_keys(payload["alerts"]) == reference_keys(
            records + tail, n_steps=12
        )

    def test_hanging_solver_times_out_504(self, app, hanging_backend):
        sid = create_session(app, backend=hanging_backend.name, window=2)
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {
                "events": [
                    {"t": 0, "u": "a", "v": "b", "w": 1.0},
                    {"t": 1, "u": "a", "v": "b", "w": 1.0},
                    {"t": 2, "u": "a", "v": "b", "w": 9.0},
                    {"t": 3, "u": "a", "v": "b", "w": 9.0},
                ],
                "timeout": 0.1,
            },
        )
        assert status == 504
        assert payload["status"] == "timeout"
        # liveness after the hang: the loop never blocked
        status, payload = app.request("GET", "/healthz")
        assert status == 200
        _, metrics = app.request("GET", "/metrics")
        assert metrics["queries"]["timeout"] >= 1

    def test_timeout_does_not_mark_session_failed(
        self, app, hanging_backend
    ):
        sid = create_session(app, backend=hanging_backend.name, window=2)
        app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {
                "events": [
                    {"t": 0, "u": "a", "v": "b", "w": 1.0},
                    {"t": 1, "u": "a", "v": "b", "w": 1.0},
                    {"t": 2, "u": "a", "v": "b", "w": 9.0},
                    {"t": 3, "u": "a", "v": "b", "w": 9.0},
                ],
                "timeout": 0.1,
            },
        )
        # the abandoned solve finishes in the background; the session
        # is slow, not broken
        time.sleep(1.2)
        assert app.sessions.get(sid).failed is None

    def test_manager_raises_session_failed_directly(self, flaky_backend):
        manager = SessionManager(GraphRegistry(scale=0.0))
        session = manager.create(
            universe=UNIVERSE, backend=flaky_backend.name, window=2
        )
        events = [
            EdgeEvent(0, "a", "b", 1.0),
            EdgeEvent(1, "a", "b", 1.0),
            EdgeEvent(2, "a", "b", 9.0),
            EdgeEvent(3, "a", "b", 9.0),
            EdgeEvent(4, "a", "b", 20.0),
            EdgeEvent(5, "a", "b", 1.0),
        ]
        with pytest.raises(RuntimeError, match="injected"):
            manager.apply_events(session.sid, events)
        with pytest.raises(SessionFailedError):
            manager.apply_events(
                session.sid, [EdgeEvent(9, "a", "b", 1.0)]
            )
        assert manager.failures == 1


# ----------------------------------------------------------------------
# per-tenant policy parity
# ----------------------------------------------------------------------
class TestPolicyParity:
    def _drive(self, app, sid, records, tail_t):
        alerts = feed(app, sid, records)
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": tail_t, "u": "a", "v": "b", "w": 1.0}],
             "advance_to": tail_t + 1},
        )
        assert status == 200
        alerts.extend(payload["alerts"])
        return alerts

    def test_exact_and_gated_tenants_agree_on_alert_keys(self, app):
        records = burst_records(16, heavy=(8, 10))
        exact = create_session(app, policy="exact", window=4)
        gated = create_session(app, policy="gated", window=4)
        exact_alerts = self._drive(app, exact, records, 16)
        gated_alerts = self._drive(app, gated, records, 16)
        assert feed_keys(gated_alerts) == feed_keys(exact_alerts)
        for mine, ref in zip(
            sorted(gated_alerts, key=lambda a: a["step"]),
            sorted(exact_alerts, key=lambda a: a["step"]),
        ):
            assert mine["score"] == pytest.approx(ref["score"], rel=1e-6)

    def test_identical_tenants_produce_identical_feeds(self, app):
        records = burst_records()
        first = create_session(app)
        second = create_session(app)
        alerts_a = self._drive(app, first, records, 11)
        alerts_b = self._drive(app, second, records, 11)
        assert alerts_a == alerts_b

    def test_topk_session_reports_ranking(self, app):
        sid = create_session(app, k=2, window=3)
        records = []
        for t in range(8):
            records.append(
                {"t": t, "u": "a", "v": "b",
                 "w": 9.0 if t >= 5 else 1.0}
            )
            records.append(
                {"t": t, "u": "c", "v": "d",
                 "w": 5.0 if t >= 5 else 1.0}
            )
        feed(app, sid, records, chunk=100)
        status, payload = app.request(
            "POST",
            f"/v1/stream/sessions/{sid}/events",
            {"events": [{"t": 7, "u": "a", "v": "b", "w": 9.0}],
             "advance_to": 8},
        )
        assert status == 200
        _, info = app.request("GET", f"/v1/stream/sessions/{sid}")
        ranking = info["topk"]
        assert len(ranking) == 2
        assert ranking[0]["subset"] == ["a", "b"]
        assert ranking[1]["subset"] == ["c", "d"]
        assert ranking[0]["score"] > ranking[1]["score"]

    def test_metrics_template_session_routes(self, app):
        sid = create_session(app)
        feed(app, sid, [{"t": 0, "u": "a", "v": "b", "w": 1.0}])
        app.request("GET", f"/v1/stream/sessions/{sid}/alerts")
        app.request("GET", f"/v1/stream/sessions/{sid}")
        _, metrics = app.request("GET", "/metrics")
        routes = metrics["requests"]["by_route"]
        assert "/v1/stream/sessions/{id}/events" in routes
        assert "/v1/stream/sessions/{id}/alerts" in routes
        assert "/v1/stream/sessions/{id}" in routes
        assert not any(sid in route for route in routes)


# ----------------------------------------------------------------------
# the registry budget (unit level)
# ----------------------------------------------------------------------
class TestRegistryBudget:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            GraphRegistry(budget_cells=0)

    def test_charge_rejects_negative(self):
        registry = GraphRegistry(scale=0.0)
        with pytest.raises(ValueError):
            registry.charge("session:x", -1)

    def test_charge_and_discharge_round_trip(self):
        registry = GraphRegistry(scale=0.0)
        registry.charge("session:a", 40)
        registry.charge("session:b", 2)
        assert registry.charged_cells == 42
        registry.charge("session:a", 10)  # replaces, not accumulates
        assert registry.charged_cells == 12
        registry.discharge("session:a")
        registry.discharge("session:a")  # idempotent
        assert registry.charged_cells == 2

    def test_no_budget_never_sheds(self):
        registry = GraphRegistry(scale=0.0)
        registry.charge("session:a", 10**9)
        assert registry.evictions == 0
