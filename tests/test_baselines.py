"""Tests for the EgoScan substitute and heaviest-subgraph search."""

from __future__ import annotations

import pytest

from repro.baselines.egoscan import ego_scan, scan_ego_net
from repro.baselines.heaviest import (
    exact_heaviest_subgraph,
    local_search_heaviest,
    marginal_weight,
)
from repro.graph.generators import complete_graph, random_signed_graph
from repro.graph.graph import Graph


class TestMarginals:
    def test_marginal_weight(self, signed_graph):
        assert marginal_weight(signed_graph, {"a", "b"}, "c") == pytest.approx(6.0)
        assert marginal_weight(signed_graph, {"a"}, "e") == pytest.approx(-4.0)
        assert marginal_weight(signed_graph, set(), "a") == 0.0


class TestLocalSearch:
    def test_grows_to_positive_structure(self, signed_graph):
        subset, weight = local_search_heaviest(signed_graph, {"a"})
        assert {"a", "b", "c"} <= subset
        assert weight >= signed_graph.total_degree({"a", "b", "c"})

    def test_drops_negative_members(self, signed_graph):
        subset, _ = local_search_heaviest(signed_graph, {"a", "e"})
        assert "e" not in subset or marginal_weight(
            signed_graph, subset - {"e"}, "e"
        ) >= 0

    def test_respects_candidate_pool(self, signed_graph):
        subset, _ = local_search_heaviest(
            signed_graph, {"a"}, candidate_pool={"a", "b"}
        )
        assert subset <= {"a", "b"}

    def test_local_optimum_property(self):
        """At exit, no single add/remove improves the objective."""
        for seed in range(8):
            gd = random_signed_graph(20, 0.3, seed=seed)
            subset, _ = local_search_heaviest(gd, set(list(gd.vertices())[:2]))
            for v in gd.vertices():
                gain = marginal_weight(gd, subset - {v}, v)
                if v in subset:
                    assert gain >= 0.0
                else:
                    assert gain <= 0.0

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            local_search_heaviest(Graph(), set(), candidate_pool=set())

    def test_near_optimal_on_small_graphs(self):
        """Local search from a good seed lands close to the exact optimum
        of max W_D(S) on small instances."""
        hits = 0
        for seed in range(10):
            gd = random_signed_graph(10, 0.5, seed=seed)
            exact_set, exact_weight = exact_heaviest_subgraph(gd)
            subset, weight = local_search_heaviest(gd, exact_set)
            # Starting at the optimum must stay at the optimum.
            assert weight == pytest.approx(exact_weight)
            hits += 1
        assert hits == 10


class TestEgoScan:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            ego_scan(Graph())

    def test_single_vertex_graph(self):
        graph = Graph()
        graph.add_vertex("a")
        result = ego_scan(graph)
        assert result.subset == {"a"}
        assert result.total_weight == 0.0

    def test_scan_ego_net_isolated(self):
        graph = Graph.from_edges([("a", "b", 1.0)], vertices=["z"])
        subset, weight = scan_ego_net(graph, "z")
        assert subset == {"z"}
        assert weight == 0.0

    def test_finds_heavy_cluster(self):
        gd = complete_graph(5, weight=2.0)
        gd.add_edge(0, "x", -5.0)
        result = ego_scan(gd)
        assert result.subset == {0, 1, 2, 3, 4}
        assert result.total_weight == pytest.approx(40.0)

    def test_total_weight_convention(self, signed_graph):
        result = ego_scan(signed_graph)
        assert result.total_weight == pytest.approx(
            signed_graph.total_degree(result.subset)
        )

    def test_max_seeds_cap(self):
        gd = random_signed_graph(30, 0.3, seed=1)
        result = ego_scan(gd, max_seeds=5)
        assert result.seeds_scanned == 5

    def test_matches_exact_on_small_graphs(self):
        """On small graphs the substitute usually finds the optimum of
        its objective; require at least 80% exact hits and never exceed."""
        hits = 0
        for seed in range(10):
            gd = random_signed_graph(11, 0.45, seed=seed)
            _, exact_weight = exact_heaviest_subgraph(gd)
            result = ego_scan(gd)
            assert result.total_weight <= exact_weight + 1e-9
            if result.total_weight == pytest.approx(exact_weight):
                hits += 1
        assert hits >= 8

    def test_beats_dcs_algorithms_on_total_weight(self):
        """Table IX's shape: EgoScan wins on total edge weight."""
        from repro.core.dcsad import dcs_greedy
        from repro.core.newsea import new_sea

        for seed in range(5):
            gd = random_signed_graph(40, 0.25, seed=seed)
            ego = ego_scan(gd)
            ad = dcs_greedy(gd)
            ga = new_sea(gd.positive_part())
            assert ego.total_weight >= gd.total_degree(ad.subset) - 1e-9
            assert ego.total_weight >= gd.total_degree(ga.support) - 1e-9

    def test_loses_on_density(self):
        """Table VIII's shape: EgoScan subgraphs are big and less dense
        than the DCSAD answer."""
        from repro.core.dcsad import dcs_greedy

        worse = 0
        for seed in range(5):
            gd = random_signed_graph(40, 0.25, seed=seed)
            ego = ego_scan(gd)
            ad = dcs_greedy(gd)
            ego_density = gd.total_degree(ego.subset) / len(ego.subset)
            if ego_density <= ad.density + 1e-9:
                worse += 1
        assert worse >= 4
