"""2-coordinate descent for graph affinity (Section V-B, shrink stage).

The replicator dynamics of the original SEA [18] cannot handle negative
entries of ``D``, so the paper optimises ``f_D(x) = x^T D x`` on the
simplex by repeatedly picking *two* coordinates and solving the
one-dimensional subproblem (Eq. 9) analytically:

* ``i = argmax_{k in S, x_k < 1} grad_k f(x)``,
* ``j = argmin_{k in S, x_k > 0} grad_k f(x)``,
* move mass between ``x_i`` and ``x_j`` holding ``C = x_i + x_j`` fixed.

Each move strictly increases the objective while the gradient gap
exceeds the tolerance, and the iterate converges to a **local KKT point
on S** (Eq. 10): mass never leaves ``S``, and within ``S`` the KKT
conditions hold.

The solver maintains the sparse cache ``dx[k] = (Dx)_k`` for ``k in S``
and updates it in ``O(deg(i) + deg(j))`` per move, matching the cost
analysis in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.graph.graph import Graph, Vertex

#: Paper's shrink-stage precision: ``max grad - min grad <= 1e-2 / |S|``.
DEFAULT_TOL_SCALE = 1e-2


@dataclass
class CDResult:
    """Outcome of a coordinate-descent run.

    ``x`` is the final (sparse) iterate, ``objective`` its affinity,
    ``iterations`` the number of pair moves, ``converged`` whether the
    gradient-gap condition was met within the iteration budget.
    """

    x: Dict[Vertex, float]
    objective: float
    iterations: int
    converged: bool


def _gradient_cache(
    graph: Graph, x: Dict[Vertex, float], subset: Set[Vertex]
) -> Dict[Vertex, float]:
    """``dx[k] = (Dx)_k`` for every ``k`` in *subset*."""
    cache: Dict[Vertex, float] = {}
    for k in subset:
        total = 0.0
        for neighbor, weight in graph.neighbors(k).items():
            xv = x.get(neighbor)
            if xv is not None:
                total += weight * xv
        cache[k] = total
    return cache


def _objective(x: Dict[Vertex, float], dx: Dict[Vertex, float]) -> float:
    """``f(x) = x^T D x = sum_u x_u (Dx)_u`` from the cache."""
    return sum(x[u] * dx[u] for u in x)


def _apply_delta(
    graph: Graph,
    dx: Dict[Vertex, float],
    subset: Set[Vertex],
    vertex: Vertex,
    delta: float,
) -> None:
    """Propagate ``x_vertex += delta`` into the (Dx) cache."""
    if delta == 0.0:
        return
    for neighbor, weight in graph.neighbors(vertex).items():
        if neighbor in subset:
            dx[neighbor] += weight * delta


def _best_pair_move(
    d_ij: float, c_total: float, b_i: float, b_j: float
) -> float:
    """Solve Eq. 9: the optimal new value of ``x_i`` on ``[0, C]``.

    ``g(x_i) = b_i x_i + b_j (C - x_i) + d_ij x_i (C - x_i)`` up to a
    constant.  Candidates: both endpoints, plus the stationary point when
    the quadratic is concave (``d_ij > 0``).
    """

    def g(value: float) -> float:
        return b_i * value + b_j * (c_total - value) + d_ij * value * (c_total - value)

    candidates = [0.0, c_total]
    if d_ij > 0.0:
        stationary = (d_ij * c_total + b_i - b_j) / (2.0 * d_ij)
        if 0.0 < stationary < c_total:
            candidates.append(stationary)
    # Prefer endpoints on ties (sparser supports); `max` keeps the first
    # best, and endpoints come first in the candidate list.
    return max(candidates, key=g)


def coordinate_descent(
    graph: Graph,
    x0: Dict[Vertex, float],
    subset: Optional[Iterable[Vertex]] = None,
    tol: Optional[float] = None,
    max_iterations: int = 100_000,
) -> CDResult:
    """Drive *x0* to a local KKT point on *subset* (Eq. 10/11).

    Parameters
    ----------
    graph:
        The (signed) difference graph ``GD`` — or ``GD+``; nothing here
        assumes a sign.
    x0:
        Initial embedding as ``{vertex: weight}``; must be supported
        inside *subset* and sum to 1.
    subset:
        The set ``S`` on which the local KKT point is sought; defaults to
        the support of *x0*.
    tol:
        Gradient-gap convergence threshold
        ``max_k grad - min_k grad <= tol``; defaults to the paper's
        ``1e-2 / |S|``.
    max_iterations:
        Safety cap on pair moves; exceeding it returns
        ``converged=False`` instead of raising, so outer solvers can
        still use the (improved) iterate.
    """
    x: Dict[Vertex, float] = {u: w for u, w in x0.items() if w > 0.0}
    members: Set[Vertex] = set(subset) if subset is not None else set(x)
    if not members:
        raise ValueError("coordinate descent needs a nonempty subset")
    if not set(x) <= members:
        raise ValueError("x0 must be supported inside the subset")
    total = sum(x.values())
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"x0 sums to {total}, expected 1")
    if tol is None:
        tol = DEFAULT_TOL_SCALE / len(members)

    dx = _gradient_cache(graph, x, members)

    iterations = 0
    converged = False
    while iterations < max_iterations:
        # Select the steepest-ascent pair.  Gradients are 2*dx; the factor
        # 2 cancels in comparisons but not in the tolerance test.
        i: Optional[Vertex] = None
        j: Optional[Vertex] = None
        for k in members:
            value = dx[k]
            if x.get(k, 0.0) < 1.0 and (i is None or value > dx[i]):
                i = k
            if x.get(k, 0.0) > 0.0 and (j is None or value < dx[j]):
                j = k
        if i is None or j is None:
            # |S| == 1 with full mass: trivially a local KKT point.
            converged = True
            break
        if 2.0 * (dx[i] - dx[j]) <= tol:
            converged = True
            break

        xi = x.get(i, 0.0)
        xj = x.get(j, 0.0)
        c_total = xi + xj
        d_ij = graph.weight(i, j)
        b_i = dx[i] - d_ij * xj
        b_j = dx[j] - d_ij * xi
        xi_new = _best_pair_move(d_ij, c_total, b_i, b_j)
        xj_new = c_total - xi_new

        delta_i = xi_new - xi
        delta_j = xj_new - xj
        if delta_i == 0.0:
            # The analytic optimum is the current point: the gradient gap
            # is below numeric resolution; treat as converged.
            converged = True
            break

        if xi_new > 0.0:
            x[i] = xi_new
        else:
            x.pop(i, None)
        if xj_new > 0.0:
            x[j] = xj_new
        else:
            x.pop(j, None)
        _apply_delta(graph, dx, members, i, delta_i)
        _apply_delta(graph, dx, members, j, delta_j)
        iterations += 1

    return CDResult(
        x=x,
        objective=_objective(x, dx),
        iterations=iterations,
        converged=converged,
    )


def gradient_gap(
    graph: Graph, x: Dict[Vertex, float], subset: Optional[Iterable[Vertex]] = None
) -> float:
    """``max_{k in S, x_k<1} grad_k - min_{k in S, x_k>0} grad_k``.

    Negative or zero gap means the local KKT conditions (Eq. 11) hold on
    *subset*.  Returns ``-inf`` when no valid pair exists (singleton S).
    """
    members = set(subset) if subset is not None else set(x)
    dx = _gradient_cache(graph, x, members)
    best_up = -math.inf
    best_down = math.inf
    for k in members:
        value = 2.0 * dx[k]
        if x.get(k, 0.0) < 1.0:
            best_up = max(best_up, value)
        if x.get(k, 0.0) > 0.0:
            best_down = min(best_down, value)
    if best_up is -math.inf or best_down is math.inf:
        return -math.inf
    return best_up - best_down
