"""DCSAD: Density Contrast Subgraph w.r.t. Average Degree (Section IV).

``max_S rho_D(S) = W_D(S) / |S|`` on the difference graph.  NP-hard and
``O(n^{1-eps})``-inapproximable (Theorem 1, Corollary 1), but:

* the heaviest positive edge alone is a ``1/(n-1)``-approximation, and
* greedy peeling on ``GD`` and on ``GD+`` often does much better,

which is exactly Algorithm 2 (*DCSGreedy*): take the best of the three
candidates, refine to the densest connected component (Property 1), and
report the data-dependent ratio ``beta = 2 rho_{D+}(S2) / rho_D(S)``
(Theorem 2) certifying how far the answer can be from optimal on *this*
input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.engine.registry import resolve_backend
from repro.graph.components import densest_component, is_connected
from repro.graph.graph import Graph, Vertex
from repro.peeling.greedy import Backend, greedy_peel

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.engine.prepared import PreparedGraph


@dataclass(frozen=True)
class DCSADResult:
    """Solution of a DCSGreedy run.

    Attributes
    ----------
    subset:
        The returned vertex set ``S``.
    density:
        ``rho_D(S)`` — the density-contrast value (average degree in
        ``GD``, each edge counted twice per Eq. 1).
    ratio_bound:
        The data-dependent approximation ratio
        ``beta = 2 rho_{D+}(S2) / rho_D(S)``; the optimum is at most
        ``beta * density``.  ``None`` when the difference graph has no
        positive edge (the trivial answer is exactly optimal).
    candidate_densities:
        Density of each candidate considered (``"max_edge"``,
        ``"greedy_gd"``, ``"greedy_gd_plus"``) before the connectivity
        refinement — useful for diagnostics and the GD-only / GD+-only
        baselines of Tables X and XII.
    winner:
        Which candidate was selected.
    connected:
        Whether the *pre-refinement* winner was already connected in
        ``GD``.
    """

    subset: Set[Vertex]
    density: float
    ratio_bound: Optional[float]
    candidate_densities: Dict[str, float] = field(default_factory=dict)
    winner: str = ""
    connected: bool = True


def _density(gd: Graph, subset: Set[Vertex]) -> float:
    if not subset:
        return float("-inf")
    return gd.total_degree(subset) / len(subset)


def dcs_greedy(
    gd: Graph,
    backend: Backend = "heap",
    seed: Optional[int] = None,
    prepared: Optional["PreparedGraph"] = None,
) -> DCSADResult:
    """Algorithm 2 on a prebuilt difference graph ``GD``.

    Use :func:`dcs_greedy_pair` to start from ``(G1, G2)``.  *seed* only
    matters in the degenerate no-positive-edge case where the paper picks
    a random vertex.  *backend* selects the peeling priority structure:
    ``"heap"`` / ``"segment_tree"`` (pure Python) or ``"sparse"`` (the
    vectorised CSR backend of :mod:`repro.peeling.greedy`), resolved
    through the engine registry.

    *prepared* shares this graph's
    :class:`~repro.engine.prepared.PreparedGraph` context: the ``GD+``
    build (and, on CSR-capable backends, both frozen adjacencies) are
    reused instead of rebuilt — a paired DCSAD+DCSGA workload on one
    difference graph prepares exactly once.
    """
    if gd.num_vertices == 0:
        raise ValueError("difference graph has no vertices")
    if prepared is not None:
        prepared.check_owns(gd)

    heaviest = gd.max_weight_edge()
    if heaviest is None or heaviest[2] <= 0:
        # Case 1 of Section IV-B: no positive edge — any single vertex is
        # optimal with density contrast 0.
        rng = random.Random(seed)
        vertex = rng.choice(sorted(gd.vertices(), key=repr))
        return DCSADResult(
            subset={vertex},
            density=0.0,
            ratio_bound=None,
            candidate_densities={},
            winner="single_vertex",
            connected=True,
        )

    u, v, _ = heaviest
    candidates: Dict[str, Set[Vertex]] = {"max_edge": {u, v}}

    shares_csr = (
        prepared is not None
        and resolve_backend(backend).supports_shared_adjacency
    )
    # csr_of() follows whichever graph the caller passed: dcs_greedy is
    # legitimately invoked on prepared.gd (the usual case) or on
    # prepared.gd_plus itself, and each peel must pair with its own
    # frozen adjacency.
    peel_gd = greedy_peel(
        gd,
        backend=backend,
        adjacency=prepared.csr_of(gd) if shares_csr else None,
    )
    candidates["greedy_gd"] = peel_gd.subset

    # When the caller passed GD+ itself, prepared.gd_plus IS gd — the
    # positive part of an all-positive graph — so this stays coherent
    # for both sanctioned pairings.
    gd_plus = prepared.gd_plus if prepared is not None else gd.positive_part()
    peel_plus = greedy_peel(
        gd_plus,
        backend=backend,
        adjacency=prepared.csr_of(gd_plus) if shares_csr else None,
    )
    candidates["greedy_gd_plus"] = peel_plus.subset

    densities = {name: _density(gd, subset) for name, subset in candidates.items()}
    winner = max(densities, key=lambda name: densities[name])
    subset = candidates[winner]
    connected = is_connected(gd, subset)
    if not connected:
        subset = densest_component(gd, subset)

    density = _density(gd, subset)
    # Theorem 2: rho_{D+}(S2) is a 2-approximation of the max density in
    # GD+, which upper-bounds the max density in GD.
    rho_plus_s2 = gd_plus.total_degree(peel_plus.subset) / len(peel_plus.subset)
    ratio_bound = (2.0 * rho_plus_s2 / density) if density > 0 else None

    return DCSADResult(
        subset=set(subset),
        density=density,
        ratio_bound=ratio_bound,
        candidate_densities=densities,
        winner=winner,
        connected=connected,
    )


def dcs_exact_positive(gd: Graph) -> DCSADResult:
    """Exact DCSAD when the difference graph has **no negative edges**.

    Negative weights are what make DCSAD NP-hard (Theorem 1); without
    them the problem is Goldberg's classic polynomial densest subgraph
    [12], solved here by max-flow binary search.  Raises ``ValueError``
    when a negative edge is present — fall back to :func:`dcs_greedy`.

    Useful for the Actor-style use case (a positive collaboration
    network used directly as ``GD``) and as an exactness oracle wherever
    the difference happens to be one-sided.
    """
    from repro.flow.goldberg import densest_subgraph

    if gd.num_vertices == 0:
        raise ValueError("difference graph has no vertices")
    if gd.num_edges == 0:
        vertex = min(gd.vertices(), key=repr)
        return DCSADResult(
            subset={vertex},
            density=0.0,
            ratio_bound=1.0,
            winner="single_vertex",
            connected=True,
        )
    subset, density = densest_subgraph(gd)
    subset = densest_component(gd, subset)
    density = _density(gd, subset)
    return DCSADResult(
        subset=set(subset),
        density=density,
        ratio_bound=1.0,
        candidate_densities={"goldberg": density},
        winner="goldberg",
        connected=True,
    )


def dcs_greedy_pair(
    g1: Graph,
    g2: Graph,
    backend: Backend = "heap",
    seed: Optional[int] = None,
) -> DCSADResult:
    """Algorithm 2 on the pair ``(G1, G2)``: builds ``GD = G2 - G1`` first."""
    from repro.core.difference import difference_graph

    return dcs_greedy(difference_graph(g1, g2), backend=backend, seed=seed)


def greedy_on_gd_only(gd: Graph, backend: Backend = "heap") -> DCSADResult:
    """The *GD only* baseline of Tables X and XII: Greedy on ``GD`` alone."""
    peel = greedy_peel(gd, backend=backend)
    subset = peel.subset
    return DCSADResult(
        subset=set(subset),
        density=_density(gd, subset),
        ratio_bound=None,
        candidate_densities={"greedy_gd": peel.density},
        winner="greedy_gd",
        connected=is_connected(gd, subset),
    )


def greedy_on_gd_plus_only(gd: Graph, backend: Backend = "heap") -> DCSADResult:
    """The *GD+ only* baseline: Greedy on ``GD+``, evaluated in ``GD``.

    Note the returned ``density`` is measured in ``GD`` (the contrast
    objective), while the peel itself maximised density in ``GD+`` — the
    distinction the paper draws in Table X's "Average Degree" columns.
    """
    gd_plus = gd.positive_part()
    peel = greedy_peel(gd_plus, backend=backend)
    subset = peel.subset
    return DCSADResult(
        subset=set(subset),
        density=_density(gd, subset),
        ratio_bound=None,
        candidate_densities={"greedy_gd_plus": _density(gd, subset)},
        winner="greedy_gd_plus",
        connected=is_connected(gd, subset),
    )
