"""Top-k density contrast subgraphs (the paper's future-work extension).

Section VII: "our methods only mine one DCS with the greatest density
difference, how to mine multiple subgraphs with big density difference is
another interesting direction."  This module provides the two natural
constructions:

* :func:`top_k_dcsga` — for graph affinity, the all-initialisations
  driver already yields many deduplicated positive cliques; rank them.
  ``diversify=True`` additionally enforces disjoint supports greedily
  (best-first), the usual way to avoid near-duplicate answers.
* :func:`top_k_dcsad` — for average degree, iterate DCSGreedy with a
  *removal* strategy between rounds: either delete the found vertices
  (disjoint answers) or delete only the found edges (overlapping answers
  allowed, the found structure itself suppressed).

Both return results in decreasing objective order and stop early when the
graph runs out of positive structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Literal,
    Optional,
    Set,
    Tuple,
)

from repro.core.dcsad import DCSADResult, dcs_greedy
from repro.core.newsea import solve_all_initializations
from repro.engine.registry import BackendLike, PeelBackend
from repro.graph.graph import Graph, Vertex

RemovalStrategy = Literal["vertices", "edges"]


@dataclass(frozen=True)
class RankedDCS:
    """One of the top-k answers with its rank (0 = best)."""

    rank: int
    subset: Set[Vertex]
    objective: float
    embedding: Optional[Dict[Vertex, float]] = None


def top_k_dcsga(
    gd_plus: Graph,
    k: int,
    diversify: bool = True,
    tol_scale: float = 1e-2,
    backend: BackendLike = "python",
    adjacency=None,
) -> List[RankedDCS]:
    """Top-k positive-clique solutions by graph affinity.

    Runs SEACD+Refinement from every vertex (the paper's multi-solution
    configuration behind Table V / Fig. 3) and ranks the deduplicated
    solutions.  With *diversify*, supports are made pairwise disjoint by
    best-first selection, so each answer describes a different group.
    ``backend="sparse"`` runs every initialisation on the vectorised CSR
    solver over one shared adjacency; *adjacency* supplies that
    :class:`~repro.graph.sparse.CSRAdjacency` prebuilt (the batch layer
    shares one per graph fingerprint through
    :class:`~repro.engine.prepared.PreparedGraph`; the registry
    validates it centrally against non-CSR backends).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    result = solve_all_initializations(
        gd_plus, tol_scale=tol_scale, backend=backend, adjacency=adjacency
    )
    ranked: List[RankedDCS] = []
    used: Set[Vertex] = set()
    for support, x, objective in result.solutions:
        if diversify and support & used:
            continue
        ranked.append(
            RankedDCS(
                rank=len(ranked),
                subset=set(support),
                objective=objective,
                embedding=dict(x),
            )
        )
        used |= support
        if len(ranked) == k:
            break
    return ranked


def _remove_found(
    gd: Graph, subset: Set[Vertex], strategy: RemovalStrategy
) -> Tuple[Graph, int]:
    """Strip the found structure; return ``(residual, removed_count)``.

    *removed_count* is the number of vertices or edges actually deleted —
    the iteration's progress measure.  A round that removes nothing can
    never change the next round's answer, so the caller must stop
    instead of looping on (or raising over) a frozen residual.
    """
    stripped = gd.copy()
    if strategy == "vertices":
        removed = 0
        for vertex in subset:
            if stripped.has_vertex(vertex):
                stripped.remove_vertex(vertex)
                removed += 1
        return stripped, removed
    if strategy == "edges":
        removed = 0
        members = list(subset)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if stripped.discard_edge(u, v) is not None:
                    removed += 1
        return stripped, removed
    raise ValueError(f"unknown removal strategy {strategy!r}")


def top_k_dcsad(
    gd: Graph,
    k: int,
    strategy: RemovalStrategy = "vertices",
    min_objective: float = 0.0,
    backend: PeelBackend = "heap",
) -> List[RankedDCS]:
    """Top-k average-degree contrast subgraphs by iterated DCSGreedy.

    After each round the found structure is removed (*strategy*:
    ``"vertices"`` deletes the vertices — disjoint answers; ``"edges"``
    deletes only the induced edges — answers may share vertices).  The
    iteration stops early once the best remaining contrast drops to
    *min_objective* (default: only strictly positive answers).
    *backend* is the peeling backend of each DCSGreedy round
    (``"heap"``, ``"segment_tree"`` or ``"sparse"``).

    Termination is guaranteed for any *k* and *min_objective*: the loop
    stops cleanly (no exception, no repeated answers) as soon as the
    residual graph has no positive edge left, or as soon as a round
    fails to remove anything — with ``strategy="edges"`` an answer can
    re-surface structure whose induced edges are already gone, and such
    a round makes no progress.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if strategy not in ("vertices", "edges"):
        raise ValueError(f"unknown removal strategy {strategy!r}")
    ranked: List[RankedDCS] = []
    work = gd.copy()
    for rank in range(k):
        if work.num_vertices == 0:
            break
        heaviest = work.max_weight_edge()
        if heaviest is None or heaviest[2] <= 0:
            # The residual has no positive edge: every later round would
            # return the degenerate zero-contrast answer.  Stop cleanly.
            break
        result: DCSADResult = dcs_greedy(work, backend=backend)
        if result.density <= min_objective:
            break
        work, removed = _remove_found(work, result.subset, strategy)
        if removed == 0:
            break
        ranked.append(
            RankedDCS(
                rank=rank,
                subset=set(result.subset),
                objective=result.density,
            )
        )
    return ranked


def coverage(results: List[RankedDCS]) -> Set[Vertex]:
    """Union of all returned subsets (diagnostics)."""
    covered: Set[Vertex] = set()
    for item in results:
        covered |= item.subset
    return covered


# ----------------------------------------------------------------------
# incremental maintenance (the streaming engine's k incumbents)
# ----------------------------------------------------------------------
def _subset_order_key(subset: FrozenSet[Vertex]) -> Tuple[int, str]:
    """Deterministic tie-break so equal scores rank reproducibly."""
    return (len(subset), repr(sorted(subset, key=repr)))


@dataclass
class _Candidate:
    """One maintained answer; mutable so re-scoring edits in place."""

    subset: FrozenSet[Vertex]
    score: float
    embedding: Optional[Dict[Vertex, float]] = None


class IncrementalTopK:
    """Maintain the best ``k`` (subset, score) answers under updates.

    The batch functions above recompute a ranking from scratch; a
    streaming session instead *maintains* one: fresh solve results are
    :meth:`offer`-ed (or the whole set :meth:`replace`-d after a full
    top-k solve), and the gated policy's per-incumbent re-scoring goes
    through :meth:`rescore`, which re-sorts — so rank membership can
    change without any new offer, which is exactly why consumers must
    read answers from this structure rather than from a step-count
    keyed cache.

    Invariants (property-tested): candidates are unique by subset,
    sorted by decreasing score (deterministic tie-break on the subset),
    at most ``k`` retained, and every retained score is strictly above
    ``min_score``.  The maintained set therefore always equals the
    best-k of everything offered since the last :meth:`clear` /
    :meth:`replace`, deduplicated by subset at each subset's best
    score.
    """

    def __init__(self, k: int, min_score: float = 0.0) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.min_score = min_score
        self._candidates: List[_Candidate] = []

    # -- reads ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, subset: Iterable[Vertex]) -> bool:
        key = frozenset(subset)
        return any(c.subset == key for c in self._candidates)

    @property
    def best(self) -> Optional[RankedDCS]:
        """The rank-0 answer, or ``None`` while empty."""
        ranked = self.as_ranked()
        return ranked[0] if ranked else None

    @property
    def worst_score(self) -> float:
        """Score of the current k-th answer (``min_score`` while the
        structure is not full — anything above it may enter)."""
        if len(self._candidates) < self.k:
            return self.min_score
        return self._candidates[-1].score

    def subsets(self) -> List[FrozenSet[Vertex]]:
        """Retained subsets in rank order."""
        return [c.subset for c in self._candidates]

    def scores(self) -> List[float]:
        """Retained scores in rank order."""
        return [c.score for c in self._candidates]

    def as_ranked(self) -> List[RankedDCS]:
        """The maintained answers as :class:`RankedDCS` rows."""
        return [
            RankedDCS(
                rank=rank,
                subset=set(c.subset),
                objective=c.score,
                embedding=(
                    dict(c.embedding) if c.embedding is not None else None
                ),
            )
            for rank, c in enumerate(self._candidates)
        ]

    # -- writes --------------------------------------------------------
    def clear(self) -> None:
        self._candidates = []

    def offer(
        self,
        subset: Iterable[Vertex],
        score: float,
        embedding: Optional[Dict[Vertex, float]] = None,
    ) -> bool:
        """Consider one answer; returns whether the top-k changed.

        A subset already retained keeps its best score (a worse re-offer
        is a no-op); a new subset enters if it beats the current k-th —
        score ties at the boundary resolve by the deterministic subset
        order, so the maintained set never depends on offer order.
        Scores at or below ``min_score`` never enter.
        """
        if score <= self.min_score:
            return False
        key = frozenset(subset)
        if not key:
            return False
        for candidate in self._candidates:
            if candidate.subset == key:
                if score <= candidate.score:
                    return False
                candidate.score = score
                if embedding is not None:
                    candidate.embedding = dict(embedding)
                self._sort()
                return True
        if len(self._candidates) >= self.k:
            last = self._candidates[-1]
            offered = (-score,) + _subset_order_key(key)
            retained = (-last.score,) + _subset_order_key(last.subset)
            if offered >= retained:
                return False
        self._candidates.append(
            _Candidate(
                subset=key,
                score=score,
                embedding=dict(embedding) if embedding is not None else None,
            )
        )
        self._sort()
        del self._candidates[self.k :]
        return True

    def replace(
        self,
        answers: Iterable[
            Tuple[Iterable[Vertex], float, Optional[Dict[Vertex, float]]]
        ],
    ) -> None:
        """Install a fresh answer set (a full top-k solve), discarding
        the maintained one."""
        self.clear()
        for subset, score, embedding in answers:
            self.offer(subset, score, embedding)

    def rescore(
        self,
        score_of: Callable[[FrozenSet[Vertex]], Optional[float]],
    ) -> bool:
        """Re-evaluate every retained answer on updated data.

        ``score_of`` maps a subset to its new score, or ``None`` to drop
        it (e.g. its support dissolved).  Candidates falling to or below
        ``min_score`` are dropped too; survivors re-sort, so ranks —
        including rank 0 — can move without any offer.  Returns whether
        membership or order changed.
        """
        before = [(c.subset, c.score) for c in self._candidates]
        survivors: List[_Candidate] = []
        for candidate in self._candidates:
            new_score = score_of(candidate.subset)
            if new_score is None or new_score <= self.min_score:
                continue
            candidate.score = new_score
            survivors.append(candidate)
        self._candidates = survivors
        self._sort()
        return before != [(c.subset, c.score) for c in self._candidates]

    def _sort(self) -> None:
        self._candidates.sort(
            key=lambda c: (-c.score,) + _subset_order_key(c.subset)
        )
