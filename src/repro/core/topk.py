"""Top-k density contrast subgraphs (the paper's future-work extension).

Section VII: "our methods only mine one DCS with the greatest density
difference, how to mine multiple subgraphs with big density difference is
another interesting direction."  This module provides the two natural
constructions:

* :func:`top_k_dcsga` — for graph affinity, the all-initialisations
  driver already yields many deduplicated positive cliques; rank them.
  ``diversify=True`` additionally enforces disjoint supports greedily
  (best-first), the usual way to avoid near-duplicate answers.
* :func:`top_k_dcsad` — for average degree, iterate DCSGreedy with a
  *removal* strategy between rounds: either delete the found vertices
  (disjoint answers) or delete only the found edges (overlapping answers
  allowed, the found structure itself suppressed).

Both return results in decreasing objective order and stop early when the
graph runs out of positive structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Set, Tuple

from repro.core.dcsad import DCSADResult, dcs_greedy
from repro.core.newsea import solve_all_initializations
from repro.engine.registry import BackendLike, PeelBackend
from repro.graph.graph import Graph, Vertex

RemovalStrategy = Literal["vertices", "edges"]


@dataclass(frozen=True)
class RankedDCS:
    """One of the top-k answers with its rank (0 = best)."""

    rank: int
    subset: Set[Vertex]
    objective: float
    embedding: Optional[Dict[Vertex, float]] = None


def top_k_dcsga(
    gd_plus: Graph,
    k: int,
    diversify: bool = True,
    tol_scale: float = 1e-2,
    backend: BackendLike = "python",
    adjacency=None,
) -> List[RankedDCS]:
    """Top-k positive-clique solutions by graph affinity.

    Runs SEACD+Refinement from every vertex (the paper's multi-solution
    configuration behind Table V / Fig. 3) and ranks the deduplicated
    solutions.  With *diversify*, supports are made pairwise disjoint by
    best-first selection, so each answer describes a different group.
    ``backend="sparse"`` runs every initialisation on the vectorised CSR
    solver over one shared adjacency; *adjacency* supplies that
    :class:`~repro.graph.sparse.CSRAdjacency` prebuilt (the batch layer
    shares one per graph fingerprint through
    :class:`~repro.engine.prepared.PreparedGraph`; the registry
    validates it centrally against non-CSR backends).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    result = solve_all_initializations(
        gd_plus, tol_scale=tol_scale, backend=backend, adjacency=adjacency
    )
    ranked: List[RankedDCS] = []
    used: Set[Vertex] = set()
    for support, x, objective in result.solutions:
        if diversify and support & used:
            continue
        ranked.append(
            RankedDCS(
                rank=len(ranked),
                subset=set(support),
                objective=objective,
                embedding=dict(x),
            )
        )
        used |= support
        if len(ranked) == k:
            break
    return ranked


def _remove_found(
    gd: Graph, subset: Set[Vertex], strategy: RemovalStrategy
) -> Tuple[Graph, int]:
    """Strip the found structure; return ``(residual, removed_count)``.

    *removed_count* is the number of vertices or edges actually deleted —
    the iteration's progress measure.  A round that removes nothing can
    never change the next round's answer, so the caller must stop
    instead of looping on (or raising over) a frozen residual.
    """
    stripped = gd.copy()
    if strategy == "vertices":
        removed = 0
        for vertex in subset:
            if stripped.has_vertex(vertex):
                stripped.remove_vertex(vertex)
                removed += 1
        return stripped, removed
    if strategy == "edges":
        removed = 0
        members = list(subset)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if stripped.discard_edge(u, v) is not None:
                    removed += 1
        return stripped, removed
    raise ValueError(f"unknown removal strategy {strategy!r}")


def top_k_dcsad(
    gd: Graph,
    k: int,
    strategy: RemovalStrategy = "vertices",
    min_objective: float = 0.0,
    backend: PeelBackend = "heap",
) -> List[RankedDCS]:
    """Top-k average-degree contrast subgraphs by iterated DCSGreedy.

    After each round the found structure is removed (*strategy*:
    ``"vertices"`` deletes the vertices — disjoint answers; ``"edges"``
    deletes only the induced edges — answers may share vertices).  The
    iteration stops early once the best remaining contrast drops to
    *min_objective* (default: only strictly positive answers).
    *backend* is the peeling backend of each DCSGreedy round
    (``"heap"``, ``"segment_tree"`` or ``"sparse"``).

    Termination is guaranteed for any *k* and *min_objective*: the loop
    stops cleanly (no exception, no repeated answers) as soon as the
    residual graph has no positive edge left, or as soon as a round
    fails to remove anything — with ``strategy="edges"`` an answer can
    re-surface structure whose induced edges are already gone, and such
    a round makes no progress.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if strategy not in ("vertices", "edges"):
        raise ValueError(f"unknown removal strategy {strategy!r}")
    ranked: List[RankedDCS] = []
    work = gd.copy()
    for rank in range(k):
        if work.num_vertices == 0:
            break
        heaviest = work.max_weight_edge()
        if heaviest is None or heaviest[2] <= 0:
            # The residual has no positive edge: every later round would
            # return the degenerate zero-contrast answer.  Stop cleanly.
            break
        result: DCSADResult = dcs_greedy(work, backend=backend)
        if result.density <= min_objective:
            break
        work, removed = _remove_found(work, result.subset, strategy)
        if removed == 0:
            break
        ranked.append(
            RankedDCS(
                rank=rank,
                subset=set(result.subset),
                objective=result.density,
            )
        )
    return ranked


def coverage(results: List[RankedDCS]) -> Set[Vertex]:
    """Union of all returned subsets (diagnostics)."""
    covered: Set[Vertex] = set()
    for item in results:
        covered |= item.subset
    return covered
