"""Top-k density contrast subgraphs (the paper's future-work extension).

Section VII: "our methods only mine one DCS with the greatest density
difference, how to mine multiple subgraphs with big density difference is
another interesting direction."  This module provides the two natural
constructions:

* :func:`top_k_dcsga` — for graph affinity, the all-initialisations
  driver already yields many deduplicated positive cliques; rank them.
  ``diversify=True`` additionally enforces disjoint supports greedily
  (best-first), the usual way to avoid near-duplicate answers.
* :func:`top_k_dcsad` — for average degree, iterate DCSGreedy with a
  *removal* strategy between rounds: either delete the found vertices
  (disjoint answers) or delete only the found edges (overlapping answers
  allowed, the found structure itself suppressed).

Both return results in decreasing objective order and stop early when the
graph runs out of positive structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Set, Tuple

from repro.core.dcsad import DCSADResult, dcs_greedy
from repro.core.newsea import solve_all_initializations
from repro.graph.graph import Graph, Vertex

RemovalStrategy = Literal["vertices", "edges"]


@dataclass(frozen=True)
class RankedDCS:
    """One of the top-k answers with its rank (0 = best)."""

    rank: int
    subset: Set[Vertex]
    objective: float
    embedding: Optional[Dict[Vertex, float]] = None


def top_k_dcsga(
    gd_plus: Graph,
    k: int,
    diversify: bool = True,
    tol_scale: float = 1e-2,
    backend: str = "python",
) -> List[RankedDCS]:
    """Top-k positive-clique solutions by graph affinity.

    Runs SEACD+Refinement from every vertex (the paper's multi-solution
    configuration behind Table V / Fig. 3) and ranks the deduplicated
    solutions.  With *diversify*, supports are made pairwise disjoint by
    best-first selection, so each answer describes a different group.
    ``backend="sparse"`` runs every initialisation on the vectorised CSR
    solver over one shared adjacency.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    result = solve_all_initializations(
        gd_plus, tol_scale=tol_scale, backend=backend
    )
    ranked: List[RankedDCS] = []
    used: Set[Vertex] = set()
    for support, x, objective in result.solutions:
        if diversify and support & used:
            continue
        ranked.append(
            RankedDCS(
                rank=len(ranked),
                subset=set(support),
                objective=objective,
                embedding=dict(x),
            )
        )
        used |= support
        if len(ranked) == k:
            break
    return ranked


def _remove_found(
    gd: Graph, subset: Set[Vertex], strategy: RemovalStrategy
) -> Graph:
    stripped = gd.copy()
    if strategy == "vertices":
        for vertex in subset:
            stripped.remove_vertex(vertex)
        return stripped
    if strategy == "edges":
        members = list(subset)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                stripped.discard_edge(u, v)
        return stripped
    raise ValueError(f"unknown removal strategy {strategy!r}")


def top_k_dcsad(
    gd: Graph,
    k: int,
    strategy: RemovalStrategy = "vertices",
    min_objective: float = 0.0,
    backend: str = "heap",
) -> List[RankedDCS]:
    """Top-k average-degree contrast subgraphs by iterated DCSGreedy.

    After each round the found structure is removed (*strategy*:
    ``"vertices"`` deletes the vertices — disjoint answers; ``"edges"``
    deletes only the induced edges — answers may share vertices).  The
    iteration stops early once the best remaining contrast drops to
    *min_objective* (default: only strictly positive answers).
    *backend* is the peeling backend of each DCSGreedy round
    (``"heap"``, ``"segment_tree"`` or ``"sparse"``).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    ranked: List[RankedDCS] = []
    work = gd.copy()
    for rank in range(k):
        if work.num_vertices == 0:
            break
        heaviest = work.max_weight_edge()
        if heaviest is None or heaviest[2] <= 0:
            break
        result: DCSADResult = dcs_greedy(work, backend=backend)
        if result.density <= min_objective:
            break
        ranked.append(
            RankedDCS(
                rank=rank,
                subset=set(result.subset),
                objective=result.density,
            )
        )
        work = _remove_found(work, result.subset, strategy)
    return ranked


def coverage(results: List[RankedDCS]) -> Set[Vertex]:
    """Union of all returned subsets (diagnostics)."""
    covered: Set[Vertex] = set()
    for item in results:
        covered |= item.subset
    return covered
