"""The SEA expansion operation (Section V-B / Appendix A).

After the shrink stage reaches a local KKT point ``x`` on ``S``, the
expansion stage looks for vertices whose gradient exceeds
``lambda = 2 f(x)``:

    ``Z = {i : grad_i f(x) > lambda}``

and pushes mass toward them along the direction ``b`` with
``b_i = -x_i s`` on the support and ``b_i = gamma_i`` on ``Z``, where
``gamma_i = (Dx)_i - f(x)``.  The step size ``tau`` maximising
``f(x + tau b)`` is analytic.

Note on the algebra: with ``s = sum gamma``, ``zeta = sum gamma^2`` and
``omega = sum_{i,j in Z} gamma_i gamma_j D(i,j)``,

    ``f(x + tau b) - f(x) = -(f s^2 + 2 s zeta - omega) tau^2 + 2 zeta tau``

so ``tau* = 1/s`` when ``a = f s^2 + 2 s zeta - omega <= 0`` and
``min(1/s, zeta/a)`` otherwise.  The paper's printed formula carries two
sign typos (its literal form could never increase ``f``); the test suite
checks the identity above symbolically against dense matrix evaluation.

The same operation serves both SEACD (:mod:`repro.core.seacd`) and the
original-SEA baseline (:mod:`repro.affinity.sea`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.graph.graph import Graph, Vertex

#: Entries below this after an expansion step are treated as exact zeros.
PRUNE_EPS = 1e-15


@dataclass(frozen=True)
class ExpansionStep:
    """Result of one expansion: the new iterate and bookkeeping.

    ``expanded`` is False when ``Z`` was empty (global KKT reached).
    ``objective_before``/``objective_after`` let callers detect
    *expansion errors* — the paper's term for an expansion that decreases
    the objective because the shrink stage had not actually reached a
    local KKT point (Section V-C).
    """

    x: Dict[Vertex, float]
    expanded: bool
    z_size: int
    objective_before: float
    objective_after: float

    @property
    def decreased(self) -> bool:
        """Whether this step lowered the objective (an expansion error)."""
        tolerance = 1e-12 * max(1.0, abs(self.objective_before))
        return self.expanded and (
            self.objective_after < self.objective_before - tolerance
        )


def candidate_frontier(graph: Graph, support: Set[Vertex]) -> Set[Vertex]:
    """Vertices outside *support* with at least one neighbour inside.

    Only these can have a positive gradient, so the expansion test is
    restricted to them — the ``sum_{v in S} |N_D(v)|`` cost quoted in the
    paper.
    """
    frontier: Set[Vertex] = set()
    for u in support:
        frontier.update(graph.neighbors(u))
    frontier -= support
    return frontier


def expansion_step(
    graph: Graph,
    x: Dict[Vertex, float],
    objective: Optional[float] = None,
    strict_tol: float = 1e-12,
    lambda_mode: str = "objective",
) -> ExpansionStep:
    """Apply one SEA expansion to *x* on *graph*.

    Parameters
    ----------
    graph:
        The graph whose affinity is being maximised (``GD+`` in the
        solvers; the operation itself works for signed graphs too).
    x:
        Current embedding ``{vertex: weight}``; not mutated.
    objective:
        ``f(x)`` if the caller already knows it (saves a pass).
    strict_tol:
        Relative slack for the strict inequality defining ``Z`` — guards
        against re-adding vertices whose gradient equals ``lambda`` up to
        rounding.
    lambda_mode:
        How the KKT multiplier estimate ``lambda_bar`` (half of
        ``lambda``) entering ``gamma`` and ``tau`` is obtained:

        * ``"objective"`` — ``lambda_bar = f(x)`` exactly.  With this
          choice the step is an ascent direction *unconditionally* (the
          improvement identity ``-a tau^2 + 2 zeta tau`` holds without
          any KKT premise), which is what SEACD uses.
        * ``"min_support_gradient"`` — ``lambda_bar = min (Dx)_u`` over
          the support vertices carrying non-negligible mass (entries
          still decaying toward zero are treated as already pruned, as
          replicator implementations do).  This is the original SEA's
          premise that every support gradient equals ``lambda``.  At an
          exact local KKT point the two modes coincide; when the loose
          shrink condition stops early, the minimum *underestimates*
          ``f`` (``f`` is the x-weighted mean of support gradients),
          ``Z`` absorbs vertices worse than the current mix and the step
          can **decrease** the objective — the paper's "errors in
          Expansion" (Section V-C, Table VII, Fig. 2b).
    """
    support = {u for u, w in x.items() if w > 0.0}
    if objective is None:
        objective = _affinity(graph, x)

    if lambda_mode == "objective":
        lambda_bar = objective
    elif lambda_mode == "min_support_gradient":
        mass_floor = 0.1 * max(x.values())
        core = [u for u, w in x.items() if w >= mass_floor]
        lambda_bar = min(_dx(graph, x, u) for u in core)
    else:
        raise ValueError(f"unknown lambda_mode {lambda_mode!r}")
    threshold = lambda_bar + strict_tol * max(1.0, abs(lambda_bar))

    gamma: Dict[Vertex, float] = {}
    for candidate in candidate_frontier(graph, support):
        dx_value = _dx(graph, x, candidate)
        if dx_value > threshold:
            gamma[candidate] = dx_value - lambda_bar

    if not gamma:
        return ExpansionStep(
            x=dict(x),
            expanded=False,
            z_size=0,
            objective_before=objective,
            objective_after=objective,
        )

    s = sum(gamma.values())
    zeta = sum(value * value for value in gamma.values())
    omega = 0.0
    for i, gi in gamma.items():
        for j, weight in graph.neighbors(i).items():
            gj = gamma.get(j)
            if gj is not None:
                omega += gi * gj * weight

    a = lambda_bar * s * s + 2.0 * s * zeta - omega
    if a <= 0.0:
        tau = 1.0 / s
    else:
        tau = min(1.0 / s, zeta / a)

    shrink_factor = 1.0 - tau * s
    new_x: Dict[Vertex, float] = {}
    if shrink_factor > PRUNE_EPS:
        for u, w in x.items():
            value = w * shrink_factor
            if value > PRUNE_EPS:
                new_x[u] = value
    for i, gi in gamma.items():
        value = tau * gi
        if value > PRUNE_EPS:
            new_x[i] = value

    # Renormalise away accumulated rounding (the step preserves the sum
    # analytically: (1 - tau s) + tau s = 1).
    total = sum(new_x.values())
    if total > 0 and abs(total - 1.0) > 1e-12:
        for u in new_x:
            new_x[u] /= total

    return ExpansionStep(
        x=new_x,
        expanded=True,
        z_size=len(gamma),
        objective_before=objective,
        objective_after=_affinity(graph, new_x),
    )


def _dx(graph: Graph, x: Dict[Vertex, float], vertex: Vertex) -> float:
    total = 0.0
    for neighbor, weight in graph.neighbors(vertex).items():
        xv = x.get(neighbor)
        if xv is not None:
            total += weight * xv
    return total


def _affinity(graph: Graph, x: Dict[Vertex, float]) -> float:
    total = 0.0
    for u, xu in x.items():
        for v, weight in graph.neighbors(u).items():
            xv = x.get(v)
            if xv is not None:
                total += xu * xv * weight
    return total
