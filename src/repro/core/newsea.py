"""NewSEA — the full DCSGA pipeline (Algorithm 5), plus all-init drivers.

``new_sea`` runs the paper's Algorithm 5: compute the smart-initialisation
bounds ``mu_u``, try vertices in decreasing ``mu_u`` order, run SEACD then
Refinement from each, and stop as soon as the next bound cannot beat the
best objective found.

``solve_all_initializations`` is the *SEACD+Refine* configuration
(initialise from **every** vertex), which the paper uses both as the
no-heuristic ablation in Table VII and as the multi-solution miner behind
Table V (top-k topics) and Fig. 3 (clique census).  It accepts a custom
per-vertex solver so the original-SEA baseline
(:mod:`repro.affinity.sea`) can reuse the same driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.initialization import InitializationPlan, smart_initialization_plan
from repro.core.refinement import refine
from repro.core.seacd import seacd
from repro.engine.registry import BackendLike, resolve_backend
from repro.graph.cliques import is_clique, remove_subsumed_cliques
from repro.graph.graph import Graph, Vertex

#: A per-vertex solver: ``(graph, vertex) -> (embedding, objective, errors)``
#: where *errors* counts expansion errors observed during the run.
VertexSolver = Callable[[Graph, Vertex], Tuple[Dict[Vertex, float], float, int]]


@dataclass
class DCSGAResult:
    """Best affinity-contrast solution found by a DCSGA pipeline.

    ``objective`` is ``f(x) = x^T D x`` evaluated on the graph the solver
    ran on (``GD+``; equal to the value in ``GD`` whenever the support is
    a positive clique, which Refinement guarantees).
    """

    x: Dict[Vertex, float]
    objective: float
    support: Set[Vertex]
    is_positive_clique: bool
    initializations: int
    expansion_errors: int = 0
    #: `mu` bound of the first skipped vertex (None if none skipped)
    pruned_at_bound: Optional[float] = None


@dataclass
class AllInitsResult:
    """Every deduplicated solution from an all-vertex initialisation run."""

    best: DCSGAResult
    #: deduplicated (support, representative embedding, objective),
    #: sorted by decreasing objective
    solutions: List[Tuple[Set[Vertex], Dict[Vertex, float], float]]
    initializations: int
    expansion_errors: int


def _default_solver(tol_scale: float, max_expansions: int) -> VertexSolver:
    def solve(graph: Graph, vertex: Vertex) -> Tuple[Dict[Vertex, float], float, int]:
        result = seacd(
            graph,
            {vertex: 1.0},
            tol_scale=tol_scale,
            max_expansions=max_expansions,
        )
        refined = refine(graph, result.x, tol_scale=tol_scale)
        return refined.x, refined.objective, result.stats.expansion_errors

    return solve


def new_sea(
    gd_plus: Graph,
    tol_scale: float = 1e-2,
    max_expansions: int = 10_000,
    plan: Optional[InitializationPlan] = None,
    backend: BackendLike = "python",
    adjacency=None,
) -> DCSGAResult:
    """Algorithm 5 on the positive part ``GD+`` of a difference graph.

    Build ``gd_plus`` with :func:`repro.core.difference.positive_part`
    (or ``Graph.positive_part()``); Theorem 5 justifies discarding
    negative edges because the Refinement step always lands on a positive
    clique, on which ``f_{D+} = f_D``.

    *backend* is resolved through the engine registry: ``"python"`` is
    the dict-of-dicts reference, ``"sparse"`` the vectorised CSR
    pipeline (:func:`repro.core.sparse_solvers.new_sea_csr`) — same
    algorithm and convergence rules, one CSR build shared across all
    initialisations, and the ``mu_u`` bounds evaluated in a single
    vectorised pass.  *adjacency* (CSR-capable backends only — the
    registry validates centrally) supplies a prebuilt
    :class:`~repro.graph.sparse.CSRAdjacency` of ``gd_plus`` so callers
    running many queries on one graph — the batch layer, through
    :class:`~repro.engine.prepared.PreparedGraph` — skip even that
    single CSR build.
    """
    if gd_plus.num_vertices == 0:
        raise ValueError("graph has no vertices")
    for _, _, weight in gd_plus.edges():
        if weight <= 0:
            raise ValueError(
                "new_sea expects GD+ (positive weights only); "
                "call positive_part() first"
            )
    solver_backend = resolve_backend(backend)
    solver_backend.check_adjacency(adjacency)
    return solver_backend.new_sea(
        gd_plus,
        tol_scale=tol_scale,
        max_expansions=max_expansions,
        plan=plan,
        adjacency=adjacency,
    )


def _new_sea_python(
    gd_plus: Graph,
    tol_scale: float = 1e-2,
    max_expansions: int = 10_000,
    plan: Optional[InitializationPlan] = None,
) -> DCSGAResult:
    """The reference implementation behind the ``python`` backend."""
    if plan is None:
        plan = smart_initialization_plan(gd_plus)
    solver = _default_solver(tol_scale, max_expansions)

    best_x: Optional[Dict[Vertex, float]] = None
    best_objective = 0.0
    initializations = 0
    errors = 0
    pruned_at: Optional[float] = None
    for vertex in plan.order:
        bound = plan.mu[vertex]
        if bound <= best_objective:
            # Sorted descending: nothing later can beat the incumbent.
            pruned_at = bound
            break
        x, objective, run_errors = solver(gd_plus, vertex)
        errors += run_errors
        initializations += 1
        if objective > best_objective or best_x is None:
            best_x, best_objective = x, objective

    if best_x is None:
        # Edgeless GD+ (mu == 0 everywhere): a single vertex is optimal.
        vertex = min(gd_plus.vertices(), key=repr)
        best_x, best_objective = {vertex: 1.0}, 0.0

    return DCSGAResult(
        x=best_x,
        objective=best_objective,
        support={u for u, w in best_x.items() if w > 0.0},
        is_positive_clique=is_clique(gd_plus, best_x),
        initializations=initializations,
        expansion_errors=errors,
        pruned_at_bound=pruned_at,
    )


def solve_all_initializations(
    gd_plus: Graph,
    solver: Optional[VertexSolver] = None,
    tol_scale: float = 1e-2,
    max_expansions: int = 10_000,
    vertices: Optional[Sequence[Vertex]] = None,
    drop_subsumed: bool = True,
    backend: BackendLike = "python",
    adjacency=None,
) -> AllInitsResult:
    """Initialise from every vertex; collect all deduplicated solutions.

    This is *SEACD+Refine* when *solver* is None, and *SEA+Refine* when
    the caller passes :func:`repro.affinity.sea.sea_refine_solver`.
    With no explicit *solver* the per-vertex SEACD+Refine closure comes
    from the registry backend (``"sparse"`` runs the vectorised CSR
    kernels, building the CSR adjacency once for all initialisations).

    The returned ``solutions`` follow the paper's Table V / Fig. 3
    post-processing: duplicates removed and (optionally) supports that
    are subsets of other found supports dropped.
    """
    if solver is None:
        solver_backend = resolve_backend(backend)
        solver_backend.check_adjacency(adjacency)
        solver = solver_backend.vertex_solver(
            gd_plus,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            adjacency=adjacency,
        )
    elif adjacency is not None:
        raise ValueError(
            "adjacency is unused when a custom solver is supplied"
        )
    pool = list(vertices) if vertices is not None else sorted(
        gd_plus.vertices(), key=repr
    )
    if not pool:
        raise ValueError("graph has no vertices")

    by_support: Dict[frozenset, Tuple[Dict[Vertex, float], float]] = {}
    errors = 0
    for vertex in pool:
        x, objective, run_errors = solver(gd_plus, vertex)
        errors += run_errors
        support = frozenset(u for u, w in x.items() if w > 0.0)
        if not support:
            continue
        incumbent = by_support.get(support)
        if incumbent is None or objective > incumbent[1]:
            by_support[support] = (x, objective)

    if not by_support:
        vertex = pool[0]
        by_support[frozenset({vertex})] = ({vertex: 1.0}, 0.0)

    if drop_subsumed:
        kept_supports = remove_subsumed_cliques(by_support)
        kept_keys = {frozenset(s) for s in kept_supports}
    else:
        kept_keys = set(by_support)

    solutions = sorted(
        (
            (set(support), x, objective)
            for support, (x, objective) in by_support.items()
            if support in kept_keys
        ),
        key=lambda item: -item[2],
    )

    best_support, best_x, best_objective = solutions[0]
    best = DCSGAResult(
        x=best_x,
        objective=best_objective,
        support=set(best_support),
        is_positive_clique=is_clique(gd_plus, best_support),
        initializations=len(pool),
        expansion_errors=errors,
    )
    return AllInitsResult(
        best=best,
        solutions=solutions,
        initializations=len(pool),
        expansion_errors=errors,
    )
