"""Numba-compiled kernels over raw CSR arrays — the ``native`` backend core.

The sparse backend (:mod:`repro.core.sparse_solvers`) vectorised the
solvers, but its hottest loop — 2-coordinate descent — still takes one
Python-interpreted trip per *pair move* (an argmax, an argmin, a pair
solve, two row axpys: ~6 NumPy calls of a few microseconds each,
tens of thousands of times per NewSEA run).  The kernels here compile
exactly those loops with Numba ``@njit(cache=True)``, operating directly
on the flat ``indptr``/``indices``/``data`` arrays of a frozen
:class:`~repro.graph.sparse.CSRAdjacency`:

* :func:`_cd_dense_kernel` / :func:`_cd_csr_kernel` — the 2-coordinate
  shrink loop (dense induced block under
  :data:`~repro.core.sparse_solvers.DENSE_SUPPORT_LIMIT`, CSR row
  updates above it);
* :func:`_dense_block_kernel` — the induced-block gather (a Python row
  loop in :meth:`CSRAdjacency.dense_block`);
* :func:`_peel_kernel` — Algorithm 1 greedy peeling with a faithful
  replica of CPython's lazy binary heap;
* :func:`_replicator_kernel` — replicator dynamics, matvec included.

**Parity contract.**  Each kernel replays the float operations of its
sparse counterpart *in the same order* — first-occurrence argmax/argmin
scans, the same inlined ``_best_pair_move`` candidate order, two
separate row axpys, sequential per-row matvec accumulation (what
SciPy's C ``csr_matvec`` does) — so the compiled coordinate-descent
trajectory is bitwise identical to ``coordinate_descent_csr`` and the
peel pop order is bitwise identical to ``_peel_sparse``.  The only
tolerated divergence is NumPy's pairwise summation in a handful of
*reductions* (``removed.sum()``, BLAS dots), which can move density
low bits without affecting selections; the differential test tier pins
all of this down.

**Lazy, gated, and testable without Numba.**  Numba is imported inside
:func:`get_kernels` only; its absence leaves every existing backend
untouched (:func:`numba_available` is how the ``native`` backend gates
itself).  Because the kernels are written as plain loop-nest Python
(no closures, no object mode), ``get_kernels(jit=False)`` returns the
*same* functions uncompiled — the differential suite exercises the
real kernel bodies on interpreters with no Numba installed.

**Warm once per process.**  JIT compilation costs seconds; long-lived
hosts (batch pool workers, ``repro serve``) call :func:`warm_kernels`
from their initializers so no query pays it.  :func:`kernel_build_count`
exposes the build counter the regression tests pin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import BackendUnavailableError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.affinity.replicator import ReplicatorResult
    from repro.graph.graph import Graph
    from repro.graph.sparse import CSRAdjacency
    from repro.peeling.greedy import PeelResult


# ----------------------------------------------------------------------
# availability
# ----------------------------------------------------------------------
_NUMBA_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """Whether Numba imports here (checked lazily, cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:  # pragma: no cover - depends on the environment
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except ImportError:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


# ----------------------------------------------------------------------
# kernel bodies (plain Python, njit-compilable as-is)
# ----------------------------------------------------------------------
def _cd_dense_kernel(
    xm: np.ndarray,
    dxm: np.ndarray,
    block: np.ndarray,
    tol: float,
    max_iterations: int,
) -> Tuple[int, bool]:
    """The 2-coordinate-descent loop on a dense induced block.

    Mutates ``xm``/``dxm`` in place; returns ``(iterations, converged)``.
    Every selection and update replays ``coordinate_descent_csr``'s
    dense path operation-for-operation (first-max argmax, first-min
    argmin, the endpoint-first pair-move candidates, two separate row
    axpys), so the iterates are bitwise identical.
    """
    size = xm.shape[0]
    iterations = 0
    converged = False
    while iterations < max_iterations:
        xm_max = xm[0]
        for k in range(1, size):
            if xm[k] > xm_max:
                xm_max = xm[k]
        if xm_max < 1.0:
            i = 0
            best = dxm[0]
            for k in range(1, size):
                if dxm[k] > best:
                    best = dxm[k]
                    i = k
        else:
            i = 0
            best = -np.inf
            for k in range(size):
                value = dxm[k] if xm[k] < 1.0 else -np.inf
                if value > best:
                    best = value
                    i = k
        j = 0
        worst = np.inf
        for k in range(size):
            value = dxm[k] if xm[k] > 0.0 else np.inf
            if value < worst:
                worst = value
                j = k
        dx_i = dxm[i]
        dx_j = dxm[j]
        if 2.0 * (dx_i - dx_j) <= tol:
            converged = True
            break

        xi = xm[i]
        xj = xm[j]
        c_total = xi + xj
        d_ij = block[i, j]
        b_i = dx_i - d_ij * xj
        b_j = dx_j - d_ij * xi
        # _best_pair_move inlined: endpoints first, then the stationary
        # point of the concave quadratic; strict > keeps the first best
        # (== max(candidates, key=g)).
        xi_new = 0.0
        best_score = (
            b_i * 0.0 + b_j * (c_total - 0.0) + d_ij * 0.0 * (c_total - 0.0)
        )
        score = (
            b_i * c_total
            + b_j * (c_total - c_total)
            + d_ij * c_total * (c_total - c_total)
        )
        if score > best_score:
            best_score = score
            xi_new = c_total
        if d_ij > 0.0:
            stationary = (d_ij * c_total + b_i - b_j) / (2.0 * d_ij)
            if 0.0 < stationary < c_total:
                score = (
                    b_i * stationary
                    + b_j * (c_total - stationary)
                    + d_ij * stationary * (c_total - stationary)
                )
                if score > best_score:
                    best_score = score
                    xi_new = stationary
        xj_new = c_total - xi_new

        delta_i = xi_new - xi
        delta_j = xj_new - xj
        if delta_i == 0.0:
            converged = True
            break

        xm[i] = xi_new if xi_new > 0.0 else 0.0
        xm[j] = xj_new if xj_new > 0.0 else 0.0
        for k in range(size):
            dxm[k] = dxm[k] + block[i, k] * delta_i
        if delta_j != 0.0:
            for k in range(size):
                dxm[k] = dxm[k] + block[j, k] * delta_j
        iterations += 1
    return iterations, converged


def _cd_csr_kernel(
    xm: np.ndarray,
    dxm: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    tol: float,
    max_iterations: int,
) -> Tuple[int, bool]:
    """The 2-coordinate-descent loop on a local CSR submatrix.

    The large-support path (> ``DENSE_SUPPORT_LIMIT``): ``d_ij`` by
    binary search in row ``i`` (``np.searchsorted`` replica) and O(deg)
    row updates, matching ``coordinate_descent_csr``'s CSR branch.
    """
    size = xm.shape[0]
    iterations = 0
    converged = False
    while iterations < max_iterations:
        xm_max = xm[0]
        for k in range(1, size):
            if xm[k] > xm_max:
                xm_max = xm[k]
        if xm_max < 1.0:
            i = 0
            best = dxm[0]
            for k in range(1, size):
                if dxm[k] > best:
                    best = dxm[k]
                    i = k
        else:
            i = 0
            best = -np.inf
            for k in range(size):
                value = dxm[k] if xm[k] < 1.0 else -np.inf
                if value > best:
                    best = value
                    i = k
        j = 0
        worst = np.inf
        for k in range(size):
            value = dxm[k] if xm[k] > 0.0 else np.inf
            if value < worst:
                worst = value
                j = k
        dx_i = dxm[i]
        dx_j = dxm[j]
        if 2.0 * (dx_i - dx_j) <= tol:
            converged = True
            break

        xi = xm[i]
        xj = xm[j]
        c_total = xi + xj
        row_start = indptr[i]
        row_end = indptr[i + 1]
        lo = row_start
        hi = row_end
        while lo < hi:
            mid = (lo + hi) // 2
            if indices[mid] < j:
                lo = mid + 1
            else:
                hi = mid
        if lo < row_end and indices[lo] == j:
            d_ij = data[lo]
        else:
            d_ij = 0.0
        b_i = dx_i - d_ij * xj
        b_j = dx_j - d_ij * xi
        xi_new = 0.0
        best_score = (
            b_i * 0.0 + b_j * (c_total - 0.0) + d_ij * 0.0 * (c_total - 0.0)
        )
        score = (
            b_i * c_total
            + b_j * (c_total - c_total)
            + d_ij * c_total * (c_total - c_total)
        )
        if score > best_score:
            best_score = score
            xi_new = c_total
        if d_ij > 0.0:
            stationary = (d_ij * c_total + b_i - b_j) / (2.0 * d_ij)
            if 0.0 < stationary < c_total:
                score = (
                    b_i * stationary
                    + b_j * (c_total - stationary)
                    + d_ij * stationary * (c_total - stationary)
                )
                if score > best_score:
                    best_score = score
                    xi_new = stationary
        xj_new = c_total - xi_new

        delta_i = xi_new - xi
        delta_j = xj_new - xj
        if delta_i == 0.0:
            converged = True
            break

        xm[i] = xi_new if xi_new > 0.0 else 0.0
        xm[j] = xj_new if xj_new > 0.0 else 0.0
        for idx in range(indptr[i], indptr[i + 1]):
            dxm[indices[idx]] += data[idx] * delta_i
        if delta_j != 0.0:
            for idx in range(indptr[j], indptr[j + 1]):
                dxm[indices[idx]] += data[idx] * delta_j
        iterations += 1
    return iterations, converged


def _dense_block_kernel(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    rows: np.ndarray,
    local_of: np.ndarray,
    block: np.ndarray,
) -> None:
    """Gather the induced block ``D[rows][:, rows]`` into *block*.

    *local_of* maps global vertex -> local column (−1 outside); pure
    scatter, so the values match :meth:`CSRAdjacency.dense_block`
    bit-for-bit.
    """
    for local_row in range(rows.shape[0]):
        global_row = rows[local_row]
        for idx in range(indptr[global_row], indptr[global_row + 1]):
            local_col = local_of[indices[idx]]
            if local_col >= 0:
                block[local_row, local_col] = data[idx]


def _peel_kernel(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    degrees: np.ndarray,
    total_degree: float,
    order_out: np.ndarray,
    densities_out: np.ndarray,
) -> int:
    """Algorithm 1 greedy peel over raw CSR arrays.

    A faithful replica of ``_peel_sparse``: the priority queue is a
    lazy binary heap whose sift operations copy CPython's ``heapq``
    exactly (inlined — Numba caching forbids closures), entries compare
    as ``(key, vertex)`` tuples, and a popped entry is stale unless its
    key equals the vertex's current degree.  Writes the removal order
    and the density profile; returns 0 (outputs carry the result).
    """
    n = degrees.shape[0]
    capacity = n + indices.shape[0] + 1
    heap_keys = np.empty(capacity, dtype=np.float64)
    heap_verts = np.empty(capacity, dtype=np.int64)
    alive = np.ones(n, dtype=np.bool_)
    for i in range(n):
        heap_keys[i] = degrees[i]
        heap_verts[i] = i
    heap_size = n

    # heapq.heapify: _siftup(x, i) for i in reversed(range(n // 2)).
    for start in range(n // 2 - 1, -1, -1):
        pos = start
        new_key = heap_keys[pos]
        new_vert = heap_verts[pos]
        child = 2 * pos + 1
        while child < heap_size:
            right = child + 1
            if right < heap_size:
                if not (
                    heap_keys[child] < heap_keys[right]
                    or (
                        heap_keys[child] == heap_keys[right]
                        and heap_verts[child] < heap_verts[right]
                    )
                ):
                    child = right
            heap_keys[pos] = heap_keys[child]
            heap_verts[pos] = heap_verts[child]
            pos = child
            child = 2 * pos + 1
        heap_keys[pos] = new_key
        heap_verts[pos] = new_vert
        while pos > start:
            parent = (pos - 1) >> 1
            if new_key < heap_keys[parent] or (
                new_key == heap_keys[parent]
                and new_vert < heap_verts[parent]
            ):
                heap_keys[pos] = heap_keys[parent]
                heap_verts[pos] = heap_verts[parent]
                pos = parent
            else:
                break
        heap_keys[pos] = new_key
        heap_verts[pos] = new_vert

    size = n
    out_pos = 0
    densities_out[0] = total_degree / size
    dens_pos = 1
    while size > 0:
        # pop_min: heappop replica + lazy staleness check.
        vertex = -1
        while True:
            heap_size -= 1
            last_key = heap_keys[heap_size]
            last_vert = heap_verts[heap_size]
            if heap_size > 0:
                key = heap_keys[0]
                vert = heap_verts[0]
                heap_keys[0] = last_key
                heap_verts[0] = last_vert
                pos = 0
                child = 1
                while child < heap_size:
                    right = child + 1
                    if right < heap_size:
                        if not (
                            heap_keys[child] < heap_keys[right]
                            or (
                                heap_keys[child] == heap_keys[right]
                                and heap_verts[child] < heap_verts[right]
                            )
                        ):
                            child = right
                    heap_keys[pos] = heap_keys[child]
                    heap_verts[pos] = heap_verts[child]
                    pos = child
                    child = 2 * pos + 1
                heap_keys[pos] = last_key
                heap_verts[pos] = last_vert
                while pos > 0:
                    parent = (pos - 1) >> 1
                    if last_key < heap_keys[parent] or (
                        last_key == heap_keys[parent]
                        and last_vert < heap_verts[parent]
                    ):
                        heap_keys[pos] = heap_keys[parent]
                        heap_verts[pos] = heap_verts[parent]
                        pos = parent
                    else:
                        break
                heap_keys[pos] = last_key
                heap_verts[pos] = last_vert
            else:
                key = last_key
                vert = last_vert
            if alive[vert] and key == degrees[vert]:
                vertex = vert
                break
        if size == 1:
            # The last vertex (density 0 on its own) completes the order.
            order_out[out_pos] = vertex
            break
        alive[vertex] = False
        order_out[out_pos] = vertex
        out_pos += 1
        removed = 0.0
        for idx in range(indptr[vertex], indptr[vertex + 1]):
            neighbor = indices[idx]
            if alive[neighbor]:
                weight = data[idx]
                degrees[neighbor] -= weight
                removed += weight
                # heappush replica: append then _siftdown(0, pos).
                pos = heap_size
                push_key = degrees[neighbor]
                heap_size += 1
                while pos > 0:
                    parent = (pos - 1) >> 1
                    if push_key < heap_keys[parent] or (
                        push_key == heap_keys[parent]
                        and neighbor < heap_verts[parent]
                    ):
                        heap_keys[pos] = heap_keys[parent]
                        heap_verts[pos] = heap_verts[parent]
                        pos = parent
                    else:
                        break
                heap_keys[pos] = push_key
                heap_verts[pos] = neighbor
        # Each removed undirected edge contributes twice to the total
        # degree: once at each endpoint.
        total_degree -= 2.0 * removed
        size -= 1
        densities_out[dens_pos] = total_degree / size
        dens_pos += 1
    return 0


def _replicator_kernel(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
    gradient_rule: bool,
    tol: float,
    max_iterations: int,
    prune_eps: float,
) -> Tuple[int, bool, float, int]:
    """Replicator dynamics (Eq. 12), matvec and all, over CSR arrays.

    Mirrors ``_replicator_sparse`` — same convergence rules, pruning
    threshold and renormalisation guard, with sequential per-row matvec
    accumulation (SciPy's own C order).  Mutates *x*; returns
    ``(iterations, converged, objective, status)`` where status 1 means
    a negative gradient was seen (the caller raises the ValueError).
    """
    n = x.shape[0]
    dx = np.empty(n, dtype=np.float64)
    new_x = np.empty(n, dtype=np.float64)
    for i in range(n):
        acc = 0.0
        for idx in range(indptr[i], indptr[i + 1]):
            acc += data[idx] * x[indices[idx]]
        dx[i] = acc
    objective = 0.0
    for i in range(n):
        objective += x[i] * dx[i]

    iterations = 0
    converged = False
    while iterations < max_iterations:
        if objective <= 0.0:
            # f == 0: single vertex or edgeless support — trivially KKT.
            converged = True
            break
        grad_max = -np.inf
        grad_min = np.inf
        negative = False
        for i in range(n):
            if x[i] > 0.0:
                value = dx[i]
                if value > grad_max:
                    grad_max = value
                if value < grad_min:
                    grad_min = value
                if value < 0.0:
                    negative = True
        if gradient_rule and 2.0 * (grad_max - grad_min) <= tol:
            converged = True
            break
        if negative:
            return iterations, converged, objective, 1

        any_positive = False
        for i in range(n):
            if x[i] > 0.0:
                value = x[i] * dx[i] / objective
                if value <= prune_eps:
                    value = 0.0
                else:
                    any_positive = True
                new_x[i] = value
            else:
                new_x[i] = 0.0
        if not any_positive:
            # All mass decayed (possible only with zero gradients).
            converged = True
            break
        total = 0.0
        for i in range(n):
            total += new_x[i]
        if abs(total - 1.0) > 1e-15:
            for i in range(n):
                new_x[i] /= total

        for i in range(n):
            acc = 0.0
            for idx in range(indptr[i], indptr[i + 1]):
                acc += data[idx] * new_x[indices[idx]]
            dx[i] = acc
        new_objective = 0.0
        for i in range(n):
            new_objective += new_x[i] * dx[i]
        iterations += 1
        improvement = new_objective - objective
        for i in range(n):
            x[i] = new_x[i]
        objective = new_objective
        if (not gradient_rule) and improvement < tol:
            converged = True
            break

    return iterations, converged, objective, 0


#: name -> uncompiled kernel body; a :class:`KernelSet` binds the
#: compiled (or interpreted) form of each.
_KERNEL_BODIES: Dict[str, Callable[..., Any]] = {
    "cd_dense": _cd_dense_kernel,
    "cd_csr": _cd_csr_kernel,
    "dense_block": _dense_block_kernel,
    "peel": _peel_kernel,
    "replicator": _replicator_kernel,
}


# ----------------------------------------------------------------------
# kernel set: build, cache, warm
# ----------------------------------------------------------------------
class KernelSet:
    """One bound set of kernels (compiled with Numba, or interpreted)
    plus the high-level wrappers the ``native`` backend calls.

    :meth:`coordinate_descent` is a drop-in for
    :func:`~repro.core.sparse_solvers.coordinate_descent_csr` (the
    ``cd=`` seam of the sparse orchestration), :meth:`peel` for
    ``_peel_sparse`` and :meth:`replicator` for ``_replicator_sparse``.
    """

    def __init__(self, jit: bool, kernels: Dict[str, Callable[..., Any]]) -> None:
        self.jit = jit
        self.cd_dense = kernels["cd_dense"]
        self.cd_csr = kernels["cd_csr"]
        self.dense_block_kernel = kernels["dense_block"]
        self.peel_kernel = kernels["peel"]
        self.replicator_kernel = kernels["replicator"]
        self.warmed = False

    def __repr__(self) -> str:
        return f"<KernelSet jit={self.jit} warmed={self.warmed}>"

    # -- induced block -------------------------------------------------
    def dense_block(self, adj: "CSRAdjacency", rows: np.ndarray) -> np.ndarray:
        """``D[rows][:, rows]`` dense, via the compiled gather."""
        size = int(rows.size)
        local_of = np.full(adj.n, -1, dtype=np.int64)
        local_of[rows] = np.arange(size)
        block = np.zeros((size, size), dtype=np.float64)
        self.dense_block_kernel(
            adj.indptr, adj.indices, adj.data, rows, local_of, block
        )
        return block

    # -- 2-coordinate descent (the cd= seam) ---------------------------
    def coordinate_descent(
        self,
        adj: "CSRAdjacency",
        x: np.ndarray,
        members: np.ndarray,
        tol: float,
        max_iterations: int = 100_000,
        need_dx: bool = True,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], float, int, bool]:
        """Drop-in for ``coordinate_descent_csr`` with a compiled loop."""
        from repro.core.sparse_solvers import DENSE_SUPPORT_LIMIT

        size = int(members.size)
        if size == 1:
            # Singleton support: trivially a local KKT point.
            return x, adj.matvec(x) if need_dx else None, 0.0, 0, True

        xm = x[members]
        if size <= DENSE_SUPPORT_LIMIT:
            block = self.dense_block(adj, members)
            dxm = block @ xm
            iterations, converged = self.cd_dense(
                xm, dxm, block, float(tol), max_iterations
            )
        else:
            local = adj.submatrix(members)
            dxm = local @ xm
            iterations, converged = self.cd_csr(
                xm,
                dxm,
                local.indptr,
                local.indices,
                local.data,
                float(tol),
                max_iterations,
            )
        x[members] = xm
        objective = float(xm @ dxm)
        dx = adj.matvec(x) if need_dx else None
        return x, dx, objective, int(iterations), bool(converged)

    # -- greedy peel ---------------------------------------------------
    def peel(
        self, graph: "Graph", adjacency: Optional["CSRAdjacency"] = None
    ) -> "PeelResult":
        """Algorithm 1 through the compiled heap loop."""
        from repro.exceptions import InputMismatchError
        from repro.graph.sparse import CSRAdjacency
        from repro.peeling.greedy import PeelResult

        if adjacency is not None:
            if (
                adjacency.n != graph.num_vertices
                or adjacency.num_edges != graph.num_edges
            ):
                raise InputMismatchError(
                    "shared adjacency does not match the peeled graph; "
                    "it was built from another graph"
                )
            adj = adjacency
        else:
            adj = CSRAdjacency.from_graph(graph)
        n = adj.n
        if n == 0:
            # Mirror greedy_peel's guard: an out-of-bounds write would be
            # undefined behaviour in a compiled kernel.
            raise ValueError("cannot peel an empty graph")
        degrees = adj.degrees().copy()
        order_idx = np.empty(n, dtype=np.int64)
        densities = np.empty(n, dtype=np.float64)
        self.peel_kernel(
            adj.indptr,
            adj.indices,
            adj.data,
            degrees,
            float(degrees.sum()),
            order_idx,
            densities,
        )
        # np.argmax keeps the first maximum — same best prefix as the
        # strict-> tracking of the reference loop.
        best_at = int(np.argmax(densities))
        best_size = n - best_at
        order = [adj.vertices[int(i)] for i in order_idx]
        return PeelResult(
            subset=set(order[n - best_size:]),
            density=float(densities[best_at]),
            order=order,
            densities=[float(d) for d in densities],
        )

    # -- replicator dynamics -------------------------------------------
    def replicator(
        self,
        graph: "Graph",
        x0: Dict[Any, float],
        rule: str = "objective",
        tol: float = 1e-6,
        max_iterations: int = 100_000,
    ) -> "ReplicatorResult":
        """Replicator dynamics through the compiled iteration."""
        from repro.affinity.replicator import PRUNE_EPS, ReplicatorResult
        from repro.graph.sparse import CSRAdjacency

        adj = CSRAdjacency.from_graph(graph)
        x = adj.embedding_vector({u: w for u, w in x0.items() if w > 0.0})
        if not (x > 0.0).any():
            raise ValueError("initial embedding has empty support")
        iterations, converged, objective, status = self.replicator_kernel(
            adj.indptr,
            adj.indices,
            adj.data,
            x,
            rule == "gradient",
            float(tol),
            max_iterations,
            PRUNE_EPS,
        )
        if status != 0:
            raise ValueError(
                "replicator dynamics requires nonnegative weights; "
                "run it on GD+, not GD"
            )
        return ReplicatorResult(
            x=adj.embedding_dict(x),
            objective=float(objective),
            iterations=int(iterations),
            converged=bool(converged),
        )

    # -- warm-up -------------------------------------------------------
    def warm(self) -> None:
        """Exercise every kernel once on a tiny graph.

        With ``jit=True`` this forces Numba to compile each kernel for
        the production signatures (float64 data, SciPy's int32 CSR
        index arrays, int64 members) — seconds of one-time work that
        batch workers and the resident service pay at startup, never on
        a query.  Idempotent per set.
        """
        if self.warmed:
            return
        from repro.graph.graph import Graph
        from repro.graph.sparse import CSRAdjacency

        triangle = Graph.from_edges(
            [("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 1.0)]
        )
        adj = CSRAdjacency.from_graph(triangle)
        members = np.arange(adj.n, dtype=np.int64)
        x = np.full(adj.n, 1.0 / adj.n, dtype=np.float64)
        self.coordinate_descent(adj, x.copy(), members, tol=1e-6)
        local = adj.submatrix(members)
        xm = x.copy()
        self.cd_csr(
            xm, local @ xm, local.indptr, local.indices, local.data, 1e-6, 10
        )
        self.peel(triangle, adjacency=adj)
        self.replicator(
            triangle, {u: 1.0 / adj.n for u in triangle.vertices()},
            max_iterations=2,
        )
        self.warmed = True


_KERNEL_CACHE: Dict[bool, KernelSet] = {}
_BUILDS = 0


def kernel_build_count() -> int:
    """How many :class:`KernelSet` builds this process has paid.

    The batch warm-once regression pins this: after the pool
    initializer warms the backend, serving queries must not raise it.
    """
    return _BUILDS


def get_kernels(jit: Optional[bool] = None) -> KernelSet:
    """The process-wide kernel set (built once per mode, then cached).

    *jit* ``None`` means "compile iff Numba is importable"; ``True``
    demands Numba (raising
    :class:`~repro.exceptions.BackendUnavailableError` without it);
    ``False`` returns the interpreted bodies — the differential test
    mode, and identical code either way.
    """
    global _BUILDS
    if jit is None:
        jit = numba_available()
    cached = _KERNEL_CACHE.get(jit)
    if cached is not None:
        return cached
    if jit:
        if not numba_available():
            raise BackendUnavailableError(
                "the native kernels require Numba, which is not "
                "installed; use get_kernels(jit=False) or the sparse "
                "backend instead"
            )
        import numba

        bound = {
            name: numba.njit(cache=True)(body)
            for name, body in _KERNEL_BODIES.items()
        }
    else:
        bound = dict(_KERNEL_BODIES)
    kernels = KernelSet(jit, bound)
    _KERNEL_CACHE[jit] = kernels
    _BUILDS += 1
    return kernels


def warm_kernels(jit: Optional[bool] = None) -> KernelSet:
    """Build (if needed) and warm the kernel set; returns it.

    The per-process entry point for pool initializers and service
    startup: after this returns, no query pays JIT compilation.
    """
    kernels = get_kernels(jit=jit)
    kernels.warm()
    return kernels
