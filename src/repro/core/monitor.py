"""Temporal contrast monitoring — the introduction's anomaly use case.

Section I: "we can build a weighted graph where the edge weights are our
expectation of how tightly the vertices are connected ... derived from,
for example, historical data.  Then we observe the current pairwise
connection strength ... and apply DCS on these two weighted graphs."

:class:`ContrastMonitor` packages that loop for a stream of snapshots:
the expectation is the mean of a sliding window of recent snapshots, and
each new snapshot is contrasted against it with either DCS solver.  The
emitted :class:`ContrastAlert` carries the flagged subgraph and its
contrast score; callers typically threshold the score.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Literal, Optional, Set

from repro.core.difference import difference_graph
from repro.engine.envelope import SolveRequest, solve
from repro.engine.prepared import PreparedGraph
from repro.engine.registry import Backend, get_backend, resolve_backend
from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph, Vertex

Measure = Literal["average_degree", "affinity"]


def mean_graph(graphs: Iterable[Graph], backend: Backend = "python") -> Graph:
    """Edge-wise mean of several graphs over the union vertex set.

    The natural "expectation" graph of a history window: an edge's weight
    is its average weight across the window (absent = 0).

    *backend* resolves through the engine registry — an unregistered
    name raises the standard
    :class:`~repro.exceptions.UnknownBackendError`.  ``"sparse"``
    accumulates the window through one shared vertex-index map and a
    SciPy COO sum — the per-edge additions run at C speed, which
    matters when the window is wide and the snapshots are large.  Both
    backends sum each edge's weights in the same (window) order, so
    results differ by at most float summation noise on the final
    division.
    """
    items = list(graphs)
    if not items:
        raise ValueError("cannot average zero graphs")
    return resolve_backend(backend).mean_graph(items)


def _mean_graph_python(items: List[Graph]) -> Graph:
    """The reference implementation behind the ``python`` backend."""
    result = Graph()
    for graph in items:
        result.add_vertices(graph.vertices())
    scale = 1.0 / len(items)
    for graph in items:
        for u, v, weight in graph.edges():
            result.increment_edge(u, v, weight * scale)
    return result


def _mean_graph_sparse(items: List[Graph]) -> Graph:
    """Vectorised mean: shared index map + one COO accumulation."""
    import numpy as np

    from repro.graph.sparse import _require_scipy, _scipy_sparse

    _require_scipy()
    index: dict = {}
    vertices: List[Vertex] = []
    for graph in items:
        for vertex in graph.vertices():
            if vertex not in index:
                index[vertex] = len(vertices)
                vertices.append(vertex)
    n = len(vertices)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for graph in items:
        for u, v, weight in graph.edges():
            i, j = index[u], index[v]
            # Canonical upper-triangle entry: snapshots can yield the
            # same undirected edge in either direction.
            rows.append(i if i < j else j)
            cols.append(j if i < j else i)
            vals.append(weight)
    # One COO build for the whole window: .tocsr() sums duplicate
    # positions at C speed (no per-snapshot matrix merges).
    total = _scipy_sparse.coo_matrix(
        (
            np.asarray(vals, dtype=np.float64),
            (np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)),
        ),
        shape=(n, n),
    ).tocsr()
    mean = total.tocoo()
    scale = 1.0 / len(items)
    result = Graph()
    result.add_vertices(vertices)
    for i, j, weight in zip(mean.row, mean.col, mean.data):
        value = float(weight) * scale
        if value != 0.0:
            result.add_edge(vertices[int(i)], vertices[int(j)], value)
    return result


@dataclass(frozen=True)
class ContrastAlert:
    """One monitoring step's outcome."""

    step: int
    subset: Set[Vertex]
    score: float
    measure: Measure

    def exceeds(self, threshold: float) -> bool:
        """Whether the contrast is above an alerting threshold."""
        return self.score > threshold


class ContrastMonitor:
    """Sliding-window DCS monitor over a stream of graph snapshots.

    Parameters
    ----------
    window:
        Number of recent snapshots forming the expectation.
    measure:
        ``"average_degree"`` runs DCSGreedy (broad anomalies);
        ``"affinity"`` runs NewSEA (tight clusters, positive-clique
        output).
    warmup:
        Steps to observe before emitting alerts (at least 1 so an
        expectation exists; defaults to the window size).
    backend:
        A registered engine backend name (``"python"`` is the reference,
        ``"sparse"`` the vectorised CSR/NumPy backend) — applied to the
        window mean and to whichever solver *measure* selects; an
        unregistered name raises
        :class:`~repro.exceptions.UnknownBackendError`.
    """

    def __init__(
        self,
        window: int = 5,
        measure: Measure = "average_degree",
        warmup: Optional[int] = None,
        backend: Backend = "python",
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if measure not in ("average_degree", "affinity"):
            raise ValueError(f"unknown measure {measure!r}")
        # Unknown/unavailable names and solver-incapable backends all
        # fail here, at construction — never steps into a stream.
        get_backend(backend).require_capabilities(
            "mean_graph",
            "peel" if measure == "average_degree" else "new_sea",
        )
        self.window = window
        self.measure: Measure = measure
        self.warmup = window if warmup is None else max(1, warmup)
        self.backend: Backend = backend
        self._history: Deque[Graph] = deque(maxlen=window)
        self._step = 0
        self._vertices: Optional[Set[Vertex]] = None

    @property
    def step(self) -> int:
        """Number of snapshots observed so far."""
        return self._step

    def observe(self, snapshot: Graph) -> Optional[ContrastAlert]:
        """Ingest one snapshot; return an alert once warmed up.

        All snapshots must share a vertex set (the DCS problem
        statement); the first snapshot fixes it.
        """
        if self._vertices is None:
            self._vertices = snapshot.vertex_set()
        elif snapshot.vertex_set() != self._vertices:
            raise InputMismatchError(
                "snapshot vertex set differs from the stream's"
            )

        alert: Optional[ContrastAlert] = None
        if len(self._history) >= 1 and self._step >= self.warmup:
            expected = mean_graph(self._history, backend=self.backend)
            gd = difference_graph(expected, snapshot)
            # One prepared context + the shared result envelope: the
            # monitor consumes the same engine seam as the CLI, batch
            # and streaming layers (KKT reporting skipped — this is a
            # per-step hot path).
            result = solve(
                SolveRequest(
                    measure=self.measure,
                    backend=self.backend,
                    check_kkt=False,
                ),
                PreparedGraph(gd),
            )
            alert = ContrastAlert(
                step=self._step,
                subset=set(result.subset),
                score=result.density,
                measure=self.measure,
            )
        self._history.append(snapshot)
        self._step += 1
        return alert

    def run(self, snapshots: Iterable[Graph]) -> List[ContrastAlert]:
        """Observe a whole stream; return the emitted alerts in order."""
        alerts: List[ContrastAlert] = []
        for snapshot in snapshots:
            alert = self.observe(snapshot)
            if alert is not None:
                alerts.append(alert)
        return alerts
