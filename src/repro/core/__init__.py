"""The paper's primary contribution: DCSAD and DCSGA solvers.

Pipeline overview::

    G1, G2 --difference_graph--> GD --+--> dcs_greedy (DCSAD, Alg. 2)
                                      |
                                      +--positive_part--> GD+
                                             |
                                             +--> new_sea (DCSGA, Alg. 5)
                                                  = smart init (Thm. 6)
                                                  + seacd (Alg. 3)
                                                  + refine (Alg. 4)
"""

from repro.core.coordinate_descent import (
    CDResult,
    coordinate_descent,
    gradient_gap,
)
from repro.core.dcsad import (
    DCSADResult,
    dcs_exact_positive,
    dcs_greedy,
    dcs_greedy_pair,
    greedy_on_gd_only,
    greedy_on_gd_plus_only,
)
from repro.core.monitor import ContrastAlert, ContrastMonitor, mean_graph
from repro.core.difference import (
    DBLP_DISCRETE,
    DifferenceStats,
    DiscreteLevels,
    assemble_difference,
    cap_weights,
    difference_graph,
    difference_stats,
    discrete_difference_graph,
    flip,
    positive_part,
    scale_free_quantizer,
)
from repro.core.embedding import Embedding, validate_simplex
from repro.core.exact import (
    ExactDCSAD,
    ExactDCSGA,
    clique_interior_optimum,
    exact_dcsad,
    exact_dcsga,
    exact_heaviest_subgraph,
)
from repro.core.expansion import ExpansionStep, candidate_frontier, expansion_step
from repro.core.initialization import (
    InitializationPlan,
    clique_affinity_upper_bound,
    ego_max_weights,
    smart_initialization_plan,
)
from repro.core.kkt import KKTReport, check_kkt, is_kkt_point
from repro.core.newsea import (
    AllInitsResult,
    DCSGAResult,
    new_sea,
    solve_all_initializations,
)
from repro.core.refinement import (
    RefinementResult,
    is_positive_clique_solution,
    refine,
)
from repro.core.seacd import SEACDResult, SEACDStats, seacd, seacd_from_vertex
from repro.core.sparse_solvers import (
    coordinate_descent_csr,
    csr_vertex_solver,
    expansion_step_csr,
    new_sea_csr,
    refine_csr,
    seacd_csr,
)
from repro.core.topk import RankedDCS, coverage, top_k_dcsad, top_k_dcsga

__all__ = [
    # difference graphs
    "assemble_difference",
    "difference_graph",
    "discrete_difference_graph",
    "positive_part",
    "flip",
    "cap_weights",
    "scale_free_quantizer",
    "DiscreteLevels",
    "DBLP_DISCRETE",
    "DifferenceStats",
    "difference_stats",
    # embeddings
    "Embedding",
    "validate_simplex",
    # DCSAD
    "DCSADResult",
    "dcs_greedy",
    "dcs_exact_positive",
    "dcs_greedy_pair",
    "greedy_on_gd_only",
    "greedy_on_gd_plus_only",
    # DCSGA building blocks
    "CDResult",
    "coordinate_descent",
    "gradient_gap",
    "ExpansionStep",
    "expansion_step",
    "candidate_frontier",
    "SEACDResult",
    "SEACDStats",
    "seacd",
    "seacd_from_vertex",
    "RefinementResult",
    "refine",
    "is_positive_clique_solution",
    "InitializationPlan",
    "smart_initialization_plan",
    "ego_max_weights",
    "clique_affinity_upper_bound",
    # DCSGA pipelines
    "DCSGAResult",
    "AllInitsResult",
    "new_sea",
    "solve_all_initializations",
    # KKT
    "KKTReport",
    "check_kkt",
    "is_kkt_point",
    # temporal monitoring
    "ContrastMonitor",
    "ContrastAlert",
    "mean_graph",
    # top-k extension
    "RankedDCS",
    "coverage",
    "top_k_dcsad",
    "top_k_dcsga",
    # vectorised CSR backend
    "coordinate_descent_csr",
    "expansion_step_csr",
    "seacd_csr",
    "refine_csr",
    "new_sea_csr",
    "csr_vertex_solver",
    # exact oracles
    "ExactDCSAD",
    "ExactDCSGA",
    "exact_dcsad",
    "exact_dcsga",
    "exact_heaviest_subgraph",
    "clique_interior_optimum",
]
