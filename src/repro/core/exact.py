"""Exact brute-force oracles for small instances.

Both DCS problems are NP-hard (Theorems 1 and 3), so the library ships
exponential-time oracles used by the test suite and the ablation benches
to measure how close the heuristics get on small graphs:

* :func:`exact_dcsad` — enumerate all vertex subsets, maximise
  ``rho_D(S) = W_D(S)/|S|``.
* :func:`exact_dcsga` — by Theorem 5 an optimal DCSGA solution is
  supported on a positive clique; enumerate all cliques of ``GD+`` and,
  for each clique ``S``, solve the interior KKT system
  ``D_S z = 1`` -> ``x = z / sum(z)``, ``f = 1 / sum(z)``.
  Supports where the optimum sits on the boundary of the sub-simplex are
  covered automatically because *every* sub-clique is enumerated too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.graph.graph import Graph, Vertex

#: Hard cap for subset enumeration; beyond this the oracle refuses.
MAX_EXACT_VERTICES = 22


@dataclass(frozen=True)
class ExactDCSAD:
    """Optimal DCSAD solution on a small graph."""

    subset: Set[Vertex]
    density: float


@dataclass(frozen=True)
class ExactDCSGA:
    """Optimal DCSGA solution on a small graph."""

    x: Dict[Vertex, float]
    objective: float

    @property
    def support(self) -> Set[Vertex]:
        return {u for u, w in self.x.items() if w > 0.0}


def exact_dcsad(gd: Graph) -> ExactDCSAD:
    """Optimal ``max_S W_D(S)/|S|`` by exhaustive subset enumeration.

    ``O(2^n)`` with an incremental weight update per subset; refuses
    graphs above :data:`MAX_EXACT_VERTICES` vertices.
    """
    vertices = sorted(gd.vertices(), key=repr)
    n = len(vertices)
    if n == 0:
        raise ValueError("empty graph")
    if n > MAX_EXACT_VERTICES:
        raise ValueError(
            f"exact oracle limited to {MAX_EXACT_VERTICES} vertices, got {n}"
        )
    index = {v: i for i, v in enumerate(vertices)}
    matrix = np.zeros((n, n))
    for u, v, weight in gd.edges():
        i, j = index[u], index[v]
        matrix[i, j] = weight
        matrix[j, i] = weight

    # weight_of[mask] = once-counted induced weight; built incrementally:
    # adding vertex b to `rest` adds the weights from b into `rest`.
    best_density = float("-inf")
    best_mask = 0
    weight_of = np.zeros(1 << n)
    # cross[b][mask] would be O(n 2^n) memory; compute on the fly instead.
    for mask in range(1, 1 << n):
        low = (mask & -mask).bit_length() - 1
        rest = mask & (mask - 1)
        cross = 0.0
        remaining = rest
        while remaining:
            other = (remaining & -remaining).bit_length() - 1
            cross += matrix[low, other]
            remaining &= remaining - 1
        weight_of[mask] = weight_of[rest] + cross
        density = 2.0 * weight_of[mask] / mask.bit_count()
        if density > best_density:
            best_density = density
            best_mask = mask

    subset = {vertices[i] for i in range(n) if best_mask >> i & 1}
    return ExactDCSAD(subset=subset, density=best_density)


def _all_cliques(gd_plus: Graph) -> Iterator[List[Vertex]]:
    """Every clique (not only maximal ones) of ``gd_plus``, incl. singletons."""
    vertices = sorted(gd_plus.vertices(), key=repr)
    position = {v: i for i, v in enumerate(vertices)}

    def extend(clique: List[Vertex], candidates: List[Vertex]) -> Iterator[List[Vertex]]:
        yield list(clique)
        for k, vertex in enumerate(candidates):
            neighbors = gd_plus.neighbors(vertex)
            clique.append(vertex)
            narrowed = [u for u in candidates[k + 1 :] if u in neighbors]
            yield from extend(clique, narrowed)
            clique.pop()

    for i, vertex in enumerate(vertices):
        later = [
            u
            for u in gd_plus.neighbors(vertex)
            if position[u] > i
        ]
        later.sort(key=repr)
        yield from extend([vertex], later)


def clique_interior_optimum(
    gd: Graph, clique: List[Vertex]
) -> Optional[Tuple[Dict[Vertex, float], float]]:
    """The interior KKT candidate on a clique's sub-simplex, if valid.

    Solves ``D_S z = 1``; the candidate ``x = z / sum(z)`` with objective
    ``1 / sum(z)`` is returned only when the system is well-posed, all
    entries are strictly positive and the objective is positive —
    otherwise the optimum over this support lies on the boundary and is
    found through a sub-clique.
    """
    k = len(clique)
    if k == 1:
        return {clique[0]: 1.0}, 0.0
    sub = np.zeros((k, k))
    for a in range(k):
        row = gd.neighbors(clique[a])
        for b in range(a + 1, k):
            weight = row.get(clique[b], 0.0)
            sub[a, b] = weight
            sub[b, a] = weight
    try:
        z = np.linalg.solve(sub, np.ones(k))
    except np.linalg.LinAlgError:
        return None
    total = float(z.sum())
    if total <= 0.0 or np.any(z <= 0.0):
        return None
    x = {clique[a]: float(z[a] / total) for a in range(k)}
    return x, 1.0 / total


def exact_dcsga(gd: Graph) -> ExactDCSGA:
    """Optimal ``max_{x in simplex} x^T D x`` via positive-clique search.

    Justification (Theorem 5): some optimal solution is supported on a
    positive clique of ``GD``; on that support the optimum either
    satisfies the interior KKT system or lives on a face — i.e. on a
    smaller clique, which the enumeration also visits.
    """
    vertices = list(gd.vertices())
    if not vertices:
        raise ValueError("empty graph")
    if len(vertices) > MAX_EXACT_VERTICES:
        raise ValueError(
            f"exact oracle limited to {MAX_EXACT_VERTICES} vertices"
        )
    gd_plus = gd.positive_part()

    best_x: Dict[Vertex, float] = {min(vertices, key=repr): 1.0}
    best_objective = 0.0
    for clique in _all_cliques(gd_plus):
        candidate = clique_interior_optimum(gd, clique)
        if candidate is None:
            continue
        x, objective = candidate
        if objective > best_objective:
            best_x, best_objective = x, objective
    return ExactDCSGA(x=best_x, objective=best_objective)


def exact_heaviest_subgraph(gd: Graph) -> Tuple[Set[Vertex], float]:
    """``max_S W_D(S)`` (total degree) — EgoScan's objective, exactly.

    Exhaustive like :func:`exact_dcsad`; used to audit the EgoScan
    substitute on small inputs.
    """
    vertices = sorted(gd.vertices(), key=repr)
    n = len(vertices)
    if n == 0:
        raise ValueError("empty graph")
    if n > MAX_EXACT_VERTICES:
        raise ValueError(
            f"exact oracle limited to {MAX_EXACT_VERTICES} vertices"
        )
    index = {v: i for i, v in enumerate(vertices)}
    matrix = np.zeros((n, n))
    for u, v, weight in gd.edges():
        i, j = index[u], index[v]
        matrix[i, j] = weight
        matrix[j, i] = weight

    best_weight = 0.0
    best_mask = 0
    weight_of = np.zeros(1 << n)
    for mask in range(1, 1 << n):
        low = (mask & -mask).bit_length() - 1
        rest = mask & (mask - 1)
        cross = 0.0
        remaining = rest
        while remaining:
            other = (remaining & -remaining).bit_length() - 1
            cross += matrix[low, other]
            remaining &= remaining - 1
        weight_of[mask] = weight_of[rest] + cross
        if 2.0 * weight_of[mask] > best_weight:
            best_weight = 2.0 * weight_of[mask]
            best_mask = mask

    subset = {vertices[i] for i in range(n) if best_mask >> i & 1}
    if not subset:
        subset = {vertices[0]}
    return subset, best_weight
