"""Difference-graph construction (Section III of the paper).

Given ``G1 = (V, E1, A1)`` and ``G2 = (V, E2, A2)`` over the same vertex
set, the difference graph is ``GD = (V, ED, D)`` with ``D = A2 - A1`` and
``ED = {(u, v) | D(u, v) != 0}``.  Both DCS objectives reduce to densest
subgraph mining on ``GD`` (Eqs. 5 and 6).

This module also implements the paper's input transformations:

* ``alpha``-generalisation (Section III-D): ``D = A2 - alpha * A1``
  turns the objective into ``rho_2(S) - alpha * rho_1(S)``.
* The **Discrete setting** (Section VI-B): quantise ``A2 - A1`` to small
  integer levels so a few very heavy edges cannot dominate the DCS.
* **Heavy-edge capping** (Section III-D / Actor Discrete setting): clamp
  weights above a cap.
* **Sign flip** (Emerging <-> Disappearing GD types): mining
  ``G1 - G2`` instead of ``G2 - G1`` is just negating ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph


def difference_graph(
    g1: Graph,
    g2: Graph,
    alpha: float = 1.0,
    require_same_vertices: bool = True,
) -> Graph:
    """Build ``GD`` with affinity ``D = A2 - alpha * A1``.

    With the default ``alpha = 1`` this is the standard difference graph.
    Edges whose difference is exactly zero are absent from ``GD``
    (matching ``ED = {(u, v) | D(u, v) != 0}``).

    When *require_same_vertices* is set (the default, matching the
    problem statement), the two vertex sets must agree exactly; otherwise
    the union is used with missing vertices treated as isolated.
    """
    v1, v2 = g1.vertex_set(), g2.vertex_set()
    if require_same_vertices and v1 != v2:
        only_1 = len(v1 - v2)
        only_2 = len(v2 - v1)
        raise InputMismatchError(
            "G1 and G2 must share the same vertex set "
            f"({only_1} vertices only in G1, {only_2} only in G2); "
            "pass require_same_vertices=False to take the union"
        )
    result = Graph()
    result.add_vertices(v1 | v2)
    # Start from A2, then subtract alpha * A1; increment_edge drops exact
    # cancellations automatically.
    for u, v, weight in g2.edges():
        result.add_edge(u, v, weight)
    for u, v, weight in g1.edges():
        result.increment_edge(u, v, -alpha * weight)
    return result


def positive_part(gd: Graph) -> Graph:
    """``GD+``: the subgraph of strictly positive difference edges."""
    return gd.positive_part()


def assemble_difference(
    g1: Graph,
    g2: Graph,
    alpha: float = 1.0,
    flipped: bool = False,
    discrete: bool = False,
    cap: Optional[float] = None,
    require_same_vertices: bool = False,
) -> Graph:
    """The full input pipeline: ``(G1, G2)`` -> the mined ``GD``.

    Composes the paper's transformations in their canonical order —
    difference (weighted ``alpha``-generalised, or the DBLP Discrete
    quantisation), then the Emerging/Disappearing *flip*, then heavy-edge
    *capping*.  This is the one place the ``repro`` CLI and the batch
    service agree on what a query's difference parameters mean, so a
    batch record and a CLI invocation with the same flags mine the same
    graph.  *discrete* is mutually exclusive with a non-default *alpha*
    (quantisation fixes the scale that ``alpha`` would re-weight).
    """
    if discrete:
        if alpha != 1.0:
            raise InputMismatchError(
                "discrete quantisation and alpha are mutually exclusive"
            )
        gd = discrete_difference_graph(
            g1, g2, DBLP_DISCRETE, require_same_vertices=require_same_vertices
        )
    else:
        gd = difference_graph(
            g1, g2, alpha=alpha, require_same_vertices=require_same_vertices
        )
    if flipped:
        gd = flip(gd)
    if cap is not None:
        gd = cap_weights(gd, cap)
    return gd


def flip(gd: Graph) -> Graph:
    """Swap the roles of G1 and G2 (Emerging <-> Disappearing)."""
    return gd.negated()


# ----------------------------------------------------------------------
# Discrete setting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiscreteLevels:
    """A quantisation of difference weights into integer levels.

    ``thresholds`` and ``values`` describe a step function applied to the
    raw difference ``d = A2(u,v) - A1(u,v)``: the weight becomes
    ``values[i]`` for the first ``i`` with ``d >= thresholds[i]``
    (thresholds must be strictly decreasing), and ``fallback`` if no
    threshold matches.  Weights mapped to 0 delete the edge.
    """

    thresholds: Tuple[float, ...]
    values: Tuple[float, ...]
    fallback: float = 0.0

    def __post_init__(self) -> None:
        if len(self.thresholds) != len(self.values):
            raise ValueError("thresholds and values must align")
        if any(
            a <= b
            for a, b in zip(self.thresholds, self.thresholds[1:])
        ):
            raise ValueError("thresholds must be strictly decreasing")

    def __call__(self, difference: float) -> float:
        for threshold, value in zip(self.thresholds, self.values):
            if difference >= threshold:
                return value
        return self.fallback


#: The paper's DBLP Discrete setting (Section VI-B):
#: ``>= +5`` more collaborations -> +2; ``[+2, +5)`` -> +1;
#: ``(-4, 0)`` -> -1; ``<= -4`` -> -2; and small gains in ``[0, 2)``
#: (including "no change") carry no edge.
DBLP_DISCRETE = DiscreteLevels(
    thresholds=(5.0, 2.0, 0.0, -4.0 + 1e-12),
    values=(2.0, 1.0, 0.0, -1.0),
    fallback=-2.0,
)


def discrete_difference_graph(
    g1: Graph,
    g2: Graph,
    levels: DiscreteLevels = DBLP_DISCRETE,
    require_same_vertices: bool = True,
) -> Graph:
    """``GD`` under the Discrete setting.

    The raw differences are computed over the union of edges of G1 and
    G2, then passed through *levels*.  Pairs with zero raw difference are
    never edges (they are absent from both ``ED`` and the quantised
    graph), matching the paper: the quantisation only reweights existing
    difference edges.
    """
    raw = difference_graph(
        g1, g2, require_same_vertices=require_same_vertices
    )
    return raw.map_weights(levels)


def cap_weights(gd: Graph, cap: float) -> Graph:
    """Clamp weights into ``[-cap, cap]``.

    Implements the heavy-edge adjustment of Section III-D (used for the
    Actor Discrete setting, where weights above 10 are set to 10):
    without it, a single very heavy edge is likely to *be* the DCS.
    """
    if cap <= 0:
        raise ValueError("cap must be positive")
    return gd.map_weights(lambda w: max(-cap, min(cap, w)))


def scale_free_quantizer(
    boundaries: Sequence[float],
) -> Callable[[float], float]:
    """Build a symmetric quantiser from positive boundary magnitudes.

    ``boundaries = (b1, b2, ..., bk)`` (increasing) maps a difference
    ``d`` to ``+i`` where ``b_{i-1} <= |d| < b_i`` with the sign of ``d``
    (differences below ``b1`` in magnitude are dropped).  A generic
    alternative to hand-written :class:`DiscreteLevels`.
    """
    bounds = tuple(boundaries)
    if not bounds or any(b <= 0 for b in bounds):
        raise ValueError("boundaries must be positive")
    if any(a >= b for a, b in zip(bounds, bounds[1:])):
        raise ValueError("boundaries must be strictly increasing")

    def quantize(difference: float) -> float:
        magnitude = abs(difference)
        if magnitude < bounds[0]:
            return 0.0
        level = len(bounds)
        for i, bound in enumerate(bounds[1:], start=1):
            if magnitude < bound:
                level = i
                break
        return float(level) if difference > 0 else -float(level)

    return quantize


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DifferenceStats:
    """The Table II row for a difference graph."""

    num_vertices: int
    num_positive_edges: int
    num_negative_edges: int
    max_weight: Optional[float]
    min_weight: Optional[float]
    average_weight: Optional[float]

    @property
    def num_edges(self) -> int:
        return self.num_positive_edges + self.num_negative_edges

    @property
    def positive_density(self) -> float:
        """``m+ / n`` — the x-axis of Fig. 2."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_positive_edges / self.num_vertices


def difference_stats(gd: Graph) -> DifferenceStats:
    """Compute the statistics the paper reports in Table II."""
    positive = 0
    negative = 0
    total = 0.0
    max_weight: Optional[float] = None
    min_weight: Optional[float] = None
    for _, _, weight in gd.edges():
        total += weight
        if weight > 0:
            positive += 1
        else:
            negative += 1
        if max_weight is None or weight > max_weight:
            max_weight = weight
        if min_weight is None or weight < min_weight:
            min_weight = weight
    count = positive + negative
    return DifferenceStats(
        num_vertices=gd.num_vertices,
        num_positive_edges=positive,
        num_negative_edges=negative,
        max_weight=max_weight,
        min_weight=min_weight,
        average_weight=(total / count) if count else None,
    )
