"""KKT condition checks for the DCSGA problem (Eqs. 7, 8, 10, 11).

A point ``x`` on the simplex is a KKT point of ``max x^T D x`` iff

    ``grad_u f(x) = 2 (Dx)_u  { = lambda  if x_u > 0
                              { <= lambda if x_u = 0      (Eq. 7)

with ``lambda = 2 f(x)``, equivalently

    ``max_{k: x_k < 1} grad_k <= min_{k: x_k > 0} grad_k``  (Eq. 8).

These checkers are used by the test suite (SEACD must return KKT points
— Theorem 4) and by the SEA baseline to demonstrate that the loose
convergence condition of [18] does *not* reach local KKT points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.graph.graph import Graph, Vertex


@dataclass(frozen=True)
class KKTReport:
    """Diagnostics of a KKT check.

    ``gap`` is ``max_{k: x_k<1} grad_k - min_{k: x_k>0} grad_k``; the
    point is a KKT point when ``gap <= tol``.  ``lam`` is ``2 f(x)``,
    which equals every support gradient at an exact KKT point.
    """

    is_kkt: bool
    gap: float
    lam: float
    max_gradient: float
    min_support_gradient: float


def _gradients(
    graph: Graph, x: Dict[Vertex, float], candidates: Iterable[Vertex]
) -> Dict[Vertex, float]:
    out: Dict[Vertex, float] = {}
    for k in candidates:
        total = 0.0
        for neighbor, weight in graph.neighbors(k).items():
            xv = x.get(neighbor)
            if xv is not None:
                total += weight * xv
        out[k] = 2.0 * total
    return out


def check_kkt(
    graph: Graph,
    x: Dict[Vertex, float],
    subset: Optional[Set[Vertex]] = None,
    tol: float = 1e-6,
) -> KKTReport:
    """Check the (local) KKT conditions of *x*.

    With ``subset=None`` this is the global condition (Eq. 8) over all of
    ``V``; vertices with no neighbour in the support have gradient 0 and
    are handled implicitly.  With a *subset* it is the local condition
    (Eq. 11) on ``S``.
    """
    support = {u for u, w in x.items() if w > 0.0}
    if not support:
        raise ValueError("empty embedding has no KKT status")

    objective = 0.0
    for u, xu in x.items():
        for v, weight in graph.neighbors(u).items():
            xv = x.get(v)
            if xv is not None:
                objective += xu * xv * weight
    lam = 2.0 * objective

    if subset is None:
        candidates: Set[Vertex] = set(support)
        for u in support:
            candidates.update(graph.neighbors(u))
        rest_exists = graph.num_vertices > len(candidates)
    else:
        candidates = set(subset)
        rest_exists = False
        if not support <= candidates:
            raise ValueError("support must lie inside the subset")

    grads = _gradients(graph, x, candidates)
    max_gradient = -math.inf
    for k, value in grads.items():
        if x.get(k, 0.0) < 1.0 and value > max_gradient:
            max_gradient = value
    if rest_exists:
        # Vertices with no support neighbour: gradient exactly 0.
        max_gradient = max(max_gradient, 0.0)
    min_support_gradient = min(grads[k] for k in support)

    if max_gradient is -math.inf:
        # Single-vertex universe holding all mass: trivially KKT.
        return KKTReport(
            is_kkt=True,
            gap=-math.inf,
            lam=lam,
            max_gradient=-math.inf,
            min_support_gradient=min_support_gradient,
        )

    gap = max_gradient - min_support_gradient
    return KKTReport(
        is_kkt=gap <= tol,
        gap=gap,
        lam=lam,
        max_gradient=max_gradient,
        min_support_gradient=min_support_gradient,
    )


def is_kkt_point(
    graph: Graph,
    x: Dict[Vertex, float],
    tol: float = 1e-6,
) -> bool:
    """Shorthand for ``check_kkt(...).is_kkt`` on the global condition."""
    return check_kkt(graph, x, tol=tol).is_kkt
