"""Vectorised (CSR) backend for the DCSGA solver stack.

Every kernel here is a NumPy re-expression of a reference implementation
elsewhere in :mod:`repro.core` — same algorithm, same convergence rules,
same tie-break conventions where determinism matters — operating on a
shared :class:`~repro.graph.sparse.CSRAdjacency` instead of dict loops:

* :func:`coordinate_descent_csr` — the 2-coordinate shrink stage.  The
  gradient cache ``dx = Dx`` is a dense array maintained with O(deg)
  row-slice updates, and the argmax/argmin pair selection is one
  vectorised pass over the support.  The pair subproblem itself reuses
  the analytic solver of :mod:`repro.core.coordinate_descent` so both
  backends take *bitwise identical* moves given identical selections.
* :func:`expansion_step_csr` — the SEA expansion: ``Z``, ``gamma``,
  ``s``/``zeta``/``omega`` and the step are all array expressions; the
  only sparse-matrix work is one induced block ``D[Z][:, Z]``.
* :func:`seacd_csr` / :func:`refine_csr` — Algorithms 3 and 4 looping
  over the two kernels above.
* :func:`new_sea_csr` — Algorithm 5: the smart-initialisation bounds are
  computed in one vectorised pass (see
  :func:`repro.core.initialization.smart_initialization_plan` with
  ``backend="sparse"``), the CSR matrix is built **once** and shared by
  every initialisation.

Parity: the backends agree on supports and agree on objectives up to
floating-point summation order (dict-order sums vs. vectorised dot
products), which the cross-backend test suite pins down.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.coordinate_descent import _best_pair_move
from repro.core.expansion import PRUNE_EPS
from repro.core.initialization import InitializationPlan
from repro.core.seacd import SEACDResult, SEACDStats
from repro.exceptions import InputMismatchError, VertexNotFound
from repro.graph.cliques import is_clique
from repro.graph.graph import Graph, Vertex
from repro.graph.sparse import CSRAdjacency


# ----------------------------------------------------------------------
# shrink stage (2-coordinate descent, Section V-B)
# ----------------------------------------------------------------------
#: Supports larger than this fall back from the dense local submatrix to
#: CSR row updates (quadratic memory would start to bite).
DENSE_SUPPORT_LIMIT = 4096

#: The ``cd=`` seam: any drop-in for :func:`coordinate_descent_csr`
#: (the native backend passes its compiled kernel here, reusing every
#: orchestration loop in this module unchanged).
CoordinateDescentFn = Callable[
    ..., Tuple[np.ndarray, Optional[np.ndarray], float, int, bool]
]


def coordinate_descent_csr(
    adj: CSRAdjacency,
    x: np.ndarray,
    members: np.ndarray,
    tol: float,
    max_iterations: int = 100_000,
    need_dx: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray], float, int, bool]:
    """Drive *x* to a local KKT point on *members* (row indices).

    Mutates *x* in place and returns ``(x, dx, objective, iterations,
    converged)``; ``dx`` is a fresh dense gradient cache ``Dx`` for the
    final iterate, valid for **every** vertex (the expansion stage
    reuses it without another product).  Callers that never look at the
    full-width gradient (the refinement loop) pass ``need_dx=False`` to
    skip that product; ``dx`` is then None.

    Strategy: the iteration is confined to *members*, so the kernel
    gathers ``x`` into a compact local vector and densifies the induced
    block ``D[S][:, S]`` once (|S| is a support — tiny next to n).  Each
    pair move is then a handful of O(|S|) array operations: masked
    argmax/argmin selection, a scalar ``D_S[i, j]`` lookup, and one
    fused row-axpy on the local gradient.  Supports beyond
    :data:`DENSE_SUPPORT_LIMIT` use O(deg) CSR row updates instead.
    """
    size = int(members.size)
    if size == 1:
        # Singleton support: no self loop, zero gradient — trivially a
        # local KKT point (the reference backend finds no movable pair).
        return x, adj.matvec(x) if need_dx else None, 0.0, 0, True

    dense = size <= DENSE_SUPPORT_LIMIT
    xm = x[members]
    if dense:
        block = adj.dense_block(members)
        dxm = block @ xm
    else:
        local = adj.submatrix(members)
        dxm = local @ xm

    iterations = 0
    converged = False
    while iterations < max_iterations:
        # With |S| > 1 and sum(x) == 1 a raisable (< 1) and a lowerable
        # (> 0) coordinate always exist; only the masks can be skipped.
        xm_max = xm.max()
        if xm_max < 1.0:
            i = int(dxm.argmax())
        else:
            i = int(np.argmax(np.where(xm < 1.0, dxm, -np.inf)))
        j = int(np.argmin(np.where(xm > 0.0, dxm, np.inf)))
        dx_i = float(dxm[i])
        dx_j = float(dxm[j])
        if 2.0 * (dx_i - dx_j) <= tol:
            converged = True
            break

        xi = float(xm[i])
        xj = float(xm[j])
        c_total = xi + xj
        if dense:
            d_ij = float(block[i, j])
        else:
            start, end = local.indptr[i], local.indptr[i + 1]
            row_indices = local.indices[start:end]
            pos = np.searchsorted(row_indices, j)
            d_ij = (
                float(local.data[start + pos])
                if pos < len(row_indices) and row_indices[pos] == j
                else 0.0
            )
        b_i = dx_i - d_ij * xj
        b_j = dx_j - d_ij * xi
        xi_new = _best_pair_move(d_ij, c_total, b_i, b_j)
        xj_new = c_total - xi_new

        delta_i = xi_new - xi
        delta_j = xj_new - xj
        if delta_i == 0.0:
            # The analytic optimum is the current point: the gradient gap
            # is below numeric resolution; treat as converged.
            converged = True
            break

        xm[i] = xi_new if xi_new > 0.0 else 0.0
        xm[j] = xj_new if xj_new > 0.0 else 0.0
        if dense:
            dxm += block[i] * delta_i
            if delta_j != 0.0:
                dxm += block[j] * delta_j
        else:
            start, end = local.indptr[i], local.indptr[i + 1]
            dxm[local.indices[start:end]] += local.data[start:end] * delta_i
            if delta_j != 0.0:
                start, end = local.indptr[j], local.indptr[j + 1]
                dxm[local.indices[start:end]] += local.data[start:end] * delta_j
        iterations += 1

    x[members] = xm
    objective = float(xm @ dxm)
    dx = adj.matvec(x) if need_dx else None
    return x, dx, objective, iterations, converged


# ----------------------------------------------------------------------
# expansion stage (Section V-B / Appendix A)
# ----------------------------------------------------------------------
def expansion_step_csr(
    adj: CSRAdjacency,
    x: np.ndarray,
    dx: np.ndarray,
    objective: float,
    strict_tol: float = 1e-12,
) -> Tuple[np.ndarray, np.ndarray, float, bool, int]:
    """One SEA expansion from the KKT point *x* with gradient cache *dx*.

    Uses the unconditional-ascent ``lambda_bar = f(x)`` rule (the SEACD
    choice; see :func:`repro.core.expansion.expansion_step`).  Returns
    ``(new_x, new_dx, new_objective, expanded, z_size)``; when nothing
    qualifies for ``Z`` the inputs are returned unchanged.
    """
    lambda_bar = objective
    threshold = lambda_bar + strict_tol * max(1.0, abs(lambda_bar))

    outside = x <= 0.0
    candidates = outside & (dx > threshold)
    if threshold < 0.0:
        # Degenerate signed case: dx == 0 then beats the threshold, but a
        # vertex with no support neighbour is not in the frontier.  Mask
        # non-frontier vertices explicitly (|D| restricted to support).
        frontier = np.zeros(adj.n, dtype=bool)
        for s in np.flatnonzero(x > 0.0):
            neighbors, _ = adj.row(int(s))
            frontier[neighbors] = True
        candidates &= frontier
    z = np.flatnonzero(candidates)
    if z.size == 0:
        return x, dx, objective, False, 0

    gamma = dx[z] - lambda_bar
    s_total = float(gamma.sum())
    zeta = float(gamma @ gamma)
    if z.size == 1:
        # A single candidate: the zero diagonal makes omega exactly 0.
        omega = 0.0
    else:
        # omega = gamma^T D[Z][:, Z] gamma via one full-width product on
        # the scattered gamma (zeros kill every out-of-Z term) — much
        # cheaper than materialising the induced block.
        scattered = np.zeros_like(dx)
        scattered[z] = gamma
        omega = float(scattered @ adj.matvec(scattered))

    a = lambda_bar * s_total * s_total + 2.0 * s_total * zeta - omega
    if a <= 0.0:
        tau = 1.0 / s_total
    else:
        tau = min(1.0 / s_total, zeta / a)

    shrink_factor = 1.0 - tau * s_total
    new_x = np.zeros_like(x)
    if shrink_factor > PRUNE_EPS:
        scaled = x * shrink_factor
        keep = scaled > PRUNE_EPS
        new_x[keep] = scaled[keep]
    grown = tau * gamma
    keep = grown > PRUNE_EPS
    new_x[z[keep]] = grown[keep]

    # Renormalise away accumulated rounding (the step preserves the sum
    # analytically: (1 - tau s) + tau s = 1).
    total = float(new_x.sum())
    if total > 0 and abs(total - 1.0) > 1e-12:
        new_x /= total

    new_dx = adj.matvec(new_x)
    return new_x, new_dx, float(new_x @ new_dx), True, int(z.size)


# ----------------------------------------------------------------------
# Algorithm 3 — SEACD
# ----------------------------------------------------------------------
def seacd_csr(
    graph: Graph,
    x0: Dict[Vertex, float],
    tol_scale: float = 1e-2,
    max_expansions: int = 10_000,
    max_cd_iterations: int = 100_000,
    adjacency: Optional[CSRAdjacency] = None,
    cd: Optional["CoordinateDescentFn"] = None,
) -> SEACDResult:
    """Algorithm 3 on the CSR backend; mirrors :func:`repro.core.seacd.seacd`.

    Pass a prebuilt *adjacency* to amortise the CSR construction across
    many initialisations (as :func:`new_sea_csr` does).  *cd* swaps the
    2-coordinate-descent kernel (defaults to
    :func:`coordinate_descent_csr`; the native backend passes its
    compiled drop-in) — the seam through which every orchestration
    layer here is shared across backends.
    """
    adj = adjacency if adjacency is not None else CSRAdjacency.from_graph(graph)
    x = adj.embedding_vector({u: w for u, w in x0.items() if w > 0.0})
    x_vec, objective, converged, stats = _seacd_vec(
        adj, x, tol_scale, max_expansions, max_cd_iterations, cd=cd
    )
    return SEACDResult(
        x=adj.embedding_dict(x_vec),
        objective=objective,
        converged=converged,
        stats=stats,
    )


def _seacd_vec(
    adj: CSRAdjacency,
    x: np.ndarray,
    tol_scale: float,
    max_expansions: int,
    max_cd_iterations: int,
    cd: Optional["CoordinateDescentFn"] = None,
) -> Tuple[np.ndarray, float, bool, SEACDStats]:
    if cd is None:
        cd = coordinate_descent_csr
    if not (x > 0.0).any():
        raise ValueError("initial embedding has empty support")
    stats = SEACDStats()
    converged = False
    objective = 0.0
    while stats.expansions < max_expansions:
        members = np.flatnonzero(x > 0.0)
        x, dx, objective, iterations, _ = cd(
            adj,
            x,
            members,
            tol=tol_scale / len(members),
            max_iterations=max_cd_iterations,
        )
        stats.shrink_calls += 1
        stats.shrink_iterations += iterations
        stats.objective_trace.append(objective)

        x_new, dx_new, objective_new, expanded, _ = expansion_step_csr(
            adj, x, dx, objective
        )
        if not expanded:
            converged = True
            break
        decrease_tol = 1e-12 * max(1.0, abs(objective))
        if objective_new < objective - decrease_tol:
            stats.expansion_errors += 1
        x, dx, objective = x_new, dx_new, objective_new
        stats.expansions += 1

    return x, objective, converged, stats


# ----------------------------------------------------------------------
# Algorithm 4 — Refinement to a positive clique
# ----------------------------------------------------------------------
def refine_csr(
    graph: Graph,
    x0: Dict[Vertex, float],
    tol_scale: float = 1e-2,
    max_cd_iterations: int = 100_000,
    adjacency: Optional[CSRAdjacency] = None,
    cd: Optional["CoordinateDescentFn"] = None,
) -> Tuple[Dict[Vertex, float], float, int, float]:
    """Algorithm 4 on the CSR backend; mirrors :func:`repro.core.refinement.refine`.

    Returns ``(x, objective, merges, initial_objective)``.
    """
    adj = adjacency if adjacency is not None else CSRAdjacency.from_graph(graph)
    x = adj.embedding_vector({u: w for u, w in x0.items() if w > 0.0})
    if not (x > 0.0).any():
        raise ValueError("cannot refine an empty embedding")
    x, objective, merges, initial = _refine_vec(
        adj, x, tol_scale, max_cd_iterations, cd=cd
    )
    return adj.embedding_dict(x), objective, merges, initial


def _find_non_adjacent_pair_vec(
    adj: CSRAdjacency, support: np.ndarray
) -> Optional[Tuple[int, int]]:
    """A support pair with no edge, or None if the support is a clique.

    Scans lightest-degree vertices first, like the reference backend.
    The adjacency test marks each row in a shared boolean buffer (reset
    after use), which beats set/``isin`` lookups at every support size.
    """
    by_degree = support[np.argsort(adj.unweighted_degrees()[support], kind="stable")]
    is_neighbor = np.zeros(adj.n, dtype=bool)
    for position, u in enumerate(by_degree):
        rest = by_degree[position + 1 :]
        if rest.size == 0:
            break
        neighbors, _ = adj.row(int(u))
        is_neighbor[neighbors] = True
        missing = rest[~is_neighbor[rest]]
        is_neighbor[neighbors] = False
        if missing.size:
            return int(u), int(missing[0])
    return None


def _refine_vec(
    adj: CSRAdjacency,
    x: np.ndarray,
    tol_scale: float,
    max_cd_iterations: int,
    cd: Optional["CoordinateDescentFn"] = None,
) -> Tuple[np.ndarray, float, int, float]:
    if cd is None:
        cd = coordinate_descent_csr
    initial_objective = adj.objective(x)
    merges = 0
    while True:
        support = np.flatnonzero(x > 0.0)
        pair = _find_non_adjacent_pair_vec(adj, support)
        if pair is None:
            break
        u, v = pair
        if adj.row_dot(u, x) < adj.row_dot(v, x):
            u, v = v, u
        x[u] += x[v]
        x[v] = 0.0
        members = np.flatnonzero(x > 0.0)
        x, _, _, _, _ = cd(
            adj,
            x,
            members,
            tol=tol_scale / len(members),
            max_iterations=max_cd_iterations,
            need_dx=False,
        )
        merges += 1
    return x, adj.objective(x), merges, initial_objective


# ----------------------------------------------------------------------
# Algorithm 5 — NewSEA with batched smart initialisation
# ----------------------------------------------------------------------
def _solve_one_vec(
    adj: CSRAdjacency,
    vertex_index: int,
    tol_scale: float,
    max_expansions: int,
    cd: Optional["CoordinateDescentFn"] = None,
) -> Tuple[np.ndarray, float, int]:
    """SEACD + Refinement from the indicator of one vertex (by index)."""
    x = np.zeros(adj.n, dtype=np.float64)
    x[vertex_index] = 1.0
    x, _, _, stats = _seacd_vec(adj, x, tol_scale, max_expansions, 100_000, cd=cd)
    x, objective, _, _ = _refine_vec(adj, x, tol_scale, 100_000, cd=cd)
    return x, objective, stats.expansion_errors


def _check_shared_adjacency(adjacency: CSRAdjacency, gd_plus: Graph) -> None:
    """Sanity-check a caller-supplied prebuilt adjacency against *gd_plus*.

    The shared-CSR plumbing makes it easy to pass the adjacency of the
    *wrong* graph — most treacherously the signed ``GD`` instead of its
    positive part, which has the same vertex set and would silently
    poison every solve with negative entries.  Cheap vectorised checks
    (vertex count, edge count, strict positivity) catch the realistic
    mix-ups without paying a full content comparison.
    """
    if adjacency.n != gd_plus.num_vertices:
        raise InputMismatchError(
            f"shared adjacency has {adjacency.n} vertices but the graph "
            f"has {gd_plus.num_vertices}; it was built from another graph"
        )
    if adjacency.num_edges != gd_plus.num_edges:
        raise InputMismatchError(
            f"shared adjacency has {adjacency.num_edges} edges but the "
            f"graph has {gd_plus.num_edges}; it was built from another graph"
        )
    if adjacency.data.size and not (adjacency.data > 0).all():
        raise InputMismatchError(
            "shared adjacency contains nonpositive weights; it was built "
            "from the signed difference graph, not its positive part"
        )


def csr_vertex_solver(
    gd_plus: Graph,
    tol_scale: float = 1e-2,
    max_expansions: int = 10_000,
    adjacency: Optional[CSRAdjacency] = None,
    cd: Optional["CoordinateDescentFn"] = None,
):
    """A ``VertexSolver`` closure over one shared CSR adjacency.

    Drop-in for :func:`repro.core.newsea.solve_all_initializations`'s
    *solver* parameter: the CSR matrix is built once here, not once per
    initialisation.
    """
    if adjacency is not None:
        _check_shared_adjacency(adjacency, gd_plus)
    adj = (
        adjacency
        if adjacency is not None
        else CSRAdjacency.from_graph(gd_plus)
    )

    def solve(
        graph: Graph, vertex: Vertex
    ) -> Tuple[Dict[Vertex, float], float, int]:
        position = adj.index.get(vertex)
        if position is None:
            # The *graph* argument of the VertexSolver protocol is
            # ignored in favour of the frozen adjacency; an unknown
            # vertex is the observable symptom of a mismatched graph.
            raise VertexNotFound(vertex)
        x, objective, errors = _solve_one_vec(
            adj, position, tol_scale, max_expansions, cd=cd
        )
        return adj.embedding_dict(x), objective, errors

    return solve


def new_sea_csr(
    gd_plus: Graph,
    tol_scale: float = 1e-2,
    max_expansions: int = 10_000,
    plan: Optional[InitializationPlan] = None,
    adjacency: Optional[CSRAdjacency] = None,
    cd: Optional["CoordinateDescentFn"] = None,
):
    """Algorithm 5 on the CSR backend; mirrors :func:`repro.core.newsea.new_sea`.

    The caller (:func:`repro.core.newsea.new_sea` with
    ``backend="sparse"``) has already validated the input.  Builds the
    CSR adjacency once, computes the ``mu_u`` bounds for all vertices in
    one vectorised pass, then walks the descending-bound order with the
    same early-stop rule as the reference backend.
    """
    from repro.core.newsea import DCSGAResult
    from repro.core.initialization import smart_initialization_plan

    if adjacency is not None:
        _check_shared_adjacency(adjacency, gd_plus)
    adj = (
        adjacency
        if adjacency is not None
        else CSRAdjacency.from_graph(gd_plus)
    )
    if plan is None:
        plan = smart_initialization_plan(
            gd_plus, backend="sparse", adjacency=adj
        )

    best_x: Optional[np.ndarray] = None
    best_objective = 0.0
    initializations = 0
    errors = 0
    pruned_at: Optional[float] = None
    for vertex in plan.order:
        bound = plan.mu[vertex]
        if bound <= best_objective:
            # Sorted descending: nothing later can beat the incumbent.
            pruned_at = bound
            break
        x, objective, run_errors = _solve_one_vec(
            adj, adj.index[vertex], tol_scale, max_expansions, cd=cd
        )
        errors += run_errors
        initializations += 1
        if objective > best_objective or best_x is None:
            best_x, best_objective = x, objective

    if best_x is not None:
        embedding = adj.embedding_dict(best_x)
    else:
        # Edgeless GD+ (mu == 0 everywhere): a single vertex is optimal.
        vertex = min(gd_plus.vertices(), key=repr)
        embedding, best_objective = {vertex: 1.0}, 0.0

    return DCSGAResult(
        x=embedding,
        objective=best_objective,
        support={u for u, w in embedding.items() if w > 0.0},
        is_positive_clique=is_clique(gd_plus, embedding),
        initializations=initializations,
        expansion_errors=errors,
        pruned_at_bound=pruned_at,
    )
