"""Sparse subgraph embeddings on the standard simplex (Section III-A).

A subgraph embedding is ``x`` in the simplex ``Delta_n`` (nonnegative,
sums to 1); ``x_u`` is the participation of vertex ``u`` and the support
set is ``Sx = {u | x_u > 0}``.  The DCSGA objective is the graph affinity
``f_D(x) = x^T D x``.

Embeddings are stored sparsely (``dict`` vertex -> weight, zero entries
absent) because the solvers keep supports small; gradients
``grad_u f = 2 (Dx)_u`` are computed over neighbourhoods only.
"""

from __future__ import annotations

from typing import Dict, Iterable, ItemsView, Iterator, Mapping, Optional, Set

from repro.exceptions import EmbeddingError
from repro.graph.graph import Graph, Vertex

#: Tolerance for simplex validation (sum-to-one and nonnegativity).
SIMPLEX_TOL = 1e-8


class Embedding:
    """An immutable-ish sparse point of the standard simplex.

    The class stores only strictly positive entries, so ``support()`` is
    exactly the paper's ``Sx``.  Mutation happens through
    :meth:`with_entry` / normalisation constructors rather than in-place
    writes, keeping solver state transitions explicit.
    """

    __slots__ = ("_values",)

    def __init__(
        self, values: Mapping[Vertex, float], validate: bool = True
    ) -> None:
        cleaned: Dict[Vertex, float] = {}
        for vertex, value in values.items():
            if value < 0:
                if validate and value < -SIMPLEX_TOL:
                    raise EmbeddingError(
                        f"negative weight {value} on vertex {vertex!r}"
                    )
                continue
            if value > 0:
                cleaned[vertex] = float(value)
        if validate:
            total = sum(cleaned.values())
            if abs(total - 1.0) > SIMPLEX_TOL:
                raise EmbeddingError(
                    f"embedding sums to {total!r}, expected 1"
                )
        self._values = cleaned

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def unit(cls, vertex: Vertex) -> "Embedding":
        """The vertex indicator ``e_u`` (the paper's simple init)."""
        return cls({vertex: 1.0}, validate=False)

    @classmethod
    def uniform(cls, vertices: Iterable[Vertex]) -> "Embedding":
        """Uniform weights over *vertices*."""
        members = list(vertices)
        if not members:
            raise EmbeddingError("cannot build a uniform embedding of nothing")
        share = 1.0 / len(members)
        return cls({v: share for v in members}, validate=False)

    @classmethod
    def normalized(cls, values: Mapping[Vertex, float]) -> "Embedding":
        """Scale nonnegative *values* onto the simplex (L1 normalise)."""
        positives = {v: w for v, w in values.items() if w > 0}
        total = sum(positives.values())
        if total <= 0:
            raise EmbeddingError("cannot normalise a nonpositive vector")
        return cls(
            {v: w / total for v, w in positives.items()}, validate=False
        )

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def __getitem__(self, vertex: Vertex) -> float:
        return self._values.get(vertex, 0.0)

    def get(self, vertex: Vertex, default: float = 0.0) -> float:
        return self._values.get(vertex, default)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._values

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> ItemsView[Vertex, float]:
        return self._values.items()

    def as_dict(self) -> Dict[Vertex, float]:
        """A fresh mutable copy of the positive entries."""
        return dict(self._values)

    def support(self) -> Set[Vertex]:
        """The support set ``Sx = {u | x_u > 0}``."""
        return set(self._values)

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{v!r}: {w:.4f}"
            for v, w in sorted(self._values.items(), key=lambda kv: -kv[1])[:6]
        )
        suffix = ", ..." if len(self._values) > 6 else ""
        return f"<Embedding |S|={len(self._values)} {{{entries}{suffix}}}>"

    def close_to(self, other: "Embedding", tol: float = 1e-9) -> bool:
        """Entry-wise comparison within *tol*."""
        keys = set(self._values) | set(other._values)
        return all(abs(self[k] - other[k]) <= tol for k in keys)

    # ------------------------------------------------------------------
    # algebra against a graph
    # ------------------------------------------------------------------
    def affinity(self, graph: Graph) -> float:
        """``f(x) = x^T A x`` — each edge contributes ``2 x_u x_v w``."""
        total = 0.0
        values = self._values
        for u, xu in values.items():
            if not graph.has_vertex(u):
                continue
            for v, weight in graph.neighbors(u).items():
                xv = values.get(v)
                if xv is not None:
                    total += xu * xv * weight
        # Each unordered pair was visited twice (once per endpoint), which
        # is exactly the double-sum definition of x^T A x.
        return total

    def gradient(self, graph: Graph, vertex: Vertex) -> float:
        """``grad_u f(x) = 2 (A x)_u``."""
        values = self._values
        total = 0.0
        for neighbor, weight in graph.neighbors(vertex).items():
            xv = values.get(neighbor)
            if xv is not None:
                total += weight * xv
        return 2.0 * total

    def gradient_map(
        self, graph: Graph, candidates: Optional[Iterable[Vertex]] = None
    ) -> Dict[Vertex, float]:
        """Gradients for *candidates* (default: support plus its frontier).

        Only vertices with at least one neighbour in the support can have
        a nonzero gradient, so the default candidate set is exactly the
        set the expansion stage needs to examine.
        """
        if candidates is None:
            pool: Set[Vertex] = set(self._values)
            for u in self._values:
                pool.update(graph.neighbors(u))
        else:
            pool = set(candidates)
        return {u: self.gradient(graph, u) for u in pool}

    def with_entry(self, vertex: Vertex, value: float) -> "Embedding":
        """A copy with ``x_vertex`` replaced (no renormalisation).

        The caller is responsible for keeping the total at 1 (solver
        moves always trade mass between two coordinates).
        """
        values = dict(self._values)
        if value > 0:
            values[vertex] = value
        else:
            values.pop(vertex, None)
        return Embedding(values, validate=False)

    def restricted(self, subset: Iterable[Vertex]) -> "Embedding":
        """Project onto *subset* and renormalise."""
        members = set(subset)
        kept = {v: w for v, w in self._values.items() if v in members}
        return Embedding.normalized(kept)


def validate_simplex(values: Mapping[Vertex, float], tol: float = SIMPLEX_TOL) -> None:
    """Raise :class:`EmbeddingError` unless *values* lies on the simplex."""
    total = 0.0
    for vertex, value in values.items():
        if value < -tol:
            raise EmbeddingError(f"negative weight {value} on {vertex!r}")
        total += max(value, 0.0)
    if abs(total - 1.0) > tol:
        raise EmbeddingError(f"weights sum to {total!r}, expected 1")
