"""Refinement of a KKT point into a positive-clique solution (Algorithm 4).

Theorem 5: any KKT point ``x`` whose support is *not* a positive clique
can be transformed — without decreasing the objective — into a ``y``
whose support induces a clique of ``GD+``.  The construction merges a
non-adjacent pair (``y_u += y_v; y_v = 0``) and re-converges to a local
KKT point on the shrunken support; the support strictly shrinks, so the
loop terminates.

Why it matters: the original SEA run on ``GD+`` may stop on a KKT point
supported on a non-clique; such a point is *provably suboptimal* in
``GD`` (the negative edges it hides can be optimised away), and the
positive-clique output is what gives DCSGA results their
interpretability — every pair inside the answer got strictly tighter
from ``G1`` to ``G2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.coordinate_descent import coordinate_descent
from repro.engine.registry import BackendLike, resolve_backend
from repro.graph.cliques import is_clique
from repro.graph.graph import Graph, Vertex


@dataclass
class RefinementResult:
    """Positive-clique solution produced by Algorithm 4."""

    x: Dict[Vertex, float]
    objective: float
    merges: int
    #: objective of the input KKT point, for non-decrease audits
    initial_objective: float


def _affinity(graph: Graph, x: Dict[Vertex, float]) -> float:
    total = 0.0
    for u, xu in x.items():
        for v, weight in graph.neighbors(u).items():
            xv = x.get(v)
            if xv is not None:
                total += xu * xv * weight
    return total


def _find_non_adjacent_pair(
    graph: Graph, x: Dict[Vertex, float]
) -> Optional[Tuple[Vertex, Vertex]]:
    """A support pair with no ``GD+`` edge, or None if support is a clique.

    Scans lightest-degree vertices first: a missing edge is most likely
    at a low-degree vertex, and the merge then removes the weaker vertex
    earlier.
    """
    support = sorted(x, key=lambda u: graph.unweighted_degree(u))
    for index, u in enumerate(support):
        neighbors = graph.neighbors(u)
        for v in support[index + 1 :]:
            if v not in neighbors:
                return u, v
    return None


def refine(
    graph: Graph,
    x0: Dict[Vertex, float],
    tol_scale: float = 1e-2,
    max_cd_iterations: int = 100_000,
    backend: BackendLike = "python",
) -> RefinementResult:
    """Run Algorithm 4 on *graph* (``GD+``) from the KKT point *x0*.

    Merging keeps the endpoint with the larger ``(Dx)`` value (at an
    exact KKT point both directions leave the objective unchanged —
    Theorem 5's ``D(i,j) = 0`` case — but after the first merge the
    iterate is only an approximate KKT point, so keeping the better
    endpoint is the numerically safer choice).

    *backend* is resolved through the engine registry (``"sparse"``
    runs the vectorised :func:`repro.core.sparse_solvers.refine_csr`).
    """
    return resolve_backend(backend).refine(
        graph,
        x0,
        tol_scale=tol_scale,
        max_cd_iterations=max_cd_iterations,
    )


def _refine_python(
    graph: Graph,
    x0: Dict[Vertex, float],
    tol_scale: float = 1e-2,
    max_cd_iterations: int = 100_000,
) -> RefinementResult:
    """The reference implementation behind the ``python`` backend."""
    x = {u: w for u, w in x0.items() if w > 0.0}
    if not x:
        raise ValueError("cannot refine an empty embedding")
    initial_objective = _affinity(graph, x)
    merges = 0

    while True:
        pair = _find_non_adjacent_pair(graph, x)
        if pair is None:
            break
        u, v = pair
        if _dx(graph, x, u) < _dx(graph, x, v):
            u, v = v, u
        x[u] = x.get(u, 0.0) + x.pop(v)
        support = set(x)
        result = coordinate_descent(
            graph,
            x,
            subset=support,
            tol=tol_scale / len(support),
            max_iterations=max_cd_iterations,
        )
        x = result.x
        merges += 1

    return RefinementResult(
        x=x,
        objective=_affinity(graph, x),
        merges=merges,
        initial_objective=initial_objective,
    )


def _dx(graph: Graph, x: Dict[Vertex, float], vertex: Vertex) -> float:
    total = 0.0
    for neighbor, weight in graph.neighbors(vertex).items():
        xv = x.get(neighbor)
        if xv is not None:
            total += weight * xv
    return total


def is_positive_clique_solution(gd_plus: Graph, x: Dict[Vertex, float]) -> bool:
    """Whether the support of *x* induces a clique of ``GD+``."""
    return is_clique(gd_plus, [u for u, w in x.items() if w > 0.0])
