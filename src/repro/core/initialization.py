"""Smart initialisation for NewSEA (Section V-D, Theorem 6).

For every vertex ``u`` of ``GD+``:

* ``w_u`` — an upper bound on the maximum edge weight of ``u``'s ego net
  ``GD+(T_u)`` (``T_u = {u} union N(u)``), computed in ``O(n + m)`` by
  first taking each vertex's max incident weight and then maxing that
  over ``T_u``;
* ``tau_u`` — the core number of ``u`` in ``GD+``, which caps the size of
  any clique containing ``u`` at ``tau_u + 1``;
* ``mu_u = tau_u * w_u / (tau_u + 1)`` — by Theorem 6 an upper bound on
  ``x^T D x`` for any clique-supported embedding containing ``u``.

NewSEA sorts vertices by decreasing ``mu_u`` and stops initialising as
soon as ``mu_u`` drops below the best objective found.  It is a
*heuristic*, not a pruning rule — the solver started at ``u`` may end on
a solution not containing ``u`` — but the paper reports (and our Table
VII bench confirms) that it never hurt solution quality while saving 1-3
orders of magnitude of work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.engine.registry import BackendLike, resolve_backend
from repro.graph.cores import core_numbers
from repro.graph.graph import Graph, Vertex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.graph.sparse import CSRAdjacency


@dataclass(frozen=True)
class InitializationPlan:
    """Per-vertex upper bounds and the initialisation order."""

    mu: Dict[Vertex, float]
    order: List[Vertex]
    ego_max_weight: Dict[Vertex, float]
    core_number: Dict[Vertex, int]

    def candidates_above(self, bound: float) -> int:
        """How many vertices have ``mu_u > bound`` (diagnostics)."""
        return sum(1 for value in self.mu.values() if value > bound)


def ego_max_weights(gd_plus: Graph) -> Dict[Vertex, float]:
    """``w_u``: max edge weight touching the closed neighbourhood of u.

    ``w_u = max{ D+(i, j) : i in T_u or j in T_u }`` computed as
    ``max_{v in T_u} (max incident weight of v)`` — every edge of the ego
    net has an endpoint in ``T_u``, so this dominates the ego net's max
    edge weight (it is exactly the bound the paper uses).
    """
    incident_max: Dict[Vertex, float] = {}
    for u in gd_plus.vertices():
        neighbors = gd_plus.neighbors(u)
        incident_max[u] = max(neighbors.values()) if neighbors else 0.0
    bounds: Dict[Vertex, float] = {}
    for u in gd_plus.vertices():
        best = incident_max[u]
        for v in gd_plus.neighbors(u):
            if incident_max[v] > best:
                best = incident_max[v]
        bounds[u] = best
    return bounds


def clique_affinity_upper_bound(tau: int, w: float) -> float:
    """Theorem 6 bound: ``(k-1)/k * w <= tau/(tau+1) * w`` with ``k <= tau+1``."""
    if tau <= 0 or w <= 0:
        return 0.0
    return tau * w / (tau + 1.0)


def smart_initialization_plan(
    gd_plus: Graph,
    backend: BackendLike = "python",
    adjacency: Optional["CSRAdjacency"] = None,
) -> InitializationPlan:
    """Compute ``mu_u`` for every vertex and the descending trial order.

    Ties are broken by weighted degree (denser first) and then by label
    repr for determinism.

    With ``backend="sparse"`` the ``w_u`` bounds, ``mu_u`` values and the
    trial order are all evaluated in one vectorised pass over the CSR
    arrays (``mu`` values are bitwise identical to the python backend:
    only max/division arithmetic is involved, no reordered sums).  Pass a
    prebuilt *adjacency* to skip the CSR construction (CSR-capable
    backends only — the registry enforces that centrally).
    """
    return resolve_backend(backend).initialization_plan(
        gd_plus, adjacency=adjacency
    )


def _smart_initialization_plan_python(gd_plus: Graph) -> InitializationPlan:
    """The reference implementation behind the ``python`` backend."""
    weights = ego_max_weights(gd_plus)
    cores = core_numbers(gd_plus)
    mu: Dict[Vertex, float] = {
        u: clique_affinity_upper_bound(cores.get(u, 0), weights[u])
        for u in gd_plus.vertices()
    }
    order = sorted(
        gd_plus.vertices(),
        key=lambda u: (-mu[u], -gd_plus.degree(u), repr(u)),
    )
    return InitializationPlan(
        mu=mu,
        order=order,
        ego_max_weight=weights,
        core_number={u: cores.get(u, 0) for u in gd_plus.vertices()},
    )


def _smart_initialization_plan_sparse(
    gd_plus: Graph, adjacency: Optional["CSRAdjacency"]
) -> InitializationPlan:
    """One vectorised pass over the CSR arrays for every ``mu_u``.

    ``w_u`` is two segment-max reductions over the CSR layout (incident
    max per row, then max of that over each closed neighbourhood); the
    core numbers come from the O(n + m) bucket algorithm, which is not a
    bottleneck.  The trial order is one ``lexsort`` on
    ``(-mu, -degree, index)`` — the index *is* the repr order because
    :meth:`CSRAdjacency.from_graph` sorts vertices by repr.
    """
    import numpy as np

    from repro.graph.sparse import CSRAdjacency

    adj = (
        adjacency
        if adjacency is not None
        else CSRAdjacency.from_graph(gd_plus)
    )
    n = adj.n
    if n == 0:
        return InitializationPlan(mu={}, order=[], ego_max_weight={}, core_number={})

    row_sizes = adj.unweighted_degrees()
    nonempty = np.flatnonzero(row_sizes > 0)
    incident = np.zeros(n, dtype=np.float64)
    ego = np.zeros(n, dtype=np.float64)
    if nonempty.size:
        # reduceat segments run from each listed row start to the next;
        # consecutive nonempty starts skip over empty rows exactly.
        starts = adj.indptr[nonempty]
        incident[nonempty] = np.maximum.reduceat(adj.data, starts)
        ego[nonempty] = np.maximum(
            incident[nonempty],
            np.maximum.reduceat(incident[adj.indices], starts),
        )

    cores = core_numbers(gd_plus)
    tau = np.fromiter(
        (cores.get(v, 0) for v in adj.vertices), dtype=np.float64, count=n
    )
    mu = np.where((tau > 0) & (ego > 0), tau * ego / (tau + 1.0), 0.0)

    order_idx = np.lexsort((np.arange(n), -adj.degrees(), -mu))
    vertices = adj.vertices
    return InitializationPlan(
        mu={vertices[i]: float(mu[i]) for i in range(n)},
        order=[vertices[int(i)] for i in order_idx],
        ego_max_weight={vertices[i]: float(ego[i]) for i in range(n)},
        core_number={vertices[i]: int(tau[i]) for i in range(n)},
    )
