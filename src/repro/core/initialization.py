"""Smart initialisation for NewSEA (Section V-D, Theorem 6).

For every vertex ``u`` of ``GD+``:

* ``w_u`` — an upper bound on the maximum edge weight of ``u``'s ego net
  ``GD+(T_u)`` (``T_u = {u} union N(u)``), computed in ``O(n + m)`` by
  first taking each vertex's max incident weight and then maxing that
  over ``T_u``;
* ``tau_u`` — the core number of ``u`` in ``GD+``, which caps the size of
  any clique containing ``u`` at ``tau_u + 1``;
* ``mu_u = tau_u * w_u / (tau_u + 1)`` — by Theorem 6 an upper bound on
  ``x^T D x`` for any clique-supported embedding containing ``u``.

NewSEA sorts vertices by decreasing ``mu_u`` and stops initialising as
soon as ``mu_u`` drops below the best objective found.  It is a
*heuristic*, not a pruning rule — the solver started at ``u`` may end on
a solution not containing ``u`` — but the paper reports (and our Table
VII bench confirms) that it never hurt solution quality while saving 1-3
orders of magnitude of work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.cores import core_numbers
from repro.graph.graph import Graph, Vertex


@dataclass(frozen=True)
class InitializationPlan:
    """Per-vertex upper bounds and the initialisation order."""

    mu: Dict[Vertex, float]
    order: List[Vertex]
    ego_max_weight: Dict[Vertex, float]
    core_number: Dict[Vertex, int]

    def candidates_above(self, bound: float) -> int:
        """How many vertices have ``mu_u > bound`` (diagnostics)."""
        return sum(1 for value in self.mu.values() if value > bound)


def ego_max_weights(gd_plus: Graph) -> Dict[Vertex, float]:
    """``w_u``: max edge weight touching the closed neighbourhood of u.

    ``w_u = max{ D+(i, j) : i in T_u or j in T_u }`` computed as
    ``max_{v in T_u} (max incident weight of v)`` — every edge of the ego
    net has an endpoint in ``T_u``, so this dominates the ego net's max
    edge weight (it is exactly the bound the paper uses).
    """
    incident_max: Dict[Vertex, float] = {}
    for u in gd_plus.vertices():
        neighbors = gd_plus.neighbors(u)
        incident_max[u] = max(neighbors.values()) if neighbors else 0.0
    bounds: Dict[Vertex, float] = {}
    for u in gd_plus.vertices():
        best = incident_max[u]
        for v in gd_plus.neighbors(u):
            if incident_max[v] > best:
                best = incident_max[v]
        bounds[u] = best
    return bounds


def clique_affinity_upper_bound(tau: int, w: float) -> float:
    """Theorem 6 bound: ``(k-1)/k * w <= tau/(tau+1) * w`` with ``k <= tau+1``."""
    if tau <= 0 or w <= 0:
        return 0.0
    return tau * w / (tau + 1.0)


def smart_initialization_plan(gd_plus: Graph) -> InitializationPlan:
    """Compute ``mu_u`` for every vertex and the descending trial order.

    Ties are broken by weighted degree (denser first) and then by label
    repr for determinism.
    """
    weights = ego_max_weights(gd_plus)
    cores = core_numbers(gd_plus)
    mu: Dict[Vertex, float] = {
        u: clique_affinity_upper_bound(cores.get(u, 0), weights[u])
        for u in gd_plus.vertices()
    }
    order = sorted(
        gd_plus.vertices(),
        key=lambda u: (-mu[u], -gd_plus.degree(u), repr(u)),
    )
    return InitializationPlan(
        mu=mu,
        order=order,
        ego_max_weight=weights,
        core_number={u: cores.get(u, 0) for u in gd_plus.vertices()},
    )
