"""SEACD — Shrink-and-Expansion with Coordinate Descent (Algorithm 3).

The DCSGA solver alternates:

1. **Shrink**: drive the iterate to a local KKT point on its current
   support with 2-coordinate descent
   (:func:`repro.core.coordinate_descent.coordinate_descent`), using the
   *correct* gradient-gap convergence condition;
2. **Expansion**: add the vertices whose gradient exceeds
   ``lambda = 2 f(x)`` and step toward them
   (:func:`repro.core.expansion.expansion_step`).

The loop ends when no vertex qualifies for expansion, i.e. the iterate
satisfies the global KKT conditions (Eq. 7); Theorem 4 guarantees
convergence.  Statistics are recorded so the benchmark harness can
reproduce Table VII (expansion-error counts are always zero for SEACD —
asserted by the test suite — unlike the loose-condition SEA baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.coordinate_descent import coordinate_descent
from repro.core.expansion import expansion_step
from repro.engine.registry import BackendLike, resolve_backend
from repro.graph.graph import Graph, Vertex


@dataclass
class SEACDStats:
    """Counters for one SEACD run."""

    shrink_calls: int = 0
    shrink_iterations: int = 0
    expansions: int = 0
    expansion_errors: int = 0
    objective_trace: List[float] = field(default_factory=list)


@dataclass
class SEACDResult:
    """A KKT point of ``max f(x)`` and its bookkeeping."""

    x: Dict[Vertex, float]
    objective: float
    converged: bool
    stats: SEACDStats


def seacd(
    graph: Graph,
    x0: Dict[Vertex, float],
    tol_scale: float = 1e-2,
    max_expansions: int = 10_000,
    max_cd_iterations: int = 100_000,
    backend: BackendLike = "python",
) -> SEACDResult:
    """Run Algorithm 3 from the initial embedding *x0*.

    Parameters
    ----------
    graph:
        The graph to maximise affinity on.  The DCSGA pipeline passes
        ``GD+`` (Theorem 5 lets it ignore negative edges as long as the
        Refinement step runs afterwards); the algorithm itself also
        accepts signed graphs.
    x0:
        Starting embedding, typically ``{u: 1.0}``.
    tol_scale:
        Shrink-stage precision: converged when the gradient gap is below
        ``tol_scale / |S|`` (paper: ``1e-2 * 1/|S|``).
    max_expansions / max_cd_iterations:
        Safety caps; hitting one returns ``converged=False``.
    backend:
        A registered backend name (``"python"`` is the reference
        dict-of-dicts implementation, ``"sparse"`` the vectorised CSR
        kernels) or a :class:`~repro.engine.registry.SolverBackend`
        instance; dispatched through the engine registry.
    """
    return resolve_backend(backend).seacd(
        graph,
        x0,
        tol_scale=tol_scale,
        max_expansions=max_expansions,
        max_cd_iterations=max_cd_iterations,
    )


def _seacd_python(
    graph: Graph,
    x0: Dict[Vertex, float],
    tol_scale: float = 1e-2,
    max_expansions: int = 10_000,
    max_cd_iterations: int = 100_000,
) -> SEACDResult:
    """The reference implementation behind the ``python`` backend."""
    from repro.obs.trace import current_tracer

    tracer = current_tracer()
    stats = SEACDStats()
    x = {u: w for u, w in x0.items() if w > 0.0}
    if not x:
        raise ValueError("initial embedding has empty support")

    converged = False
    objective = 0.0
    while stats.expansions < max_expansions:
        support = set(x)
        # Explicit stage spans: this loop calls the CD / expansion
        # kernels directly, so the registry-level wrapper never sees
        # the Algorithm 3 shrink/expand alternation.
        with tracer.span("seacd.shrink", support=len(support)):
            shrink = coordinate_descent(
                graph,
                x,
                subset=support,
                tol=tol_scale / len(support),
                max_iterations=max_cd_iterations,
            )
        stats.shrink_calls += 1
        stats.shrink_iterations += shrink.iterations
        x = shrink.x
        objective = shrink.objective
        stats.objective_trace.append(objective)

        with tracer.span("seacd.expand"):
            step = expansion_step(graph, x, objective=objective)
        if not step.expanded:
            converged = True
            break
        if step.decreased:
            stats.expansion_errors += 1
        x = step.x
        objective = step.objective_after
        stats.expansions += 1

    return SEACDResult(
        x=x,
        objective=objective,
        converged=converged,
        stats=stats,
    )


def seacd_from_vertex(
    graph: Graph,
    vertex: Vertex,
    tol_scale: float = 1e-2,
    max_expansions: int = 10_000,
    backend: BackendLike = "python",
) -> SEACDResult:
    """Convenience: SEACD initialised at the indicator ``e_vertex``."""
    if not graph.has_vertex(vertex):
        raise KeyError(f"vertex {vertex!r} not in graph")
    return seacd(
        graph,
        {vertex: 1.0},
        tol_scale=tol_scale,
        max_expansions=max_expansions,
        backend=backend,
    )
