"""Span-based tracing: where a solve actually spends its time.

The repo spans five execution layers (engine → batch → stream →
sessions → service), and before this module the only timing anybody
got back was a flat ``solve_seconds``.  A :class:`Tracer` records a
tree of nested :class:`Span` intervals — ``perf_counter`` start/end,
a name, optional attributes — and derives from it the *phase
breakdown* every scale-out decision needs: how much of a NewSEA solve
was preparation, peeling, shrink/expand rounds, refinement.

Design rules:

* **No-op by default, zero overhead.**  The ambient tracer is a
  module-level :class:`NoopTracer` whose :meth:`~Tracer.span` returns
  one shared do-nothing context manager — hot paths (the streaming
  engine's per-step solves, every un-profiled benchmark) pay one
  attribute read and one no-op ``with``.  Nothing allocates, nothing
  is retained.
* **Opt-in per scope.**  :func:`recording` activates a fresh recording
  tracer for a ``with`` block (thread/context-local via
  :mod:`contextvars`); the CLI ``--profile``/``--json`` paths, the
  batch workers, and the service solve route each wrap exactly the
  work they want attributed.  A recording tracer belongs to one
  thread — spans nest via a plain stack.
* **Spans are data.**  :meth:`Span.to_dict` and
  :func:`phase_totals` (self-time aggregation: a span's own duration
  minus its children's, so totals sum to the root duration without
  double counting) make the tree shippable across process boundaries
  — the batch pool pickles phase dicts back with each result.

Span-name convention (what :func:`phase_of` keys on)::

    solve                        the envelope root (self time = driver)
    prepare.gd_plus / prepare.csr / prepare.fingerprint
                                 PreparedGraph build steps  -> "prepare"
    backend.<capability>         TracingBackend calls       -> "<capability>"
    seacd.shrink / seacd.expand  Algorithm 3 stages         -> "shrink"/"expand"
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "phase_of",
    "phase_totals",
    "recording",
    "render_trace",
]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace identifier."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed interval in a trace tree."""

    __slots__ = ("name", "attributes", "start", "end", "children")

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Seconds from start to end (to *now* while still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    @property
    def self_seconds(self) -> float:
        """Duration not covered by child spans (never negative)."""
        covered = sum(child.duration for child in self.children)
        return max(0.0, self.duration - covered)

    def set(self, **attributes: Any) -> None:
        """Attach attributes to an open (or closed) span."""
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready recursive form (durations in seconds)."""
        return {
            "name": self.name,
            "seconds": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} {self.duration * 1e3:.3f}ms "
            f"children={len(self.children)}>"
        )


class _SpanHandle:
    """The context manager one ``tracer.span(...)`` call returns."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._span.end = time.perf_counter()
        self._tracer._pop(self._span)


class _NoopSpan:
    """Shared do-nothing span: what the no-op tracer hands out."""

    __slots__ = ()
    name = ""
    attributes: Dict[str, Any] = {}
    duration = 0.0
    self_seconds = 0.0

    def set(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_SHARED_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records a tree of spans for one traced scope (one thread).

    ``is_noop`` is the fast-path discriminator: instrumentation sites
    read it (or just call :meth:`span`, which is equally cheap on the
    no-op) and skip any work that only matters when recording.
    """

    is_noop = False

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Any:
        """Open a nested span: ``with tracer.span("backend.peel"): ...``"""
        return _SpanHandle(self, Span(name, attributes))

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exits out of order (a caller kept a handle across a
        # generator boundary): unwind to the matching span.
        while self._stack:
            if self._stack.pop() is span:
                break

    # -- reading -------------------------------------------------------
    @property
    def root(self) -> Optional[Span]:
        """The first root span (the usual single-solve shape)."""
        return self.roots[0] if self.roots else None

    def phase_totals(self) -> Dict[str, float]:
        """Self-time seconds per phase across the whole trace."""
        return phase_totals(self.roots)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "spans": [span.to_dict() for span in self.roots],
        }

    def render(self) -> str:
        """The human tree (see :func:`render_trace`)."""
        return render_trace(self)


class NoopTracer(Tracer):
    """The zero-overhead default: records nothing, allocates nothing."""

    is_noop = True

    def __init__(self) -> None:
        self.trace_id = ""
        self.roots = []
        self._stack = []

    def span(self, name: str, **attributes: Any) -> Any:
        return _SHARED_NOOP_SPAN


#: The ambient default tracer — shared, stateless, never recording.
NOOP_TRACER = NoopTracer()

_ACTIVE: ContextVar[Tracer] = ContextVar("repro_tracer", default=NOOP_TRACER)


def current_tracer() -> Tracer:
    """The tracer active in this context (default: the no-op)."""
    return _ACTIVE.get()


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Make *tracer* the ambient tracer for the ``with`` block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


@contextmanager
def recording(trace_id: Optional[str] = None) -> Iterator[Tracer]:
    """Activate a fresh recording :class:`Tracer` for the block."""
    with activate(Tracer(trace_id)) as tracer:
        yield tracer


# ----------------------------------------------------------------------
# phase derivation
# ----------------------------------------------------------------------
def phase_of(name: str) -> str:
    """Map a span name onto its phase bucket (see module docstring)."""
    if name == "solve":
        return "driver"
    if name.startswith("prepare"):
        return "prepare"
    if "." in name:
        return name.split(".", 1)[1]
    return name


def phase_totals(spans: List[Span]) -> Dict[str, float]:
    """Self-time seconds per phase, summed over *spans* and children.

    Self-time aggregation means every wall-clock second is attributed
    exactly once: the totals sum to the root spans' combined duration,
    however deeply capability calls nest (``new_sea`` → per-vertex
    ``seacd``/``refine`` → ``shrink``/``expand`` rounds).
    """
    totals: Dict[str, float] = {}
    stack = list(spans)
    while stack:
        span = stack.pop()
        phase = phase_of(span.name)
        totals[phase] = totals.get(phase, 0.0) + span.self_seconds
        stack.extend(span.children)
    return dict(sorted(totals.items()))


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.3f}ms"


def _merged_children(span: Span) -> List[Dict[str, Any]]:
    """Sibling spans merged by name: NewSEA runs hundreds of per-vertex
    seacd/refine rounds, and the tree stays readable only aggregated."""
    merged: Dict[str, Dict[str, Any]] = {}
    for child in span.children:
        entry = merged.get(child.name)
        if entry is None:
            entry = {"name": child.name, "seconds": 0.0, "count": 0,
                     "proto": child}
            merged[child.name] = entry
        entry["seconds"] += child.duration
        entry["count"] += 1
    return list(merged.values())


def _render_span(
    span: Span, lines: List[str], prefix: str, is_last: bool, top: bool
) -> None:
    connector = "" if top else ("└─ " if is_last else "├─ ")
    label = f"{span.name:<28}" if top else span.name
    lines.append(
        f"{prefix}{connector}{label}  {_format_seconds(span.duration)}"
    )
    child_prefix = prefix if top else prefix + ("   " if is_last else "│  ")
    entries = _merged_children(span)
    for index, entry in enumerate(entries):
        last = index == len(entries) - 1
        if entry["count"] == 1:
            _render_span(entry["proto"], lines, child_prefix, last, False)
        else:
            connector2 = "└─ " if last else "├─ "
            lines.append(
                f"{child_prefix}{connector2}{entry['name']}  "
                f"{_format_seconds(entry['seconds'])}  ×{entry['count']}"
            )


def render_trace(tracer: Tracer) -> str:
    """The ``repro --profile`` tree: spans, merged siblings, phase sums.

    The final two lines give the phase totals (self-time aggregation)
    and their sum — by construction equal to the traced wall clock, so
    a reader can confirm the attribution is complete at a glance.
    """
    lines: List[str] = [f"trace {tracer.trace_id or '(no-op)'}"]
    for span in tracer.roots:
        _render_span(span, lines, "", True, True)
    totals = tracer.phase_totals()
    if totals:
        parts = " ".join(
            f"{phase}={seconds:.6f}s" for phase, seconds in totals.items()
        )
        lines.append(f"phase totals: {parts}")
        lines.append(f"phase sum: {sum(totals.values()):.6f}s")
    return "\n".join(lines)
