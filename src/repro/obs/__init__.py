"""Observability: span tracing, phase profiling, structured telemetry.

Public surface of the ``repro.obs`` package:

* :mod:`repro.obs.trace` — spans, tracers, the ambient-context
  machinery, and phase aggregation (``repro --profile`` rendering);
* :mod:`repro.obs.backend` — the registry-level
  :class:`~repro.obs.backend.TracingBackend` wrapper;
* :mod:`repro.obs.prometheus` — ``/metrics`` text exposition derived
  from the service's JSON snapshot;
* :mod:`repro.obs.logs` — JSON access / slow-query logging on stdlib
  :mod:`logging`, silent by default.
"""

from repro.obs.backend import TracingBackend, maybe_wrap, wrap_backend
from repro.obs.logs import (
    ACCESS_LOGGER,
    SLOW_LOGGER,
    JsonFormatter,
    configure_logging,
)
from repro.obs.prometheus import parse_exposition, render_exposition
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
    new_trace_id,
    phase_of,
    phase_totals,
    recording,
    render_trace,
)

__all__ = [
    "ACCESS_LOGGER",
    "JsonFormatter",
    "NOOP_TRACER",
    "NoopTracer",
    "SLOW_LOGGER",
    "Span",
    "Tracer",
    "TracingBackend",
    "activate",
    "configure_logging",
    "current_tracer",
    "maybe_wrap",
    "new_trace_id",
    "parse_exposition",
    "phase_of",
    "phase_totals",
    "recording",
    "render_exposition",
    "render_trace",
    "wrap_backend",
]
