"""TracingBackend — the registry-level instrumentation wrapper.

Every solver capability call in the library flows through
:func:`repro.engine.registry.resolve_backend`.  When a recording
:class:`~repro.obs.trace.Tracer` is active, the registry hands back
the resolved backend wrapped in a :class:`TracingBackend`: each
capability call (``peel``, ``shrink``, ``expand``, ``seacd``,
``refine``, ``new_sea``, ``initialization_plan``, ``replicator``,
``vertex_solver``, ``mean_graph``) opens a ``backend.<capability>``
span around the inner call — per-capability call counts and durations
for free, on any backend, builtin or user-registered, with zero edits
to the kernels themselves.

The wrapper is transparent everywhere that matters: ``name``,
``supports_shared_adjacency``, availability, and capability
introspection all delegate to the wrapped backend (a wrapper must
never claim a capability the inner backend lacks — ``has_capability``
on the base class keys on method overrides, which the wrapper
overrides wholesale).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.engine.registry import SolverBackend
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.affinity.replicator import ReplicatorResult
    from repro.core.coordinate_descent import CDResult
    from repro.core.expansion import ExpansionStep
    from repro.core.initialization import InitializationPlan
    from repro.core.newsea import DCSGAResult, VertexSolver
    from repro.core.refinement import RefinementResult
    from repro.core.seacd import SEACDResult
    from repro.graph.graph import Graph, Vertex
    from repro.graph.sparse import CSRAdjacency
    from repro.peeling.greedy import PeelResult

__all__ = ["TracingBackend", "wrap_backend"]


class TracingBackend(SolverBackend):
    """Per-capability span recording around any :class:`SolverBackend`."""

    def __init__(self, inner: SolverBackend, tracer: Tracer) -> None:
        self.inner = inner
        self.tracer = tracer

    # -- transparent identity ------------------------------------------
    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def supports_shared_adjacency(self) -> bool:  # type: ignore[override]
        return self.inner.supports_shared_adjacency

    def available(self) -> bool:
        return self.inner.available()

    def missing_reason(self) -> str:
        return self.inner.missing_reason()

    def has_capability(self, capability: str) -> bool:
        return self.inner.has_capability(capability)

    def check_adjacency(self, adjacency: Optional["CSRAdjacency"]) -> None:
        self.inner.check_adjacency(adjacency)

    def __repr__(self) -> str:
        return f"<TracingBackend around {self.inner!r}>"

    # -- traced capabilities -------------------------------------------
    def peel(
        self,
        graph: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "PeelResult":
        with self.tracer.span("backend.peel", backend=self.inner.name):
            return self.inner.peel(graph, adjacency)

    def shrink(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        subset: Iterable["Vertex"],
        tol: float,
        max_iterations: int = 100_000,
    ) -> "CDResult":
        with self.tracer.span("backend.shrink", backend=self.inner.name):
            return self.inner.shrink(
                graph, x, subset, tol, max_iterations=max_iterations
            )

    def expand(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        objective: Optional[float] = None,
    ) -> "ExpansionStep":
        with self.tracer.span("backend.expand", backend=self.inner.name):
            return self.inner.expand(graph, x, objective=objective)

    def seacd(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        max_cd_iterations: int = 100_000,
    ) -> "SEACDResult":
        with self.tracer.span("backend.seacd", backend=self.inner.name):
            return self.inner.seacd(
                graph,
                x0,
                tol_scale=tol_scale,
                max_expansions=max_expansions,
                max_cd_iterations=max_cd_iterations,
            )

    def refine(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_cd_iterations: int = 100_000,
    ) -> "RefinementResult":
        with self.tracer.span("backend.refine", backend=self.inner.name):
            return self.inner.refine(
                graph,
                x0,
                tol_scale=tol_scale,
                max_cd_iterations=max_cd_iterations,
            )

    def new_sea(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        plan: Optional["InitializationPlan"] = None,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "DCSGAResult":
        with self.tracer.span("backend.new_sea", backend=self.inner.name):
            return self.inner.new_sea(
                gd_plus,
                tol_scale=tol_scale,
                max_expansions=max_expansions,
                plan=plan,
                adjacency=adjacency,
            )

    def vertex_solver(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "VertexSolver":
        # The closure itself does the work; building it is bookkeeping.
        with self.tracer.span(
            "backend.vertex_solver", backend=self.inner.name
        ):
            return self.inner.vertex_solver(
                gd_plus,
                tol_scale=tol_scale,
                max_expansions=max_expansions,
                adjacency=adjacency,
            )

    def initialization_plan(
        self,
        gd_plus: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "InitializationPlan":
        with self.tracer.span(
            "backend.initialization_plan", backend=self.inner.name
        ):
            return self.inner.initialization_plan(gd_plus, adjacency)

    def replicator(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        rule: str = "objective",
        tol: float = 1e-6,
        max_iterations: int = 100_000,
    ) -> "ReplicatorResult":
        with self.tracer.span("backend.replicator", backend=self.inner.name):
            return self.inner.replicator(
                graph, x0, rule=rule, tol=tol, max_iterations=max_iterations
            )

    def mean_graph(self, graphs: List["Graph"]) -> "Graph":
        with self.tracer.span("backend.mean_graph", backend=self.inner.name):
            return self.inner.mean_graph(graphs)


def wrap_backend(backend: SolverBackend, tracer: Tracer) -> SolverBackend:
    """Wrap *backend* for *tracer*, idempotently.

    Re-resolving inside an already-traced call (the python NewSEA
    driver resolves per-vertex ``seacd``/``refine`` through the module
    entry points) must not stack wrappers for the same tracer.
    """
    if isinstance(backend, TracingBackend) and backend.tracer is tracer:
        return backend
    return TracingBackend(backend, tracer)


def maybe_wrap(backend: SolverBackend) -> SolverBackend:
    """The registry hook: wrap only when the ambient tracer records."""
    from repro.obs.trace import current_tracer

    tracer = current_tracer()
    if tracer.is_noop:
        return backend
    return wrap_backend(backend, tracer)
