"""Prometheus text exposition, rendered from the metrics JSON snapshot.

The service has served a JSON counter blob on ``/metrics`` since PR 5,
and existing tests pin its shape byte-for-byte — so the Prometheus
form is *derived from the same snapshot dict*, never maintained in
parallel: one source of truth, two representations, selected by
content negotiation (``Accept: text/plain`` / ``?format=prometheus``).

Only the subset of the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ the
service needs is emitted: ``counter`` and ``gauge`` families plus a
``summary``-style quantile pair for the latency window, each preceded
by ``# HELP`` / ``# TYPE``.  :func:`parse_exposition` is the
round-trip check the tests and the obs-smoke job use — it enforces
the grammar rules that matter (TYPE before samples, consistent family
names, float-parsable values).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "render_exposition",
    "render_multi_exposition",
    "parse_exposition",
]

_PREFIX = "repro"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    # Integral values print as integers — the conventional exposition
    # form for counters.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Writer:
    """Accumulates families; guarantees grouped, HELP/TYPE-led output.

    Samples are collected per family and emitted grouped in :meth:`text`
    — the exposition format forbids interleaving a family's samples —
    so the cluster router can render several per-worker snapshots into
    one writer (each stamped with its ``{"worker": "<id>"}`` labels via
    *extra_labels*) and still produce a single valid scrape.
    """

    def __init__(
        self, extra_labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.extra_labels = dict(extra_labels or {})
        self._order: List[str] = []
        self._families: Dict[str, Dict[str, Any]] = {}

    def family(
        self,
        name: str,
        kind: str,
        help_text: str,
        samples: List[Tuple[Dict[str, str], float]],
    ) -> None:
        if not samples:
            return
        entry = self._families.get(name)
        if entry is None:
            entry = {"kind": kind, "help": help_text, "samples": []}
            self._families[name] = entry
            self._order.append(name)
        for labels, value in samples:
            entry["samples"].append(({**self.extra_labels, **labels}, value))

    def text(self) -> str:
        lines: List[str] = []
        for name in self._order:
            entry = self._families[name]
            lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['kind']}")
            for labels, value in entry["samples"]:
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape_label(text)}"'
                        for key, text in sorted(labels.items())
                    )
                    lines.append(
                        f"{name}{{{rendered}}} {_format_value(value)}"
                    )
                else:
                    lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def render_exposition(
    snapshot: Mapping[str, Any],
    extra_labels: Optional[Mapping[str, str]] = None,
) -> str:
    """The ``/metrics`` JSON snapshot as Prometheus text exposition.

    *extra_labels* (e.g. ``{"worker": "2"}``) are merged into every
    sample's label set — the multi-worker router uses this to expose
    per-worker series under one scrape.
    """
    w = _Writer(extra_labels)
    _render_into(w, snapshot)
    return w.text()


def render_multi_exposition(
    labeled_snapshots: List[Tuple[Dict[str, str], Mapping[str, Any]]],
) -> str:
    """Several labelled snapshots as one valid exposition.

    The cluster's ``/metrics`` renders each worker's snapshot with its
    ``worker`` label into one shared writer, keeping every family's
    samples grouped under a single HELP/TYPE header as the format
    requires.
    """
    w = _Writer()
    for labels, snapshot in labeled_snapshots:
        w.extra_labels = dict(labels)
        _render_into(w, snapshot)
    w.extra_labels = {}
    return w.text()


def _render_into(w: _Writer, snapshot: Mapping[str, Any]) -> None:
    p = _PREFIX
    w.family(
        f"{p}_uptime_seconds", "gauge",
        "Seconds since the service process started.",
        [({}, float(snapshot["uptime_seconds"]))],
    )
    requests = snapshot["requests"]
    w.family(
        f"{p}_requests_total", "counter",
        "Requests handled, by route template.",
        [({"route": route}, float(count))
         for route, count in requests["by_route"].items()],
    )
    w.family(
        f"{p}_responses_total", "counter",
        "Responses sent, by HTTP status.",
        [({"status": status}, float(count))
         for status, count in requests["by_status"].items()],
    )
    queries = snapshot["queries"]
    w.family(
        f"{p}_queries_total", "counter",
        "Compute outcomes (solve / batch / replay / session events).",
        [({"outcome": outcome}, float(queries[outcome]))
         for outcome in ("ok", "error", "timeout", "rejected")],
    )
    w.family(
        f"{p}_queue_depth", "gauge",
        "Requests admitted but not yet picked up by a consumer.",
        [({}, float(queries["pending"]))],
    )
    cache = snapshot["cache"]
    w.family(
        f"{p}_result_cache_lookups_total", "counter",
        "Content-addressed result cache lookups, by outcome.",
        [({"outcome": "hit"}, float(cache["hits"])),
         ({"outcome": "miss"}, float(cache["misses"]))],
    )
    warm = snapshot["warm"]
    w.family(
        f"{p}_warm_prepared", "gauge",
        "PreparedGraph instances resident in the warm LRU.",
        [({}, float(warm["prepared"]))],
    )
    w.family(
        f"{p}_warm_evictions_total", "counter",
        "Warm LRU evictions since start.",
        [({}, float(warm["evictions"]))],
    )
    latency = snapshot["latency"]
    w.family(
        f"{p}_query_latency_seconds", "summary",
        "End-to-end compute latency over the recent window "
        "(nearest-rank quantiles).",
        [({"quantile": "0.5"}, float(latency["p50_seconds"])),
         ({"quantile": "0.95"}, float(latency["p95_seconds"]))],
    )
    w.family(
        f"{p}_query_latency_observations_total", "counter",
        "Latency observations ever recorded.",
        [({}, float(latency["observations"]))],
    )
    loop = snapshot.get("loop")
    if loop is not None:
        w.family(
            f"{p}_event_loop_lag_seconds", "gauge",
            "Most recent event-loop scheduling lag probe.",
            [({}, float(loop["lag_seconds"]))],
        )
        w.family(
            f"{p}_event_loop_lag_max_seconds", "gauge",
            "Worst event-loop lag observed since start.",
            [({}, float(loop["lag_max_seconds"]))],
        )
    phases = snapshot.get("solve_phases")
    if phases:
        w.family(
            f"{p}_solve_phase_seconds_total", "counter",
            "Traced solve time attributed to each pipeline phase.",
            [({"phase": phase}, float(entry["seconds"]))
             for phase, entry in phases.items()],
        )
        w.family(
            f"{p}_solve_phase_calls_total", "counter",
            "Traced solves contributing to each phase bucket.",
            [({"phase": phase}, float(entry["calls"]))
             for phase, entry in phases.items()],
        )
    sessions = snapshot.get("sessions")
    if sessions is not None:
        w.family(
            f"{p}_sessions_active", "gauge",
            "Resident stream sessions.",
            [({}, float(sessions["active"]))],
        )
        w.family(
            f"{p}_session_events_total", "counter",
            "Events ingested across all sessions since start.",
            [({}, float(sessions["events"]))],
        )
        w.family(
            f"{p}_session_alerts_total", "counter",
            "Alerts emitted across all sessions since start.",
            [({}, float(sessions["alerts"]))],
        )


def parse_exposition(
    text: str,
) -> Dict[str, Dict[str, Any]]:
    """Parse exposition *text*; raise ``ValueError`` on grammar breaks.

    Returns ``{family: {"type": kind, "samples": {sample_line_name_and
    _labels: value}}}`` — enough for tests to assert types and values.
    Enforced: every sample belongs to a family whose ``# TYPE`` came
    first (summaries also own their ``_count``/``_sum`` suffixes),
    values parse as floats, label blocks are well-formed.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                raise ValueError(f"malformed TYPE line: {line!r}")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "summary", "histogram"):
                raise ValueError(f"unknown metric type {kind!r}")
            families[name] = {"type": kind, "samples": {}}
            continue
        if line.startswith("#"):
            raise ValueError(f"unknown comment line: {line!r}")
        # sample: name[{labels}] value
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {line!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(
                f"unparsable sample value in line: {line!r}"
            ) from None
        base = name_part.split("{", 1)[0]
        family: Optional[str] = None
        for candidate in (base, base.rsplit("_", 1)[0]):
            if candidate in families:
                family = candidate
                break
        if family is None:
            raise ValueError(
                f"sample {base!r} has no preceding # TYPE family"
            )
        if "{" in name_part and not name_part.endswith("}"):
            raise ValueError(f"malformed label block in line: {line!r}")
        families[family]["samples"][name_part] = value
    return families
