"""Structured JSON logging on stdlib :mod:`logging`.

The service emits two kinds of records — access lines (one per HTTP
request, with request ID, route, status, duration) and slow-query
lines (any compute call past a configurable threshold).  Both ride
ordinary :class:`logging.LogRecord` objects carrying their fields in
``record.__dict__`` via ``extra=``; :class:`JsonFormatter` serialises
whatever extras are present into one JSON object per line.

Default behaviour is **silent**: the loggers are created with no
handlers and ``propagate`` left on, so unless the embedding app (or
``repro serve --access-log``) configures a handler, nothing reaches
the terminal — the PR-5 smoke jobs and doctests observe byte-identical
output.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any, Dict, Optional

__all__ = [
    "ACCESS_LOGGER",
    "SLOW_LOGGER",
    "JsonFormatter",
    "configure_logging",
]

#: Logger names — children of ``repro`` so one handler covers both.
ACCESS_LOGGER = "repro.service.access"
SLOW_LOGGER = "repro.service.slow"

#: LogRecord attributes that are plumbing, not payload.
_RESERVED = frozenset(
    logging.LogRecord(
        "", 0, "", 0, "", (), None
    ).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created or time.time(), 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    level: str = "info",
    stream: Optional[Any] = None,
) -> logging.Handler:
    """Attach a JSON handler to the ``repro`` logger tree.

    Called by ``repro serve --access-log`` / ``--log-level``; library
    code never calls this, keeping the silent default.  Returns the
    handler so callers (tests) can detach it again.
    """
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper(), logging.INFO))
    return handler
