"""Max-flow substrate and Goldberg's exact densest-subgraph algorithm.

Built from scratch because the paper's baseline landscape relies on
[Goldberg 1984]: densest subgraph with positive weights is polynomial
(max-flow), which is exactly what negative weights break (Theorem 1).
"""

from repro.flow.dinic import FlowNetwork, max_flow, min_cut_side, min_st_cut_value
from repro.flow.goldberg import densest_subgraph, max_density_value
from repro.flow.push_relabel import max_flow_push_relabel

__all__ = [
    "FlowNetwork",
    "max_flow",
    "max_flow_push_relabel",
    "min_cut_side",
    "min_st_cut_value",
    "densest_subgraph",
    "max_density_value",
]
