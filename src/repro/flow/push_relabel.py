"""Push-relabel maximum flow (FIFO, with the gap heuristic).

A second max-flow backend next to :mod:`repro.flow.dinic`.  Goldberg's
densest-subgraph reduction [12] was originally formulated on push-relabel
(Goldberg wrote both); keeping both engines lets the test suite
cross-validate them and lets Goldberg's algorithm pick a backend.

Implementation notes:

* FIFO active-vertex queue, ``O(V^3)`` worst case;
* the *gap heuristic*: when some label ``h`` has no vertices, every
  vertex with label in ``(h, n)`` is lifted to ``n + 1`` (unreachable),
  a large practical win on cut-style networks;
* works on the same arc-list representation as Dinic
  (:class:`repro.flow.dinic.FlowNetwork`), mutating residual capacities
  in place so :func:`repro.flow.dinic.min_cut_side` applies unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.flow.dinic import FlowNetwork, Node


def max_flow_push_relabel(
    network: FlowNetwork, source: Node, sink: Node, tol: float = 1e-12
) -> float:
    """Max flow via FIFO push-relabel; returns the flow value.

    Residual capacities are mutated in place, exactly like
    :func:`repro.flow.dinic.max_flow`.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    nodes = network._nodes
    if source not in nodes or sink not in nodes:
        raise KeyError("source/sink not in network")
    n = len(nodes)
    ids = dict(nodes)
    out_arcs: List[List[int]] = [[] for _ in range(n)]
    for node, arcs in network._out.items():
        out_arcs[ids[node]] = arcs
    head = network._head
    capacity = network._capacity
    s, t = ids[source], ids[sink]

    height = [0] * n
    excess = [0.0] * n
    count_at_height: Dict[int, int] = {0: n}
    height[s] = n
    count_at_height[0] -= 1
    count_at_height[n] = count_at_height.get(n, 0) + 1

    queue: deque = deque()

    def push(u: int, arc: int) -> None:
        v = head[arc]
        amount = min(excess[u], capacity[arc])
        capacity[arc] -= amount
        capacity[arc ^ 1] += amount
        excess[u] -= amount
        if excess[v] <= tol and v != s and v != t:
            queue.append(v)
        excess[v] += amount

    # Saturate all source arcs.
    for arc in out_arcs[s]:
        if capacity[arc] > tol:
            excess[s] += capacity[arc]
            push(s, arc)

    pointer = [0] * n
    while queue:
        u = queue.popleft()
        if u == s or u == t:
            continue
        while excess[u] > tol:
            if pointer[u] == len(out_arcs[u]):
                # Relabel: lift u just above its lowest admissible
                # neighbour; apply the gap heuristic first.
                old = height[u]
                count_at_height[old] -= 1
                if count_at_height[old] == 0 and old < n:
                    # Gap: heights above `old` (below n) are disconnected.
                    for w in range(n):
                        if old < height[w] < n and w != s:
                            count_at_height[height[w]] -= 1
                            height[w] = n + 1
                            count_at_height[n + 1] = (
                                count_at_height.get(n + 1, 0) + 1
                            )
                lowest = None
                for arc in out_arcs[u]:
                    if capacity[arc] > tol:
                        h = height[head[arc]]
                        if lowest is None or h < lowest:
                            lowest = h
                if lowest is None:
                    # No residual arcs at all: excess is stuck (can only
                    # happen with zero excess up to tolerance).
                    height[u] = n + 1
                    count_at_height[n + 1] = count_at_height.get(n + 1, 0) + 1
                    break
                height[u] = lowest + 1
                count_at_height[height[u]] = (
                    count_at_height.get(height[u], 0) + 1
                )
                pointer[u] = 0
                if height[u] > 2 * n:
                    break
            else:
                arc = out_arcs[u][pointer[u]]
                v = head[arc]
                if capacity[arc] > tol and height[u] == height[v] + 1:
                    push(u, arc)
                else:
                    pointer[u] += 1
    return excess[t]
