"""Dinic's maximum-flow algorithm on capacitated directed networks.

This is the substrate for Goldberg's exact densest-subgraph algorithm
([12] in the paper), which the library uses as the polynomial-time oracle
for densest subgraph on graphs with *positive* weights (e.g. on ``GD+``).

The implementation is the classic BFS-level / DFS-blocking-flow scheme
with the current-arc optimisation, giving ``O(V^2 E)`` in general and much
better behaviour on the unit-ish networks produced by the densest
subgraph reduction.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, List, Set, Tuple

Node = Hashable


class FlowNetwork:
    """A directed flow network with float capacities.

    Arcs are stored in a flat edge list; each arc ``e`` and its reverse
    ``e ^ 1`` are adjacent in the list, the standard trick that makes
    residual updates O(1).
    """

    __slots__ = ("_head", "_capacity", "_out", "_nodes")

    def __init__(self) -> None:
        self._head: List[int] = []
        self._capacity: List[float] = []
        self._out: Dict[Node, List[int]] = {}
        self._nodes: Dict[Node, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Register *node* (no-op if present)."""
        if node not in self._nodes:
            self._nodes[node] = len(self._nodes)
            self._out[node] = []

    def add_arc(self, u: Node, v: Node, capacity: float) -> int:
        """Add a directed arc ``u -> v``; returns its arc id.

        A zero-capacity reverse arc is added automatically.  Negative
        capacities are rejected.
        """
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity} on arc {u}->{v}")
        self.add_node(u)
        self.add_node(v)
        arc_id = len(self._head)
        self._head.append(self._node_id(v))
        self._capacity.append(capacity)
        self._out[u].append(arc_id)
        self._head.append(self._node_id(u))
        self._capacity.append(0.0)
        self._out[v].append(arc_id + 1)
        return arc_id

    def add_undirected(self, u: Node, v: Node, capacity: float) -> int:
        """Add an undirected edge: both directions get *capacity*."""
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity} on edge {u}--{v}")
        self.add_node(u)
        self.add_node(v)
        arc_id = len(self._head)
        self._head.append(self._node_id(v))
        self._capacity.append(capacity)
        self._out[u].append(arc_id)
        self._head.append(self._node_id(u))
        self._capacity.append(capacity)
        self._out[v].append(arc_id + 1)
        return arc_id

    def _node_id(self, node: Node) -> int:
        return self._nodes[node]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_arcs(self) -> int:
        """Number of arcs including automatically added reverse arcs."""
        return len(self._head)

    def residual_capacity(self, arc_id: int) -> float:
        """Remaining capacity of *arc_id* after the last max-flow call."""
        return self._capacity[arc_id]


def max_flow(
    network: FlowNetwork, source: Node, sink: Node, tol: float = 1e-12
) -> float:
    """Run Dinic's algorithm; returns the max-flow value.

    The network's residual capacities are mutated in place (so a min cut
    can be read off afterwards with :func:`min_cut_side`).  *tol* guards
    float underflow: arcs with residual below *tol* count as saturated.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    nodes = network._nodes
    if source not in nodes or sink not in nodes:
        raise KeyError("source/sink not in network")
    ids = {node: i for node, i in nodes.items()}
    n = len(ids)
    out_arcs: List[List[int]] = [[] for _ in range(n)]
    for node, arcs in network._out.items():
        out_arcs[ids[node]] = arcs
    head = network._head
    capacity = network._capacity
    s, t = ids[source], ids[sink]
    total = 0.0

    while True:
        # BFS to build the level graph.
        level = [-1] * n
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in out_arcs[u]:
                v = head[arc]
                if capacity[arc] > tol and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        if level[t] < 0:
            return total
        # DFS blocking flow with the current-arc optimisation.
        pointer = [0] * n

        def push(u: int, limit: float) -> float:
            if u == t:
                return limit
            while pointer[u] < len(out_arcs[u]):
                arc = out_arcs[u][pointer[u]]
                v = head[arc]
                if capacity[arc] > tol and level[v] == level[u] + 1:
                    sent = push(v, min(limit, capacity[arc]))
                    if sent > tol:
                        capacity[arc] -= sent
                        capacity[arc ^ 1] += sent
                        return sent
                pointer[u] += 1
            return 0.0

        while True:
            sent = push(s, math.inf)
            if sent <= tol:
                break
            total += sent


def min_cut_side(
    network: FlowNetwork, source: Node, tol: float = 1e-12
) -> Set[Node]:
    """Source side of a minimum cut after :func:`max_flow` has run.

    Returns the set of nodes reachable from *source* in the residual
    network; by max-flow/min-cut duality this is a minimum s-t cut.
    """
    nodes = network._nodes
    reverse = {i: node for node, i in nodes.items()}
    ids = dict(nodes)
    out_arcs: Dict[int, List[int]] = {
        ids[node]: arcs for node, arcs in network._out.items()
    }
    head = network._head
    capacity = network._capacity
    start = ids[source]
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for arc in out_arcs[u]:
            v = head[arc]
            if capacity[arc] > tol and v not in seen:
                seen.add(v)
                stack.append(v)
    return {reverse[i] for i in seen}


def min_st_cut_value(
    edges: List[Tuple[Node, Node, float]], source: Node, sink: Node
) -> Tuple[float, Set[Node]]:
    """Convenience: min s-t cut of a directed arc list.

    Returns ``(cut_value, source_side)``.  Used by tests to cross-check
    Dinic against brute-force enumeration on small networks.
    """
    network = FlowNetwork()
    network.add_node(source)
    network.add_node(sink)
    for u, v, cap in edges:
        network.add_arc(u, v, cap)
    value = max_flow(network, source, sink)
    side = min_cut_side(network, source)
    return value, side
