"""Goldberg's exact maximum-density subgraph via min-cut binary search.

Reference [12] of the paper: on a graph with **positive** edge weights,
the subgraph maximising average degree can be found in polynomial time.
The paper contrasts this with DCSAD, which is NP-hard once negative
weights appear; the library keeps this algorithm as

* the exact oracle on the positive part ``GD+`` (used to validate the
  2-approximation property of greedy peeling in the test suite), and
* a building block for data-dependent quality bounds.

Construction (for a guess ``g`` of *half* the paper-convention density):
source ``s -> u`` with capacity ``d_u`` (weighted degree), ``u -> t`` with
capacity ``2 g``, and each undirected edge becomes a pair of arcs with the
edge weight.  Writing ``w(S)`` for the once-counted induced weight, the
minimum cut equals ``2 W - 2 max_S (w(S) - g |S|)``, so a cut below
``2 W`` certifies a subgraph with ``w(S)/|S| > g``.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.flow.dinic import FlowNetwork, max_flow, min_cut_side
from repro.graph.graph import Graph, Vertex

_SOURCE = ("__goldberg_source__",)
_SINK = ("__goldberg_sink__",)


def _feasible_set(graph: Graph, guess: float) -> Optional[Set[Vertex]]:
    """Vertices ``S`` with once-density strictly above *guess*, or None."""
    total_once = graph.total_weight()
    network = FlowNetwork()
    network.add_node(_SOURCE)
    network.add_node(_SINK)
    for u in graph.vertices():
        network.add_arc(_SOURCE, u, graph.degree(u))
        network.add_arc(u, _SINK, 2.0 * guess)
    for u, v, weight in graph.edges():
        network.add_undirected(u, v, weight)
    cut_value = max_flow(network, _SOURCE, _SINK)
    slack = 2.0 * total_once - cut_value
    # Guard float noise: require a strictly positive improvement margin.
    if slack <= 1e-9 * max(1.0, abs(total_once)):
        return None
    side = min_cut_side(network, _SOURCE)
    side.discard(_SOURCE)
    if not side:
        return None
    return side


def densest_subgraph(
    graph: Graph, precision: Optional[float] = None
) -> Tuple[Set[Vertex], float]:
    """Exact densest subgraph w.r.t. the paper's average degree ``rho``.

    Returns ``(S, rho(S))`` with ``rho(S) = W(S)/|S|`` (total degree, each
    edge twice).  All edge weights must be positive.

    *precision* is the binary-search resolution on the once-counted
    density; the default ``1/(n(n-1))`` is exact for integer weights (two
    distinct densities cannot be closer).  For float weights the result is
    optimal within ``2 * precision`` of the true average degree, and the
    returned set is always a genuinely measured (not interpolated)
    candidate.
    """
    for _, _, weight in graph.edges():
        if weight <= 0:
            raise ValueError(
                "Goldberg's algorithm requires positive edge weights; "
                "run it on GD+, not GD"
            )
    n = graph.num_vertices
    if n == 0:
        raise ValueError("densest subgraph of an empty graph is undefined")
    if graph.num_edges == 0:
        some_vertex = next(iter(graph.vertices()))
        return {some_vertex}, 0.0

    if precision is None:
        precision = 1.0 / (n * (n - 1)) if n > 1 else 1e-9

    low = 0.0
    high = graph.total_weight()
    best: Set[Vertex] = set()
    # Seed with the max-weight edge so `best` is never empty.
    heaviest = graph.max_weight_edge()
    assert heaviest is not None
    best = {heaviest[0], heaviest[1]}

    while high - low > precision:
        guess = (low + high) / 2.0
        feasible = _feasible_set(graph, guess)
        if feasible is None:
            high = guess
        else:
            low = guess
            best = feasible

    density = graph.total_degree(best) / len(best)
    # The seeded edge may beat the last feasible cut at coarse precision.
    current = _density_or_zero(graph, best)
    seed_density = _density_or_zero(graph, {heaviest[0], heaviest[1]})
    if seed_density > current:
        best = {heaviest[0], heaviest[1]}
        density = seed_density
    return set(best), density


def _density_or_zero(graph: Graph, subset: Set[Vertex]) -> float:
    if not subset:
        return 0.0
    return graph.total_degree(subset) / len(subset)


def max_density_value(graph: Graph, precision: Optional[float] = None) -> float:
    """Just the optimal average degree (paper convention)."""
    _, density = densest_subgraph(graph, precision)
    return density
