"""Greedy peeling (Algorithm 1): Charikar's greedy on signed weights."""

from repro.peeling.greedy import Backend, PeelResult, greedy_peel, peel_density_profile

__all__ = ["Backend", "PeelResult", "greedy_peel", "peel_density_profile"]
