"""Greedy peeling for densest subgraph (Algorithm 1 of the paper).

Charikar's greedy [7]: repeatedly delete the vertex of minimum induced
weighted degree and keep the best prefix by average degree.  Two points
distinguish this implementation from the textbook one:

* **Signed weights.**  On difference graphs, deleting a vertex can
  *increase* a neighbour's degree (negative incident edge), so the
  priority structure must support both key directions.  All backends do:
  an addressable :class:`~repro.structures.heap.IndexedHeap`, the
  :class:`~repro.structures.segment_tree.MinSegmentTree` the paper
  suggests, and a vectorised ``"sparse"`` backend (NumPy degree array
  over a :class:`~repro.graph.sparse.CSRAdjacency` plus a lazy binary
  heap).  On positive-weight graphs the greedy retains its classic
  2-approximation guarantee; on signed graphs it is a heuristic (DCSAD is
  ``O(n^{1-eps})``-inapproximable, Corollary 1).
* **Density convention.**  Average degree is the paper's
  ``rho(S) = W(S)/|S|`` with ``W`` the total degree (each edge twice).

Complexity: ``O((n + m) log n)`` with every backend.  The backends can
differ on exact ties (equal minimum degrees pop in backend-specific
order), so on degenerate inputs the returned subsets may legitimately
differ while having equal density.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.engine.registry import PeelBackend as Backend
from repro.engine.registry import resolve_backend
from repro.graph.graph import Graph, Vertex
from repro.structures.heap import IndexedHeap
from repro.structures.segment_tree import MinSegmentTree

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.graph.sparse import CSRAdjacency

#: ``"python"`` is accepted as an alias of ``"heap"`` (the default
#: pure-Python priority structure), so callers can use the same
#: backend vocabulary across every solver layer; the names resolve
#: through the engine registry (:mod:`repro.engine.registry`).


@dataclass(frozen=True)
class PeelResult:
    """Outcome of a greedy peel.

    Attributes
    ----------
    subset:
        The best prefix ``S`` (maximum average degree seen).
    density:
        ``rho(S) = W(S)/|S|`` of that prefix.
    order:
        Vertices in removal order (first removed first).
    densities:
        ``densities[k]`` is the average degree of the graph after the
        first ``k`` removals, i.e. the density profile of the whole peel
        (``densities[0]`` is the full graph).  Useful for the analysis
        plots and for tests.
    """

    subset: Set[Vertex]
    density: float
    order: List[Vertex] = field(repr=False)
    densities: List[float] = field(repr=False)


def greedy_peel(
    graph: Graph,
    backend: Backend = "heap",
    adjacency: Optional["CSRAdjacency"] = None,
) -> PeelResult:
    """Run Algorithm 1 on *graph* and return the best prefix.

    *backend* resolves through the engine registry; *adjacency* hands a
    CSR-capable backend the graph's prebuilt frozen adjacency (the
    :class:`~repro.engine.prepared.PreparedGraph` sharing contract).

    Raises ``ValueError`` on an empty graph (Algorithm 2 handles the
    empty/edgeless special cases before calling this).
    """
    if graph.num_vertices == 0:
        raise ValueError("cannot peel an empty graph")
    return resolve_backend(backend).peel(graph, adjacency=adjacency)


def _peel_heap(graph: Graph) -> PeelResult:
    degrees: Dict[Vertex, float] = {
        u: graph.degree(u) for u in graph.vertices()
    }
    heap: IndexedHeap = IndexedHeap(degrees.items())
    return _peel_loop(graph, degrees, heap_pop=heap.pop_min, heap_adjust=heap.adjust, alive=lambda u: u in heap)


def _peel_segment_tree(graph: Graph) -> PeelResult:
    vertices = list(graph.vertices())
    slot_of = {u: i for i, u in enumerate(vertices)}
    degrees: Dict[Vertex, float] = {u: graph.degree(u) for u in vertices}
    tree = MinSegmentTree([degrees[u] for u in vertices])

    def pop_min():
        slot, key = tree.argmin()
        tree.deactivate(slot)
        return vertices[slot], key

    def adjust(u: Vertex, delta: float) -> None:
        tree.adjust(slot_of[u], delta)

    def alive(u: Vertex) -> bool:
        return tree.is_active(slot_of[u])

    return _peel_loop(graph, degrees, heap_pop=pop_min, heap_adjust=adjust, alive=alive)


def _peel_loop(graph, degrees, heap_pop, heap_adjust, alive) -> PeelResult:
    remaining = set(degrees)
    total_degree = sum(degrees.values())  # = 2 * once-counted weight
    size = len(remaining)

    order: List[Vertex] = []
    densities: List[float] = []
    best_density = total_degree / size
    best_size = size
    densities.append(best_density)

    while size > 1:
        vertex, _ = heap_pop()
        order.append(vertex)
        remaining.discard(vertex)
        for neighbor, weight in graph.neighbors(vertex).items():
            if alive(neighbor):
                heap_adjust(neighbor, -weight)
                # Each removed undirected edge contributes twice to the
                # total degree: once at each endpoint.
                total_degree -= 2.0 * weight
        size -= 1
        density = total_degree / size
        densities.append(density)
        if density > best_density:
            best_density = density
            best_size = size

    # The last vertex (density 0 on its own) completes the order.
    vertex, _ = heap_pop()
    order.append(vertex)

    # Reconstruct the best prefix: all vertices except the first
    # (n - best_size) removed.
    n = len(order)
    removed_count = n - best_size
    subset = set(order[removed_count:])
    return PeelResult(
        subset=subset,
        density=best_density,
        order=order,
        densities=densities,
    )


def _peel_sparse(
    graph: Graph, adjacency: Optional["CSRAdjacency"] = None
) -> PeelResult:
    """Vectorised peel: CSR degree array + lazy heap.

    Degrees are initialised as one row-sum and updated with O(deg)
    NumPy row slices; the priority queue is a lazy ``heapq`` (an entry
    is stale unless its key equals the vertex's current degree), which
    handles both key directions of signed weights without an
    addressable structure.  *adjacency* supplies the graph's prebuilt
    CSR (validated cheaply against vertex/edge counts) so shared
    preparations skip the freeze.
    """
    import numpy as np

    from repro.exceptions import InputMismatchError
    from repro.graph.sparse import CSRAdjacency

    if adjacency is not None:
        if (
            adjacency.n != graph.num_vertices
            or adjacency.num_edges != graph.num_edges
        ):
            raise InputMismatchError(
                "shared adjacency does not match the peeled graph; "
                "it was built from another graph"
            )
        adj = adjacency
    else:
        adj = CSRAdjacency.from_graph(graph)
    n = adj.n
    degrees = adj.degrees().copy()
    alive = np.ones(n, dtype=bool)
    heap = [(float(degrees[i]), i) for i in range(n)]
    heapq.heapify(heap)

    def pop_min() -> int:
        while True:
            key, vertex = heapq.heappop(heap)
            if alive[vertex] and key == degrees[vertex]:
                return vertex

    total_degree = float(degrees.sum())
    size = n
    order_idx: List[int] = []
    densities: List[float] = []
    best_density = total_degree / size
    best_size = size
    densities.append(best_density)

    while size > 1:
        vertex = pop_min()
        alive[vertex] = False
        order_idx.append(vertex)
        neighbors, weights = adj.row(vertex)
        live = alive[neighbors]
        touched = neighbors[live]
        removed = weights[live]
        degrees[touched] -= removed
        for neighbor in touched:
            heapq.heappush(heap, (float(degrees[neighbor]), int(neighbor)))
        # Each removed undirected edge contributes twice to the total
        # degree: once at each endpoint.
        total_degree -= 2.0 * float(removed.sum())
        size -= 1
        density = total_degree / size
        densities.append(density)
        if density > best_density:
            best_density = density
            best_size = size

    # The last vertex (density 0 on its own) completes the order.
    order_idx.append(pop_min())

    order = [adj.vertices[i] for i in order_idx]
    removed_count = n - best_size
    subset = set(order[removed_count:])
    return PeelResult(
        subset=subset,
        density=best_density,
        order=order,
        densities=densities,
    )


def peel_density_profile(graph: Graph) -> Sequence[float]:
    """Just the density-after-k-removals profile of a greedy peel."""
    return greedy_peel(graph).densities
