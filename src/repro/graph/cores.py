"""k-core decomposition (Batagelj–Zaversnik bucket algorithm).

The smart-initialisation heuristic of NewSEA (Section V-D) needs the core
number ``tau_u`` of every vertex of ``GD+``: any clique containing ``u``
has at most ``tau_u + 1`` vertices, which bounds the achievable affinity
``mu_u = tau_u * w_u / (tau_u + 1)`` (Theorem 6).

Core numbers here are with respect to the *unweighted* degree (number of
incident edges), exactly as in [Rossi et al. 2014] which the paper cites
for the bound.  The bucket implementation runs in ``O(n + m)``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.graph import Graph, Vertex


def core_numbers(graph: Graph) -> Dict[Vertex, int]:
    """Core number of every vertex.

    The core number of ``u`` is the largest ``k`` such that ``u`` belongs
    to a subgraph in which every vertex has at least ``k`` neighbours.
    Degrees are *clamped at the current peel level*: once level ``k`` is
    being processed, a neighbour's tracked degree never drops below ``k``
    — that clamp is what makes the one-pass bucket scan correct.
    """
    degrees: Dict[Vertex, int] = {
        u: graph.unweighted_degree(u) for u in graph.vertices()
    }
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: List[List[Vertex]] = [[] for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].append(vertex)

    core: Dict[Vertex, int] = {}
    current_degree: Dict[Vertex, int] = dict(degrees)
    removed: set = set()
    for degree in range(max_degree + 1):
        bucket = buckets[degree]
        # The bucket grows while being processed: vertices whose clamped
        # degree drops to `degree` are appended behind the cursor.
        index = 0
        while index < len(bucket):
            vertex = bucket[index]
            index += 1
            if vertex in removed or current_degree[vertex] != degree:
                continue
            core[vertex] = degree
            removed.add(vertex)
            for neighbor in graph.neighbors(vertex):
                if neighbor in removed:
                    continue
                if current_degree[neighbor] > degree:
                    new_degree = current_degree[neighbor] - 1
                    current_degree[neighbor] = new_degree
                    if new_degree == degree:
                        bucket.append(neighbor)
                    else:
                        buckets[new_degree].append(neighbor)
    return core


def degeneracy(graph: Graph) -> int:
    """The degeneracy of the graph: the maximum core number (0 if empty)."""
    cores = core_numbers(graph)
    return max(cores.values(), default=0)


def degeneracy_ordering(graph: Graph) -> List[Vertex]:
    """Vertices ordered by repeatedly removing a minimum-degree vertex.

    This ordering makes Bron–Kerbosch with pivoting run in
    ``O(d * 3^(d/3))`` per vertex where ``d`` is the degeneracy; it is
    used by :mod:`repro.graph.cliques`.
    """
    degrees: Dict[Vertex, int] = {
        u: graph.unweighted_degree(u) for u in graph.vertices()
    }
    if not degrees:
        return []
    max_degree = max(degrees.values())
    buckets: List[List[Vertex]] = [[] for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].append(vertex)
    order: List[Vertex] = []
    removed: set = set()
    current_degree = dict(degrees)
    cursor = 0
    while len(order) < len(degrees):
        # Find the lowest non-empty bucket; removing a vertex can lower a
        # neighbour's degree below the cursor, which steps it back.
        while cursor <= max_degree and not buckets[cursor]:
            cursor += 1
        vertex = buckets[cursor].pop()
        # Stale entries: a vertex appears once per degree value it passed
        # through; only the entry matching its live degree counts.
        if vertex in removed or current_degree[vertex] != cursor:
            continue
        order.append(vertex)
        removed.add(vertex)
        for neighbor in graph.neighbors(vertex):
            if neighbor in removed:
                continue
            new_degree = current_degree[neighbor] - 1
            current_degree[neighbor] = new_degree
            buckets[new_degree].append(neighbor)
            if new_degree < cursor:
                cursor = new_degree
    return order


def k_core(graph: Graph, k: int) -> Graph:
    """The maximal induced subgraph with all unweighted degrees >= k."""
    cores = core_numbers(graph)
    members = {u for u, c in cores.items() if c >= k}
    return graph.subgraph(members)
