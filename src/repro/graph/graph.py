"""Undirected weighted graph with dict-of-dict adjacency.

This is the substrate every algorithm in the library runs on.  Design
notes:

* **Signed weights are first-class.**  Difference graphs ``GD = G2 - G1``
  carry negative edge weights; nothing in this class assumes positivity.
  A weight of exactly ``0`` means *no edge* (matching the paper's
  ``ED = {(u, v) | D(u, v) != 0}``), so ``add_edge(u, v, 0.0)`` removes
  any existing edge instead of storing it.
* **No self loops.**  Affinity matrices in the paper have zero diagonals;
  attempting to add a self loop raises :class:`~repro.exceptions.SelfLoopError`.
* **Vertices are arbitrary hashables** (author names, keywords, ints).

The *total degree* convention follows Eq. (1) of the paper: ``W(S)``
counts each undirected edge twice (it is the sum of induced weighted
degrees), so the average degree of a k-clique with unit weights is
``k - 1``.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import EdgeNotFound, SelfLoopError, VertexNotFound

Vertex = Hashable
Edge = Tuple[Vertex, Vertex, float]


class Graph:
    """An undirected graph with real (possibly negative) edge weights."""

    __slots__ = ("_adj", "_num_edges")

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex, float]],
        vertices: Iterable[Vertex] = (),
    ) -> "Graph":
        """Build a graph from ``(u, v, weight)`` triples.

        *vertices* may list extra isolated vertices.  Repeated edges
        overwrite earlier weights (last write wins).
        """
        graph = cls()
        for vertex in vertices:
            graph.add_vertex(vertex)
        for u, v, weight in edges:
            graph.add_edge(u, v, weight)
        return graph

    @classmethod
    def from_unweighted_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        vertices: Iterable[Vertex] = (),
    ) -> "Graph":
        """Build a graph with unit weights from ``(u, v)`` pairs."""
        return cls.from_edges(((u, v, 1.0) for u, v in edges), vertices)

    def copy(self) -> "Graph":
        """Return an independent deep copy of the adjacency structure."""
        clone = Graph()
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"<Graph n={self.num_vertices} m={self.num_edges}>"

    # ------------------------------------------------------------------
    # counts
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices, ``n`` in the paper."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``m`` in the paper."""
        return self._num_edges

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Add an isolated vertex (no-op if it already exists)."""
        self._adj.setdefault(vertex, {})

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Add every vertex in *vertices*."""
        for vertex in vertices:
            self.add_vertex(vertex)

    def add_edge(self, u: Vertex, v: Vertex, weight: float) -> None:
        """Set the weight of edge ``(u, v)``, creating endpoints as needed.

        A weight of exactly 0 deletes the edge: zero-weight entries would
        silently distort edge counts and density statistics.  Non-finite
        weights are rejected — a single NaN silently poisons every
        density computation downstream.
        """
        if u == v:
            raise SelfLoopError(u)
        if weight != weight or weight in (float("inf"), float("-inf")):
            raise ValueError(
                f"edge ({u!r}, {v!r}) has non-finite weight {weight!r}"
            )
        if weight == 0:
            self.add_vertex(u)
            self.add_vertex(v)
            self.discard_edge(u, v)
            return
        adj = self._adj
        adj.setdefault(u, {})
        adj.setdefault(v, {})
        if v not in adj[u]:
            self._num_edges += 1
        adj[u][v] = weight
        adj[v][u] = weight

    def increment_edge(self, u: Vertex, v: Vertex, delta: float) -> None:
        """Add *delta* to the weight of ``(u, v)`` (creating it if absent).

        If the resulting weight is exactly 0 the edge is removed,
        preserving the ``weight != 0`` invariant.
        """
        self.add_edge(u, v, self.weight(u, v) + delta)

    def remove_edge(self, u: Vertex, v: Vertex) -> float:
        """Delete edge ``(u, v)`` and return its weight."""
        try:
            weight = self._adj[u].pop(v)
        except KeyError:
            raise EdgeNotFound(u, v) from None
        del self._adj[v][u]
        self._num_edges -= 1
        return weight

    def discard_edge(self, u: Vertex, v: Vertex) -> Optional[float]:
        """Delete edge ``(u, v)`` if present; return its weight or None."""
        if u in self._adj and v in self._adj[u]:
            return self.remove_edge(u, v)
        return None

    def remove_vertex(self, vertex: Vertex) -> None:
        """Delete *vertex* and all incident edges."""
        try:
            neighbors = self._adj.pop(vertex)
        except KeyError:
            raise VertexNotFound(vertex) from None
        for neighbor in neighbors:
            del self._adj[neighbor][vertex]
        self._num_edges -= len(neighbors)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_vertex(self, vertex: Vertex) -> bool:
        """Whether *vertex* is present."""
        return vertex in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether edge ``(u, v)`` is present (weight nonzero)."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Vertex, v: Vertex, default: float = 0.0) -> float:
        """Weight of edge ``(u, v)``; *default* (0 = no edge) if absent."""
        if u in self._adj:
            return self._adj[u].get(v, default)
        return default

    def neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        """Read-only mapping ``neighbor -> weight`` for *vertex*.

        This is the paper's ``N_D(i)`` (with weights attached); mutating
        the graph while holding the mapping invalidates it.
        """
        try:
            return self._adj[vertex]
        except KeyError:
            raise VertexNotFound(vertex) from None

    def degree(self, vertex: Vertex) -> float:
        """Weighted degree: sum of incident edge weights (can be negative)."""
        return sum(self.neighbors(vertex).values())

    def unweighted_degree(self, vertex: Vertex) -> int:
        """Number of incident edges."""
        return len(self.neighbors(vertex))

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over vertices."""
        return iter(self._adj)

    def vertex_set(self) -> Set[Vertex]:
        """A fresh set of all vertices."""
        return set(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once as ``(u, v, w)``.

        The first endpoint is the one whose adjacency list is visited
        first; duplicates are suppressed with a seen-set per vertex pair.
        """
        seen: Set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v, weight in nbrs.items():
                if v not in seen:
                    yield u, v, weight
            seen.add(u)

    def total_weight(self) -> float:
        """Sum of undirected edge weights (each edge counted **once**)."""
        return sum(weight for _, _, weight in self.edges())

    def total_degree(self, subset: Optional[Iterable[Vertex]] = None) -> float:
        """The paper's ``W(S)``: sum of induced weighted degrees.

        Each undirected edge inside the induced subgraph counts **twice**
        (Eq. 1).  With ``subset=None`` the whole vertex set is used.
        """
        if subset is None:
            return 2.0 * self.total_weight()
        members = set(subset)
        for vertex in members:
            if vertex not in self._adj:
                raise VertexNotFound(vertex)
        total = 0.0
        for u in members:
            for v, weight in self._adj[u].items():
                if v in members:
                    total += weight
        return total

    def max_weight_edge(self) -> Optional[Edge]:
        """The edge of maximum weight, or None for an edgeless graph."""
        best: Optional[Edge] = None
        for edge in self.edges():
            if best is None or edge[2] > best[2]:
                best = edge
        return best

    def min_weight_edge(self) -> Optional[Edge]:
        """The edge of minimum weight, or None for an edgeless graph."""
        best: Optional[Edge] = None
        for edge in self.edges():
            if best is None or edge[2] < best[2]:
                best = edge
        return best

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, subset: Iterable[Vertex]) -> "Graph":
        """Induced subgraph ``G(S)`` as a new independent graph."""
        members = set(subset)
        result = Graph()
        for vertex in members:
            if vertex not in self._adj:
                raise VertexNotFound(vertex)
            result.add_vertex(vertex)
        for u in members:
            for v, weight in self._adj[u].items():
                if v in members and not result.has_edge(u, v):
                    result.add_edge(u, v, weight)
        return result

    def positive_part(self) -> "Graph":
        """The paper's ``GD+``: keep only edges of strictly positive weight.

        All vertices are retained (the vertex set is shared between
        ``GD`` and ``GD+`` in the paper).
        """
        result = Graph()
        result.add_vertices(self._adj)
        for u, v, weight in self.edges():
            if weight > 0:
                result.add_edge(u, v, weight)
        return result

    def negated(self) -> "Graph":
        """Flip the sign of every edge weight (Emerging <-> Disappearing)."""
        result = Graph()
        result.add_vertices(self._adj)
        for u, v, weight in self.edges():
            result.add_edge(u, v, -weight)
        return result

    def map_weights(self, func) -> "Graph":
        """Apply ``func(weight) -> new_weight`` to every edge.

        Edges mapped to 0 are dropped, preserving the nonzero invariant.
        Used by the Discrete setting and heavy-edge capping.
        """
        result = Graph()
        result.add_vertices(self._adj)
        for u, v, weight in self.edges():
            new_weight = func(weight)
            if new_weight != 0:
                result.add_edge(u, v, new_weight)
        return result

    def relabeled(self, mapping: Mapping[Vertex, Vertex]) -> "Graph":
        """Return a copy with vertices renamed through *mapping*.

        Vertices absent from *mapping* keep their labels.  The mapping
        must be injective on the vertex set.
        """
        rename = {u: mapping.get(u, u) for u in self._adj}
        if len(set(rename.values())) != len(rename):
            raise ValueError("relabeling mapping is not injective")
        result = Graph()
        result.add_vertices(rename.values())
        for u, v, weight in self.edges():
            result.add_edge(rename[u], rename[v], weight)
        return result
