"""Read-only induced-subgraph views.

:meth:`repro.graph.graph.Graph.subgraph` copies the induced subgraph; for
large graphs the analysis code often only needs to *read* ``G(S)``
(densities, degrees, clique checks).  :class:`SubgraphView` provides that
without copying: it filters the parent's adjacency on the fly.

The view exposes the read-only subset of the :class:`Graph` protocol used
by :mod:`repro.analysis.metrics`, :mod:`repro.graph.components` and
:mod:`repro.graph.cliques`, so those functions accept either.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Set

from repro.exceptions import VertexNotFound
from repro.graph.graph import Edge, Graph, Vertex


class _FilteredNeighbors(Mapping[Vertex, float]):
    """Lazy ``neighbor -> weight`` mapping restricted to a vertex subset."""

    __slots__ = ("_base", "_members")

    def __init__(self, base: Mapping[Vertex, float], members: Set[Vertex]):
        self._base = base
        self._members = members

    def __getitem__(self, vertex: Vertex) -> float:
        if vertex in self._members:
            return self._base[vertex]
        raise KeyError(vertex)

    def __iter__(self) -> Iterator[Vertex]:
        return (v for v in self._base if v in self._members)

    def __len__(self) -> int:
        return sum(1 for v in self._base if v in self._members)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._members and vertex in self._base

    def get(self, vertex: Vertex, default: float = 0.0) -> float:  # type: ignore[override]
        if vertex in self._members:
            return self._base.get(vertex, default)
        return default


class SubgraphView:
    """A read-only view of ``G(S)`` sharing storage with the parent graph.

    Mutating the parent graph while a view is alive gives undefined
    results, mirroring the usual dict-view semantics.
    """

    __slots__ = ("_graph", "_members")

    def __init__(self, graph: Graph, subset: Iterable[Vertex]) -> None:
        self._graph = graph
        self._members = set(subset)
        for vertex in self._members:
            if not graph.has_vertex(vertex):
                raise VertexNotFound(vertex)

    # ------------------------------------------------------------------
    # protocol mirrored from Graph (read-only subset)
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._members

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    @property
    def num_vertices(self) -> int:
        return len(self._members)

    @property
    def num_edges(self) -> int:
        return sum(1 for _ in self.edges())

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._members

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return (
            u in self._members
            and v in self._members
            and self._graph.has_edge(u, v)
        )

    def weight(self, u: Vertex, v: Vertex, default: float = 0.0) -> float:
        if u in self._members and v in self._members:
            return self._graph.weight(u, v, default)
        return default

    def neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        if vertex not in self._members:
            raise VertexNotFound(vertex)
        return _FilteredNeighbors(self._graph.neighbors(vertex), self._members)

    def degree(self, vertex: Vertex) -> float:
        return sum(self.neighbors(vertex).values())

    def unweighted_degree(self, vertex: Vertex) -> int:
        return len(self.neighbors(vertex))

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._members)

    def vertex_set(self) -> Set[Vertex]:
        return set(self._members)

    def edges(self) -> Iterator[Edge]:
        seen: Set[Vertex] = set()
        for u in self._members:
            for v, weight in self._graph.neighbors(u).items():
                if v in self._members and v not in seen:
                    yield u, v, weight
            seen.add(u)

    def total_weight(self) -> float:
        return sum(weight for _, _, weight in self.edges())

    def total_degree(self, subset: Optional[Iterable[Vertex]] = None) -> float:
        if subset is None:
            return 2.0 * self.total_weight()
        members = set(subset)
        if not members <= self._members:
            missing = next(iter(members - self._members))
            raise VertexNotFound(missing)
        return self._graph.total_degree(members)

    def materialize(self) -> Graph:
        """Copy the view into an independent :class:`Graph`."""
        return self._graph.subgraph(self._members)

    def __repr__(self) -> str:
        return f"<SubgraphView n={len(self._members)}>"
