"""Connected components of (signed) weighted graphs.

Both DCS problems prefer connected subgraphs in the difference graph
(Properties 1 and 2 of the paper); line 9 of Algorithm 2 keeps only the
densest connected component of the greedy solution.  Connectivity here is
with respect to *nonzero* edges — an edge with negative weight still
connects its endpoints.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.graph.graph import Graph, Vertex


def connected_components(
    graph: Graph, subset: Optional[Iterable[Vertex]] = None
) -> List[Set[Vertex]]:
    """Connected components of ``graph`` (or of the induced ``G(S)``).

    Returns a list of vertex sets, ordered by first-visited vertex.  An
    iterative DFS is used so deep paths cannot overflow the recursion
    stack on large graphs.
    """
    if subset is None:
        members = graph.vertex_set()
    else:
        members = set(subset)
    components: List[Set[Vertex]] = []
    unvisited = set(members)
    for start in members:
        if start not in unvisited:
            continue
        component: Set[Vertex] = set()
        stack = [start]
        unvisited.discard(start)
        while stack:
            vertex = stack.pop()
            component.add(vertex)
            for neighbor in graph.neighbors(vertex):
                if neighbor in unvisited:
                    unvisited.discard(neighbor)
                    stack.append(neighbor)
        components.append(component)
    return components


def is_connected(graph: Graph, subset: Optional[Iterable[Vertex]] = None) -> bool:
    """Whether the (induced) graph is connected.

    The empty graph is vacuously connected; a single vertex is connected.
    """
    if subset is None:
        members = graph.vertex_set()
    else:
        members = set(subset)
    if len(members) <= 1:
        return True
    start = next(iter(members))
    seen = {start}
    stack = [start]
    while stack:
        vertex = stack.pop()
        for neighbor in graph.neighbors(vertex):
            if neighbor in members and neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == len(members)


def densest_component(graph: Graph, subset: Iterable[Vertex]) -> Set[Vertex]:
    """The component of ``G(S)`` maximising average degree ``W(S')/|S'|``.

    This is line 9 of Algorithm 2: when the greedy solution is
    disconnected, one of its components is at least as dense (Property 1),
    so return the best one.  Ties keep the first-found component.
    """
    components = connected_components(graph, subset)
    if not components:
        raise ValueError("cannot pick the densest component of an empty set")
    best = components[0]
    best_density = graph.total_degree(best) / len(best)
    for component in components[1:]:
        density = graph.total_degree(component) / len(component)
        if density > best_density:
            best, best_density = component, density
    return best
