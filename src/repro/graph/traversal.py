"""Graph traversal primitives: BFS layers, k-hop neighbourhoods, Dijkstra.

The Douban pipeline computes interest similarity only for pairs within
two hops (Section B.2); :func:`k_hop_neighborhood` generalises that.
Dijkstra (positive weights) supports analysis utilities and tests.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import VertexNotFound
from repro.graph.graph import Graph, Vertex


def bfs_layers(graph: Graph, source: Vertex) -> Iterator[Set[Vertex]]:
    """Yield BFS layers: ``{source}``, its neighbours, and so on.

    Edge weights (and signs) are ignored — only adjacency matters, which
    is what 2-hop constructions use.
    """
    if not graph.has_vertex(source):
        raise VertexNotFound(source)
    seen = {source}
    layer = {source}
    while layer:
        yield layer
        next_layer: Set[Vertex] = set()
        for u in layer:
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    next_layer.add(v)
        layer = next_layer


def hop_distances(
    graph: Graph, source: Vertex, max_hops: Optional[int] = None
) -> Dict[Vertex, int]:
    """Unweighted hop distance from *source* (up to *max_hops*)."""
    distances: Dict[Vertex, int] = {}
    for depth, layer in enumerate(bfs_layers(graph, source)):
        if max_hops is not None and depth > max_hops:
            break
        for vertex in layer:
            distances[vertex] = depth
    return distances


def k_hop_neighborhood(
    graph: Graph, source: Vertex, k: int, include_source: bool = True
) -> Set[Vertex]:
    """All vertices within *k* hops of *source*.

    ``k = 1`` is the closed neighbourhood (the paper's ego net ``T_u``
    when *include_source*); ``k = 2`` is the Douban candidate set.
    """
    if k < 0:
        raise ValueError("k must be nonnegative")
    members = set(hop_distances(graph, source, max_hops=k))
    if not include_source:
        members.discard(source)
    return members


def pairs_within_hops(graph: Graph, k: int) -> Set[Tuple[Vertex, Vertex]]:
    """Unordered pairs at hop distance ``1..k`` of each other.

    Generalises :func:`repro.datasets.synthetic_douban.two_hop_pairs`
    (which is the hand-optimised ``k = 2`` special case).
    """
    pairs: Set[Tuple[Vertex, Vertex]] = set()
    for u in graph.vertices():
        for v in k_hop_neighborhood(graph, u, k, include_source=False):
            pair = (u, v) if repr(u) < repr(v) else (v, u)
            pairs.add(pair)
    return pairs


def dijkstra(
    graph: Graph, source: Vertex, target: Optional[Vertex] = None
) -> Dict[Vertex, float]:
    """Weighted shortest-path distances (requires positive weights).

    Stops early when *target* is settled.  Raises ``ValueError`` on a
    nonpositive edge weight (run on ``GD+`` or a plain weighted graph,
    never a signed difference graph).
    """
    if not graph.has_vertex(source):
        raise VertexNotFound(source)
    distances: Dict[Vertex, float] = {}
    heap: List[Tuple[float, int, Vertex]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        dist, _, u = heapq.heappop(heap)
        if u in distances:
            continue
        distances[u] = dist
        if target is not None and u == target:
            break
        for v, weight in graph.neighbors(u).items():
            if weight <= 0:
                raise ValueError(
                    "dijkstra requires positive edge weights"
                )
            if v not in distances:
                counter += 1
                heapq.heappush(heap, (dist + weight, counter, v))
    return distances


def eccentricity(graph: Graph, source: Vertex) -> int:
    """Max hop distance from *source* to any reachable vertex."""
    return max(hop_distances(graph, source).values())


def diameter(graph: Graph) -> int:
    """Max eccentricity over the graph (0 for empty/singleton graphs).

    Requires a connected graph to be meaningful; on disconnected graphs
    the per-component maximum is returned.
    """
    best = 0
    for u in graph.vertices():
        best = max(best, eccentricity(graph, u))
    return best
