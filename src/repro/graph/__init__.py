"""Graph substrate: the weighted-graph core and classic graph algorithms.

Everything the DCS solvers need from "a graph library" is implemented
here from scratch: adjacency storage with signed weights
(:class:`~repro.graph.graph.Graph`), induced-subgraph views, connected
components, k-core decomposition, clique enumeration, matrix conversion,
edge-list I/O and random generators.
"""

from repro.graph.components import (
    connected_components,
    densest_component,
    is_connected,
)
from repro.graph.cliques import (
    count_cliques_by_size,
    is_clique,
    is_positive_clique,
    max_clique_number,
    maximal_cliques,
    maximum_clique,
    remove_subsumed_cliques,
)
from repro.graph.cores import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    k_core,
)
from repro.graph.graph import Graph, Vertex
from repro.graph.io import read_edge_list, read_pair, write_edge_list, write_pair
from repro.graph.sparse import CSRAdjacency, graph_fingerprint, scipy_available
from repro.graph.matrices import (
    affinity_matrix,
    embedding_to_vector,
    graph_from_affinity,
    vector_to_embedding,
)
from repro.graph.traversal import (
    bfs_layers,
    diameter,
    dijkstra,
    eccentricity,
    hop_distances,
    k_hop_neighborhood,
    pairs_within_hops,
)
from repro.graph.views import SubgraphView

__all__ = [
    "Graph",
    "Vertex",
    "CSRAdjacency",
    "graph_fingerprint",
    "scipy_available",
    "SubgraphView",
    "bfs_layers",
    "hop_distances",
    "k_hop_neighborhood",
    "pairs_within_hops",
    "dijkstra",
    "eccentricity",
    "diameter",
    "affinity_matrix",
    "graph_from_affinity",
    "embedding_to_vector",
    "vector_to_embedding",
    "connected_components",
    "densest_component",
    "is_connected",
    "core_numbers",
    "degeneracy",
    "degeneracy_ordering",
    "k_core",
    "is_clique",
    "is_positive_clique",
    "maximal_cliques",
    "maximum_clique",
    "max_clique_number",
    "count_cliques_by_size",
    "remove_subsumed_cliques",
    "read_edge_list",
    "write_edge_list",
    "read_pair",
    "write_pair",
]
