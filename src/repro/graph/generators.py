"""Random and deterministic graph generators.

These are the building blocks of the synthetic datasets
(:mod:`repro.datasets`) and of the randomised test suite.  All generators
take an explicit integer ``seed`` (or a ``random.Random``) and are fully
deterministic given it.

Weights: generators that create weighted graphs accept a ``weight``
callable ``rng -> float`` so callers control the weight distribution,
including signed distributions for direct difference-graph synthesis.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Callable, List, Optional, Sequence, Union

from repro.graph.graph import Graph, Vertex

RandomLike = Union[int, random.Random, None]
WeightFn = Optional[Callable[[random.Random], float]]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _weight_of(weight: WeightFn, rng: random.Random) -> float:
    return 1.0 if weight is None else weight(rng)


# ----------------------------------------------------------------------
# deterministic families
# ----------------------------------------------------------------------
def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """K_n with uniform edge *weight* over vertices ``0..n-1``."""
    graph = Graph()
    graph.add_vertices(range(n))
    for u, v in itertools.combinations(range(n), 2):
        graph.add_edge(u, v, weight)
    return graph


def path_graph(n: int, weight: float = 1.0) -> Graph:
    """P_n: vertices ``0..n-1`` joined in a path."""
    graph = Graph()
    graph.add_vertices(range(n))
    for u in range(n - 1):
        graph.add_edge(u, u + 1, weight)
    return graph


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """C_n (requires ``n >= 3``)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    graph = path_graph(n, weight)
    graph.add_edge(n - 1, 0, weight)
    return graph


def star_graph(n_leaves: int, weight: float = 1.0) -> Graph:
    """A star: hub ``0`` joined to leaves ``1..n_leaves``."""
    graph = Graph()
    graph.add_vertex(0)
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf, weight)
    return graph


def barbell_graph(k: int, bridge_length: int = 1, weight: float = 1.0) -> Graph:
    """Two K_k cliques joined by a path of *bridge_length* edges.

    ``bridge_length = 1`` joins the cliques directly; larger values
    insert ``bridge_length - 1`` intermediate vertices, so the graph has
    ``2k + bridge_length - 1`` vertices numbered contiguously.  A classic
    adversarial input for average-degree style objectives (two dense
    cores, sparse connector).
    """
    if k < 2:
        raise ValueError("cliques need at least 2 vertices")
    if bridge_length < 1:
        raise ValueError("bridge needs at least one edge")
    graph = Graph()
    left = list(range(k))
    intermediates = list(range(k, k + bridge_length - 1))
    right = list(range(k + bridge_length - 1, 2 * k + bridge_length - 1))
    for group in (left, right):
        for u, v in itertools.combinations(group, 2):
            graph.add_edge(u, v, weight)
    chain = [left[-1]] + intermediates + [right[0]]
    for u, v in zip(chain, chain[1:]):
        graph.add_edge(u, v, weight)
    return graph


# ----------------------------------------------------------------------
# random families
# ----------------------------------------------------------------------
def gnp_graph(
    n: int,
    p: float,
    seed: RandomLike = None,
    weight: WeightFn = None,
) -> Graph:
    """Erdos-Renyi G(n, p) with optional random weights.

    Uses the geometric skipping trick so the cost is proportional to the
    number of edges generated, not ``n^2``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = _rng(seed)
    graph = Graph()
    graph.add_vertices(range(n))
    if p == 0.0:
        return graph
    if p == 1.0:
        for u, v in itertools.combinations(range(n), 2):
            graph.add_edge(u, v, _weight_of(weight, rng))
        return graph
    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w, _weight_of(weight, rng))
    return graph


def gnm_graph(
    n: int,
    m: int,
    seed: RandomLike = None,
    weight: WeightFn = None,
) -> Graph:
    """Uniform random graph with exactly *m* distinct edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds max possible edges {max_edges}")
    rng = _rng(seed)
    graph = Graph()
    graph.add_vertices(range(n))
    # Rejection sampling is fine while m is well below max_edges; fall back
    # to explicit enumeration when the graph is dense.
    if m > max_edges // 2:
        pairs = list(itertools.combinations(range(n), 2))
        rng.shuffle(pairs)
        for u, v in pairs[:m]:
            graph.add_edge(u, v, _weight_of(weight, rng))
        return graph
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, _weight_of(weight, rng))
        added += 1
    return graph


def chung_lu_graph(
    expected_degrees: Sequence[float],
    seed: RandomLike = None,
    weight: WeightFn = None,
) -> Graph:
    """Chung-Lu random graph with given expected degree sequence.

    Edge ``(u, v)`` appears with probability
    ``min(1, d_u * d_v / sum(d))`` — the standard model for heavy-tailed
    collaboration-style networks.
    """
    rng = _rng(seed)
    n = len(expected_degrees)
    total = float(sum(expected_degrees))
    graph = Graph()
    graph.add_vertices(range(n))
    if total <= 0:
        return graph
    # Sort descending so the skipping loop terminates early on light tails.
    order = sorted(range(n), key=lambda u: -expected_degrees[u])
    weights = [expected_degrees[u] for u in order]
    for i in range(n - 1):
        if weights[i] == 0:
            break
        for j in range(i + 1, n):
            p = min(1.0, weights[i] * weights[j] / total)
            if p == 0.0:
                break
            if rng.random() < p:
                graph.add_edge(order[i], order[j], _weight_of(weight, rng))
    return graph


def powerlaw_degree_sequence(
    n: int,
    exponent: float = 2.5,
    min_degree: float = 1.0,
    max_degree: Optional[float] = None,
    seed: RandomLike = None,
) -> List[float]:
    """Sample expected degrees from a (truncated) Pareto distribution."""
    if exponent <= 1.0:
        raise ValueError("exponent must exceed 1")
    rng = _rng(seed)
    cap = max_degree if max_degree is not None else math.sqrt(n) * min_degree
    alpha = exponent - 1.0
    degrees = []
    for _ in range(n):
        value = min_degree * (1.0 - rng.random()) ** (-1.0 / alpha)
        degrees.append(min(value, cap))
    return degrees


def planted_clique_graph(
    n: int,
    clique_size: int,
    p: float,
    seed: RandomLike = None,
    clique_weight: float = 1.0,
    background_weight: WeightFn = None,
) -> Graph:
    """G(n, p) with a planted clique on vertices ``0..clique_size-1``.

    The planted edges get *clique_weight*; the background follows
    *background_weight* (default unit).  Standard testbed for dense
    subgraph recovery.
    """
    if clique_size > n:
        raise ValueError("clique cannot exceed the graph size")
    rng = _rng(seed)
    graph = gnp_graph(n, p, rng, background_weight)
    for u, v in itertools.combinations(range(clique_size), 2):
        graph.add_edge(u, v, clique_weight)
    return graph


def planted_partition_graph(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: RandomLike = None,
    weight_in: WeightFn = None,
    weight_out: WeightFn = None,
) -> Graph:
    """Stochastic block model with intra/inter probabilities.

    Vertices are numbered consecutively block by block; the block of a
    vertex can be recovered from the returned ``blocks`` attribute of the
    graph? — no hidden state: use :func:`partition_blocks` to recompute.
    """
    rng = _rng(seed)
    n = sum(sizes)
    graph = Graph()
    graph.add_vertices(range(n))
    block_of: List[int] = []
    for index, size in enumerate(sizes):
        block_of.extend([index] * size)
    for u in range(n):
        for v in range(u + 1, n):
            same = block_of[u] == block_of[v]
            p = p_in if same else p_out
            if rng.random() < p:
                fn = weight_in if same else weight_out
                graph.add_edge(u, v, _weight_of(fn, rng))
    return graph


def partition_blocks(sizes: Sequence[int]) -> List[List[int]]:
    """Vertex ids of each block for :func:`planted_partition_graph`."""
    blocks: List[List[int]] = []
    start = 0
    for size in sizes:
        blocks.append(list(range(start, start + size)))
        start += size
    return blocks


def random_signed_graph(
    n: int,
    p: float,
    positive_fraction: float = 0.5,
    seed: RandomLike = None,
    magnitude: WeightFn = None,
) -> Graph:
    """G(n, p) whose weights are signed at random — a synthetic ``GD``.

    Each edge gets magnitude from *magnitude* (default ``U(0.5, 2)``) and
    is positive with probability *positive_fraction*.
    """
    rng = _rng(seed)

    def signed(r: random.Random) -> float:
        size = magnitude(r) if magnitude is not None else r.uniform(0.5, 2.0)
        return size if r.random() < positive_fraction else -size

    return gnp_graph(n, p, rng, signed)


def random_spanning_tree(
    vertices: Sequence[Vertex],
    seed: RandomLike = None,
    weight: WeightFn = None,
) -> Graph:
    """A uniform-ish random tree (random attachment) over *vertices*.

    Used by dataset generators to guarantee planted groups are connected.
    """
    rng = _rng(seed)
    graph = Graph()
    graph.add_vertices(vertices)
    items = list(vertices)
    rng.shuffle(items)
    for i in range(1, len(items)):
        parent = items[rng.randrange(i)]
        graph.add_edge(items[i], parent, _weight_of(weight, rng))
    return graph
