"""Edge-list serialisation for graphs.

A minimal, dependency-free text format::

    # comment lines start with '#'
    u v weight

Vertex labels are written with ``repr``-free plain text: any token not
containing whitespace.  Labels round-trip as strings; callers who need
typed labels (e.g. ints) pass a *parser*.  Weighted pair-graph inputs for
the DCS problem can be stored as two files sharing a vertex universe.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional, TextIO, Tuple, Union

from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph, Vertex

PathLike = Union[str, os.PathLike]


def write_edge_list(
    graph: Graph,
    destination: Union[PathLike, TextIO],
    include_isolated: bool = True,
) -> None:
    """Write *graph* as ``u v weight`` lines.

    Isolated vertices are written as ``u`` alone when *include_isolated*
    so the vertex universe survives a round trip.
    """
    if hasattr(destination, "write"):
        _write_stream(graph, destination, include_isolated)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as stream:
        _write_stream(graph, stream, include_isolated)


def _token(vertex: Vertex) -> str:
    text = str(vertex)
    if not text or any(ch.isspace() for ch in text):
        raise InputMismatchError(
            f"vertex label {vertex!r} cannot be serialised: "
            "labels must be non-empty and contain no whitespace"
        )
    return text


def _write_stream(graph: Graph, stream: TextIO, include_isolated: bool) -> None:
    stream.write("# repro edge list: u v weight\n")
    touched = set()
    for u, v, weight in graph.edges():
        stream.write(f"{_token(u)} {_token(v)} {weight!r}\n")
        touched.add(u)
        touched.add(v)
    if include_isolated:
        for vertex in graph.vertices():
            if vertex not in touched:
                stream.write(f"{_token(vertex)}\n")


def read_edge_list(
    source: Union[PathLike, TextIO],
    parser: Optional[Callable[[str], Vertex]] = None,
) -> Graph:
    """Parse a graph written by :func:`write_edge_list`.

    *parser* converts label tokens (default: keep as ``str``).  Lines with
    a single token declare isolated vertices; malformed lines raise
    :class:`~repro.exceptions.InputMismatchError` with the line number.
    """
    if hasattr(source, "read"):
        return _read_stream(source, parser)  # type: ignore[arg-type]
    with open(source, "r", encoding="utf-8") as stream:
        return _read_stream(stream, parser)


def _read_stream(
    stream: TextIO, parser: Optional[Callable[[str], Vertex]]
) -> Graph:
    convert = parser if parser is not None else (lambda token: token)
    graph = Graph()
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 1:
            graph.add_vertex(convert(parts[0]))
        elif len(parts) == 3:
            try:
                weight = float(parts[2])
            except ValueError:
                raise InputMismatchError(
                    f"line {lineno}: bad weight {parts[2]!r}"
                ) from None
            graph.add_edge(convert(parts[0]), convert(parts[1]), weight)
        else:
            raise InputMismatchError(
                f"line {lineno}: expected 'u v weight' or 'u', got {line!r}"
            )
    return graph


def write_pair(
    g1: Graph,
    g2: Graph,
    path_g1: PathLike,
    path_g2: PathLike,
) -> None:
    """Write a DCS input pair, validating that vertex sets agree."""
    if g1.vertex_set() != g2.vertex_set():
        raise InputMismatchError("G1 and G2 must share the same vertex set")
    write_edge_list(g1, path_g1)
    write_edge_list(g2, path_g2)


def read_pair(
    path_g1: PathLike,
    path_g2: PathLike,
    parser: Optional[Callable[[str], Vertex]] = None,
) -> Tuple[Graph, Graph]:
    """Read a DCS input pair, aligning vertex universes.

    Vertices present in only one file are added (isolated) to the other,
    since the DCS formulation requires a shared vertex set.
    """
    g1 = read_edge_list(path_g1, parser)
    g2 = read_edge_list(path_g2, parser)
    for vertex in g1.vertices():
        g2.add_vertex(vertex)
    for vertex in g2.vertices():
        g1.add_vertex(vertex)
    return g1, g2


def edges_sorted(graph: Graph) -> Iterable[Tuple[str, str, float]]:
    """Deterministically ordered edge triples (for golden-file tests)."""
    triples = []
    for u, v, weight in graph.edges():
        a, b = sorted((str(u), str(v)))
        triples.append((a, b, weight))
    return sorted(triples)
