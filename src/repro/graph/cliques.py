"""Clique utilities: positivity checks, Bron-Kerbosch enumeration, max clique.

Cliques matter twice in the paper:

* Theorem 5 shows the optimal DCSGA solution is supported on a **positive
  clique** of ``GD`` (equivalently, a clique of ``GD+``); the Refinement
  step (Algorithm 4) drives any KKT point onto one.
* The NP-hardness reductions (Theorems 1 and 3) go through maximum clique,
  and the exact small-graph oracle in :mod:`repro.core.exact` enumerates
  cliques of ``GD+``.

Bron–Kerbosch is implemented with pivoting and an optional degeneracy
ordering for the outer level, the standard trick for sparse graphs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Set

from repro.graph.cores import degeneracy_ordering
from repro.graph.graph import Graph, Vertex


def is_clique(graph: Graph, subset: Iterable[Vertex]) -> bool:
    """Whether every pair in *subset* is joined by an edge of ``graph``.

    Singletons and the empty set count as cliques (matching the paper:
    a single-vertex solution is trivially a positive clique solution).
    """
    members = list(set(subset))
    for i, u in enumerate(members):
        neighbors = graph.neighbors(u)
        for v in members[i + 1 :]:
            if v not in neighbors:
                return False
    return True


def is_positive_clique(graph: Graph, subset: Iterable[Vertex]) -> bool:
    """Whether ``G(S)`` is a clique whose edges all have positive weight.

    This is the paper's *positive clique* test applied to the (signed)
    difference graph ``GD``.
    """
    members = list(set(subset))
    for i, u in enumerate(members):
        neighbors = graph.neighbors(u)
        for v in members[i + 1 :]:
            if neighbors.get(v, 0.0) <= 0.0:
                return False
    return True


def maximal_cliques(graph: Graph) -> Iterator[FrozenSet[Vertex]]:
    """Enumerate all maximal cliques (Bron-Kerbosch, pivot + degeneracy).

    Yields each maximal clique exactly once as a frozenset.  Isolated
    vertices are yielded as singleton cliques.
    """
    order = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    for vertex in order:
        neighbors = set(graph.neighbors(vertex))
        later = {u for u in neighbors if position[u] > position[vertex]}
        earlier = neighbors - later
        yield from _bron_kerbosch_pivot(graph, {vertex}, later, earlier)


def _bron_kerbosch_pivot(
    graph: Graph,
    clique: Set[Vertex],
    candidates: Set[Vertex],
    excluded: Set[Vertex],
) -> Iterator[FrozenSet[Vertex]]:
    if not candidates and not excluded:
        yield frozenset(clique)
        return
    # Pivot on the vertex with the most candidate neighbours to prune.
    pivot_pool = candidates | excluded
    pivot = max(
        pivot_pool,
        key=lambda u: sum(1 for w in graph.neighbors(u) if w in candidates),
    )
    pivot_neighbors = set(graph.neighbors(pivot))
    for vertex in list(candidates - pivot_neighbors):
        neighbors = set(graph.neighbors(vertex))
        clique.add(vertex)
        yield from _bron_kerbosch_pivot(
            graph, clique, candidates & neighbors, excluded & neighbors
        )
        clique.discard(vertex)
        candidates.discard(vertex)
        excluded.add(vertex)


def maximum_clique(graph: Graph) -> Set[Vertex]:
    """A maximum clique (by vertex count); empty set for an empty graph.

    Exponential in the worst case — intended for the exact oracles and
    tests on small graphs, and for moderate sparse graphs via the
    degeneracy-ordered enumeration.
    """
    best: FrozenSet[Vertex] = frozenset()
    for clique in maximal_cliques(graph):
        if len(clique) > len(best):
            best = clique
    return set(best)


def max_clique_number(graph: Graph) -> int:
    """Size of the maximum clique, ``omega(G)`` (0 for an empty graph)."""
    return len(maximum_clique(graph))


def count_cliques_by_size(
    graph: Graph, min_size: int = 1
) -> dict[int, int]:
    """Count maximal cliques grouped by size (for Fig. 3 style censuses).

    Only cliques with at least *min_size* vertices are counted.  Note
    Fig. 3 of the paper counts the distinct cliques *found by the solver*
    (after deduplication and sub-clique removal); that census lives in
    :mod:`repro.analysis.clique_census`.  This function counts maximal
    cliques of the graph itself and is used for dataset sanity checks.
    """
    counts: dict[int, int] = {}
    for clique in maximal_cliques(graph):
        size = len(clique)
        if size >= min_size:
            counts[size] = counts.get(size, 0) + 1
    return counts


def remove_subsumed_cliques(
    cliques: Iterable[Iterable[Vertex]],
) -> List[Set[Vertex]]:
    """Deduplicate cliques and drop those contained in another clique.

    The paper applies exactly this post-processing to the positive cliques
    returned by SEACD+Refinement before reporting Table V and Fig. 3
    ("We removed the duplicate cliques and the cliques that are sub-graphs
    of other cliques found").
    """
    unique: List[Set[Vertex]] = []
    seen: Set[FrozenSet[Vertex]] = set()
    for clique in cliques:
        frozen = frozenset(clique)
        if frozen not in seen:
            seen.add(frozen)
            unique.append(set(frozen))
    unique.sort(key=len, reverse=True)
    kept: List[Set[Vertex]] = []
    for clique in unique:
        if not any(clique <= other for other in kept):
            kept.append(clique)
    return kept
