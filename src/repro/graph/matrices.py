"""Conversions between graphs and (dense) affinity matrices.

The DCSGA formulation works with the affinity matrix ``D`` of the
difference graph (``f_D(x) = x^T D x``).  The iterative solvers use sparse
adjacency directly, but the exact small-graph oracles, the KKT checker and
several tests want the dense symmetric matrix.  These helpers keep the
vertex <-> index correspondence explicit so results can be mapped back to
vertex labels.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph, Vertex


def affinity_matrix(
    graph: Graph, order: Sequence[Vertex] | None = None
) -> Tuple[np.ndarray, List[Vertex]]:
    """Dense symmetric affinity matrix of *graph*.

    Returns ``(matrix, order)`` where ``matrix[i, j]`` is the weight of the
    edge between ``order[i]`` and ``order[j]`` (0 when absent; diagonal is
    always 0).  If *order* is omitted, vertices are sorted by their repr
    for determinism.
    """
    if order is None:
        vertices = sorted(graph.vertices(), key=repr)
    else:
        vertices = list(order)
        if set(vertices) != graph.vertex_set():
            raise InputMismatchError(
                "order must contain exactly the graph's vertices"
            )
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    matrix = np.zeros((n, n), dtype=float)
    for u, v, weight in graph.edges():
        i, j = index[u], index[v]
        matrix[i, j] = weight
        matrix[j, i] = weight
    return matrix, vertices


def graph_from_affinity(
    matrix: np.ndarray,
    labels: Sequence[Vertex] | None = None,
    atol: float = 0.0,
) -> Graph:
    """Build a :class:`Graph` from a symmetric affinity matrix.

    Entries with ``abs(value) <= atol`` are treated as absent edges.  The
    diagonal must be zero and the matrix symmetric (within ``1e-12``).
    """
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise InputMismatchError("affinity matrix must be square")
    if not np.allclose(array, array.T, atol=1e-12):
        raise InputMismatchError("affinity matrix must be symmetric")
    if np.any(np.abs(np.diag(array)) > 1e-12):
        raise InputMismatchError("affinity matrix must have a zero diagonal")
    n = array.shape[0]
    if labels is None:
        names: List[Vertex] = list(range(n))
    else:
        names = list(labels)
        if len(names) != n:
            raise InputMismatchError("labels length must match matrix size")
    graph = Graph()
    graph.add_vertices(names)
    for i in range(n):
        for j in range(i + 1, n):
            value = array[i, j]
            if abs(value) > atol:
                graph.add_edge(names[i], names[j], float(value))
    return graph


def embedding_to_vector(
    embedding: Mapping[Vertex, float], order: Sequence[Vertex]
) -> np.ndarray:
    """Densify a sparse embedding onto the index order of a matrix."""
    index: Dict[Vertex, int] = {v: i for i, v in enumerate(order)}
    vector = np.zeros(len(order), dtype=float)
    for vertex, value in embedding.items():
        if vertex not in index:
            raise InputMismatchError(
                f"embedding vertex {vertex!r} not present in order"
            )
        vector[index[vertex]] = value
    return vector


def vector_to_embedding(
    vector: np.ndarray, order: Sequence[Vertex], tol: float = 0.0
) -> Dict[Vertex, float]:
    """Sparsify a dense simplex vector back to ``{vertex: weight}``.

    Entries with value ``<= tol`` are dropped (they are outside the
    support set ``Sx``).
    """
    array = np.asarray(vector, dtype=float)
    if array.shape != (len(order),):
        raise InputMismatchError("vector length must match order length")
    return {
        vertex: float(value)
        for vertex, value in zip(order, array)
        if value > tol
    }
