"""CSR adjacency — the vectorised compute substrate for the solvers.

The pure-Python :class:`~repro.graph.graph.Graph` (dict-of-dicts) is the
*reference* representation: flexible, hashable vertices, cheap mutation.
The iterative DCSGA solvers, however, spend almost all of their time in
three kernels — ``(Dx)`` products, per-coordinate gradient updates and
degree bookkeeping — that a Compressed-Sparse-Row matrix executes as
NumPy/SciPy vector operations instead of Python dict loops.

:class:`CSRAdjacency` freezes a :class:`Graph` into that form **once**:

* an explicit ``vertices`` list and ``index`` map (vertex <-> row id),
  ordered by ``repr`` by default so every backend agrees on tie-breaks;
* a symmetric ``scipy.sparse`` CSR matrix with a zero diagonal (the
  affinity matrix ``D`` of the paper);
* raw ``indptr``/``indices``/``data`` views for O(deg) row surgery.

Embeddings cross the boundary through :meth:`embedding_vector` /
:meth:`embedding_dict`, so callers keep speaking ``{vertex: weight}``
while the kernels speak dense ``ndarray``.

SciPy is gated, not required: importing this module without SciPy
succeeds, and only *using* the sparse backend raises
:class:`~repro.exceptions.BackendUnavailableError`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly on import
    import numpy as np
except ImportError:  # pragma: no cover - container ships NumPy
    np = None  # type: ignore[assignment]

from repro.exceptions import (
    BackendUnavailableError,
    InputMismatchError,
    VertexNotFound,
)
from repro.graph.graph import Graph, Vertex

try:  # pragma: no cover - exercised implicitly on import
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - container ships SciPy
    _scipy_sparse = None


def scipy_available() -> bool:
    """Whether the sparse backend can be used in this environment."""
    return _scipy_sparse is not None


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a :class:`Graph` — the identity of a frozen input.

    Two graphs fingerprint equally iff they have the same vertex set
    (by ``repr``) and the same edge weights (bit-exact, via ``hex()``).
    The batch layer keys its shared-preprocessing DAG and its
    content-addressed result cache on this, so the hash must be stable
    across processes and sessions — it deliberately uses ``repr``
    ordering (the backend tie-break order) and no ``hash()`` (which is
    salted per process for strings).

    Pure hashing over the dict-of-dicts form; SciPy is not required.
    """
    digest = hashlib.sha256()
    for vertex in sorted(map(repr, graph.vertices())):
        digest.update(vertex.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"\x01")
    edges = sorted(
        (min(repr(u), repr(v)), max(repr(u), repr(v)), weight)
        for u, v, weight in graph.edges()
    )
    for u, v, weight in edges:
        digest.update(u.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(v.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(float(weight).hex().encode("ascii"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _require_scipy() -> None:
    if _scipy_sparse is None:  # pragma: no cover - container ships SciPy
        raise BackendUnavailableError(
            "backend='sparse' requires SciPy, which is not installed; "
            "use the pure-Python backend instead"
        )


class CSRAdjacency:
    """A frozen CSR view of a :class:`Graph` with explicit index maps.

    Build once with :meth:`from_graph`, then share across every solver
    stage of a pipeline run — construction is the only O(m) Python loop;
    everything afterwards is vectorised.
    """

    __slots__ = (
        "vertices",
        "index",
        "matrix",
        "indptr",
        "indices",
        "data",
        "shm_source",
        "_local_map",
    )

    def __init__(
        self, vertices: List[Vertex], matrix: "_scipy_sparse.csr_matrix"
    ) -> None:
        self.vertices = vertices
        self.index: Dict[Vertex, int] = {v: i for i, v in enumerate(vertices)}
        self.matrix = matrix
        self.indptr = matrix.indptr
        self.indices = matrix.indices
        self.data = matrix.data
        #: ``(segment_name, "gd"|"plus")`` when the arrays are views on a
        #: shared-memory segment (:mod:`repro.engine.shm`); None for
        #: privately-owned buffers.  Drives the pickle-as-attach-stub
        #: path in :meth:`__reduce__`.
        self.shm_source: Optional[Tuple[str, str]] = None
        #: reusable global->local scatter buffer for :meth:`dense_block`
        self._local_map: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: Graph, order: Optional[Sequence[Vertex]] = None
    ) -> "CSRAdjacency":
        """Freeze *graph* into CSR form.

        *order* fixes the vertex -> row-index assignment; by default
        vertices are sorted by ``repr`` (the same deterministic order the
        dense :func:`~repro.graph.matrices.affinity_matrix` uses, and the
        tie-break order of the python backend's initialisation plan).
        """
        _require_scipy()
        if order is None:
            vertices = sorted(graph.vertices(), key=repr)
        else:
            vertices = list(order)
            if set(vertices) != graph.vertex_set():
                raise InputMismatchError(
                    "order must contain exactly the graph's vertices"
                )
        index = {v: i for i, v in enumerate(vertices)}
        n = len(vertices)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for u, v, weight in graph.edges():
            i, j = index[u], index[v]
            rows.append(i)
            cols.append(j)
            vals.append(weight)
            rows.append(j)
            cols.append(i)
            vals.append(weight)
        matrix = _scipy_sparse.csr_matrix(
            (
                np.asarray(vals, dtype=np.float64),
                (np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)),
            ),
            shape=(n, n),
        )
        matrix.sort_indices()
        return cls(vertices, matrix)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices (rows)."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.matrix.nnz) // 2

    def __repr__(self) -> str:
        return f"<CSRAdjacency n={self.n} m={self.num_edges}>"

    def __reduce__(self):
        """Pickle as ``(vertices, matrix)`` and rebuild through __init__.

        The batch layer ships frozen adjacencies to worker processes;
        reducing to the constructor arguments keeps the payload minimal
        (the ``index`` map and the ``dense_block`` scratch buffer are
        derived state) and guarantees the raw ``indptr``/``indices``/
        ``data`` views are re-bound to the unpickled matrix.

        Shared-memory-backed adjacencies pickle as an *attach stub*
        (segment name + which view) instead: the receiving process maps
        the same segment read-only rather than deserialising a private
        copy of the buffers.
        """
        if self.shm_source is not None:
            from repro.engine.shm import _rebuild_csr

            return (_rebuild_csr, self.shm_source)
        return (self.__class__, (self.vertices, self.matrix))

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``(Dx)`` — the gradient-defining product, at C speed."""
        return self.matrix @ x

    def objective(self, x: np.ndarray) -> float:
        """``f(x) = x^T D x``."""
        return float(x @ (self.matrix @ x))

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbor_indices, weights)`` views of row *i* (sorted)."""
        start, end = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:end], self.data[start:end]

    def row_dot(self, i: int, x: np.ndarray) -> float:
        """``(Dx)_i`` for a single coordinate in O(deg i)."""
        neighbors, weights = self.row(i)
        return float(weights @ x[neighbors])

    def degrees(self) -> np.ndarray:
        """Weighted degree of every vertex (row sums; may be negative)."""
        return np.asarray(self.matrix.sum(axis=1)).ravel()

    def unweighted_degrees(self) -> np.ndarray:
        """Number of incident edges per vertex."""
        return np.diff(self.indptr)

    def submatrix(self, rows: np.ndarray) -> "_scipy_sparse.csr_matrix":
        """The induced CSR block ``D[rows][:, rows]``."""
        return self.matrix[rows][:, rows]

    def dense_block(self, rows: np.ndarray) -> np.ndarray:
        """The induced block ``D[rows][:, rows]`` as a dense array.

        Built row-by-row through a reusable global->local index buffer —
        for the support-sized blocks the solvers need, this is an order
        of magnitude cheaper than SciPy's double fancy indexing.
        """
        if self._local_map is None:
            self._local_map = np.full(self.n, -1, dtype=np.int64)
        local_of = self._local_map
        size = int(rows.size)
        local_of[rows] = np.arange(size)
        block = np.zeros((size, size), dtype=np.float64)
        for local_row, global_row in enumerate(rows):
            neighbors, weights = self.row(int(global_row))
            local_cols = local_of[neighbors]
            inside = local_cols >= 0
            block[local_row, local_cols[inside]] = weights[inside]
        local_of[rows] = -1
        return block

    def positive_part(self) -> "CSRAdjacency":
        """``GD+`` in CSR form: keep strictly positive entries only."""
        _require_scipy()
        kept = self.matrix.multiply(self.matrix > 0).tocsr()
        kept.eliminate_zeros()
        kept.sort_indices()
        return CSRAdjacency(list(self.vertices), kept)

    # ------------------------------------------------------------------
    # in-place deltas
    # ------------------------------------------------------------------
    def _patch_position(self, i: int, j: int, weight: float) -> bool:
        start, end = int(self.indptr[i]), int(self.indptr[i + 1])
        position = int(np.searchsorted(self.indices[start:end], j))
        if position >= end - start or self.indices[start + position] != j:
            return False
        self.data[start + position] = weight
        return True

    def update_existing(self, u: Vertex, v: Vertex, weight: float) -> bool:
        """Patch the stored weight of edge ``(u, v)`` in place.

        Only *value* changes are expressible in CSR without moving the
        arrays: the edge must already be stored and the new weight must
        be nonzero (a zero would leave an explicit stored zero, breaking
        ``num_edges`` and ``positive_part``).  Returns False — leaving
        the matrix untouched — when the update is structural and the
        caller must rebuild instead.
        """
        if weight == 0.0:
            return False
        i = self.index.get(u)
        j = self.index.get(v)
        if i is None or j is None:
            return False
        if not self._patch_position(i, j, weight):
            return False
        patched = self._patch_position(j, i, weight)
        assert patched, "asymmetric CSR adjacency"  # from_graph stores both
        return True

    # ------------------------------------------------------------------
    # embedding conversions
    # ------------------------------------------------------------------
    def embedding_vector(self, embedding: Mapping[Vertex, float]) -> np.ndarray:
        """Densify ``{vertex: weight}`` onto this index order."""
        vector = np.zeros(self.n, dtype=np.float64)
        for vertex, value in embedding.items():
            position = self.index.get(vertex)
            if position is None:
                raise VertexNotFound(vertex)
            vector[position] = value
        return vector

    def embedding_dict(
        self, vector: np.ndarray, tol: float = 0.0
    ) -> Dict[Vertex, float]:
        """Sparsify a dense vector back to ``{vertex: weight > tol}``."""
        support = np.flatnonzero(vector > tol)
        return {self.vertices[int(i)]: float(vector[i]) for i in support}


class MutableCSRAdjacency:
    """A :class:`Graph` with a lazily synchronised CSR view — the
    patch-and-rebuild substrate for streaming workloads.

    :class:`CSRAdjacency` is deliberately frozen; a stream of edge
    updates would force a full O(m) rebuild per event.  This wrapper
    amortises that:

    * **Patch**: an update that only changes the *value* of a stored
      edge is written straight into the CSR ``data`` array
      (:meth:`CSRAdjacency.update_existing`, two O(log deg) binary
      searches) — the hot case while a difference graph's support is
      stable between solves.
    * **Rebuild**: an update that changes the sparsity *structure*
      (edge appears, edge vanishes, new vertex) only marks the view
      stale; the next :attr:`adjacency` access rebuilds once, however
      many structural edits accumulated — rebuilds are amortised over
      edit bursts instead of paid per edit.

    The row order is pinned at construction (and extended append-only
    for late vertices) so downstream consumers see stable indices
    across rebuilds.  ``patches`` / ``structural_edits`` / ``rebuilds``
    expose the amortisation behaviour to benchmarks and tests.
    """

    __slots__ = (
        "graph",
        "_order",
        "_adjacency",
        "_stale",
        "patches",
        "structural_edits",
        "rebuilds",
    )

    def __init__(
        self, graph: Optional[Graph] = None, order: Optional[Sequence[Vertex]] = None
    ) -> None:
        _require_scipy()
        self.graph = graph if graph is not None else Graph()
        if order is not None:
            self._order = list(order)
            if set(self._order) != self.graph.vertex_set():
                raise InputMismatchError(
                    "order must contain exactly the graph's vertices"
                )
        else:
            self._order = sorted(self.graph.vertices(), key=repr)
        self._adjacency: Optional[CSRAdjacency] = None
        self._stale = True
        self.patches = 0
        self.structural_edits = 0
        self.rebuilds = 0

    def set_edge(self, u: Vertex, v: Vertex, weight: float) -> None:
        """Set the weight of ``(u, v)`` (0 deletes), syncing the CSR view.

        Unknown endpoints are added to the backing graph and appended to
        the pinned row order.
        """
        for vertex in (u, v):
            if not self.graph.has_vertex(vertex):
                self.graph.add_vertex(vertex)
                self._order.append(vertex)
                self._stale = True
        old = self.graph.weight(u, v)
        if weight == old:
            return
        self.graph.add_edge(u, v, weight)
        if self._stale or self._adjacency is None:
            # Already pending a rebuild — no patch to attempt, but keep
            # the structural count honest for diagnostics.
            if old == 0.0 or weight == 0.0:
                self.structural_edits += 1
            return
        if old != 0.0 and self._adjacency.update_existing(u, v, weight):
            self.patches += 1
        else:
            self.structural_edits += 1
            self._stale = True

    @property
    def adjacency(self) -> CSRAdjacency:
        """The CSR view, rebuilt now if structural edits are pending."""
        if self._stale or self._adjacency is None:
            self._adjacency = CSRAdjacency.from_graph(self.graph, order=self._order)
            self._stale = False
            self.rebuilds += 1
        return self._adjacency

    @property
    def is_stale(self) -> bool:
        """Whether the next :attr:`adjacency` access will rebuild."""
        return self._stale or self._adjacency is None

    @property
    def order(self) -> List[Vertex]:
        """The pinned vertex -> row order (a copy)."""
        return list(self._order)

    def subset_degree(self, subset: Sequence[Vertex]) -> float:
        """``W(S)`` (each induced edge twice, Eq. 1) via the CSR view.

        The vectorised scoring primitive the streaming engine uses to
        re-validate an incumbent answer without a solve.
        """
        adj = self.adjacency
        rows = np.fromiter(
            (adj.index[v] for v in subset), dtype=np.int64, count=len(subset)
        )
        return float(adj.submatrix(rows).sum())
