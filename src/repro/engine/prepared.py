"""PreparedGraph — the build-once query context for a difference graph.

Every DCS query over one difference graph ``GD`` needs some mix of the
same three derived artefacts:

* the **positive part** ``GD+`` (DCSGA always; DCSAD's third peel
  candidate);
* frozen **CSR adjacencies** of ``GD`` and ``GD+`` (any CSR-capable
  backend);
* the **content fingerprint** (cache keys, worker tables, provenance).

Before this class, each delivery layer rebuilt its own subset — the
batch planner deduplicated per-query but a DCSAD+DCSGA pair on the same
graph still built ``GD+`` twice, and the CLI never shared anything.
:class:`PreparedGraph` owns all three, builds each lazily exactly once,
and counts the builds (``plus_builds`` / ``csr_builds``) so tests can
assert the sharing actually happens.

Thread the same instance through every query on the graph::

    prepared = PreparedGraph(gd)
    dcs_greedy(gd, prepared=prepared)          # peels GD and GD+
    new_sea(prepared.gd_plus,                   # ...same GD+ object
            adjacency=prepared.csr_plus())      # ...same frozen CSR

CSR accessors are SciPy-gated the soft way: :meth:`csr` / :meth:`csr_plus`
return ``None`` when SciPy is missing (callers fall back to the python
backend's structures); :meth:`require_csr` raises the standard
:class:`~repro.exceptions.BackendUnavailableError` instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Tuple

from repro.exceptions import InputMismatchError
from repro.graph.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.engine.shm import SharedGraphSegment
    from repro.graph.sparse import CSRAdjacency


class PreparedGraph:
    """Shared, lazily-built preparation of one difference graph."""

    __slots__ = (
        "_gd",
        "_gd_plus",
        "_csr",
        "_csr_plus",
        "_fingerprint",
        "_shared",
        "plus_builds",
        "csr_builds",
        "fingerprint_builds",
    )

    def __init__(
        self,
        gd: Graph,
        fingerprint: Optional[str] = None,
        gd_plus: Optional[Graph] = None,
    ) -> None:
        self._gd: Optional[Graph] = gd
        self._gd_plus = gd_plus
        self._csr: Optional["CSRAdjacency"] = None
        self._csr_plus: Optional["CSRAdjacency"] = None
        self._fingerprint = fingerprint
        #: the shared-memory segment backing the CSR artefacts, when the
        #: preparation was exported to / attached from the zero-copy
        #: store (:mod:`repro.engine.shm`); None for private buffers
        self._shared: Optional["SharedGraphSegment"] = None
        #: how many times GD+ was actually constructed (0 or 1)
        self.plus_builds = 0
        #: how many CSR freezes happened (at most one per graph)
        self.csr_builds = 0
        #: how many content hashes were computed (0 or 1)
        self.fingerprint_builds = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pair(
        cls,
        g1: Graph,
        g2: Graph,
        alpha: float = 1.0,
        flipped: bool = False,
        discrete: bool = False,
        cap: Optional[float] = None,
    ) -> "PreparedGraph":
        """Assemble the difference graph from ``(G1, G2)`` and wrap it."""
        from repro.core.difference import assemble_difference

        return cls(
            assemble_difference(
                g1, g2, alpha=alpha, flipped=flipped,
                discrete=discrete, cap=cap,
            )
        )

    # ------------------------------------------------------------------
    # the owned artefacts
    # ------------------------------------------------------------------
    @property
    def gd(self) -> Graph:
        """The difference graph itself (never copied).

        Shared-memory preparations start without the dict-of-dicts form
        and reconstruct it from the zero-copy CSR on first access — the
        CSR stores weights bit-exact, so the reconstruction fingerprints
        identically to the graph the owner originally froze.
        """
        if self._gd is None:
            if self._csr is None:
                raise InputMismatchError(
                    "preparation has neither a graph nor a CSR to "
                    "reconstruct it from"
                )
            from repro.engine.shm import graph_from_csr
            from repro.obs.trace import current_tracer

            with current_tracer().span("prepare.gd_from_shared"):
                self._gd = graph_from_csr(self._csr)
        return self._gd

    @property
    def gd_plus(self) -> Graph:
        """``GD+`` — built on first access, shared forever after."""
        if self._gd_plus is None:
            if self._gd is None and self._csr_plus is not None:
                # Shared-memory preparation: GD+ reconstructs straight
                # from its own CSR view, skipping the GD round-trip.
                from repro.engine.shm import graph_from_csr
                from repro.obs.trace import current_tracer

                with current_tracer().span("prepare.gd_from_shared"):
                    self._gd_plus = graph_from_csr(self._csr_plus)
                self.plus_builds += 1
                return self._gd_plus
            from repro.obs.trace import current_tracer

            with current_tracer().span("prepare.gd_plus"):
                self._gd_plus = self.gd.positive_part()
            self.plus_builds += 1
        return self._gd_plus

    @property
    def cached_fingerprint(self) -> Optional[str]:
        """The fingerprint if already known — never triggers hashing.

        Hot per-step paths (the streaming engine) attach provenance only
        when the identity is already paid for.
        """
        return self._fingerprint

    @property
    def fingerprint(self) -> str:
        """Content hash of ``GD`` (stable across processes/sessions)."""
        if self._fingerprint is None:
            from repro.graph.sparse import graph_fingerprint
            from repro.obs.trace import current_tracer

            with current_tracer().span("prepare.fingerprint"):
                self._fingerprint = graph_fingerprint(self.gd)
            self.fingerprint_builds += 1
        return self._fingerprint

    def csr(self) -> Optional["CSRAdjacency"]:
        """Frozen CSR of ``GD``, or None when SciPy is unavailable."""
        from repro.graph.sparse import CSRAdjacency, scipy_available

        if self._csr is None and scipy_available():
            from repro.obs.trace import current_tracer

            with current_tracer().span("prepare.csr"):
                self._csr = CSRAdjacency.from_graph(self.gd)
            self.csr_builds += 1
        return self._csr

    def csr_plus(self) -> Optional["CSRAdjacency"]:
        """Frozen CSR of ``GD+``, or None when SciPy is unavailable."""
        from repro.graph.sparse import CSRAdjacency, scipy_available

        if self._csr_plus is None and scipy_available():
            gd_plus = self.gd_plus
            from repro.obs.trace import current_tracer

            with current_tracer().span("prepare.csr"):
                self._csr_plus = CSRAdjacency.from_graph(gd_plus)
            self.csr_builds += 1
        return self._csr_plus

    def csr_of(self, graph: Graph) -> Optional["CSRAdjacency"]:
        """The frozen CSR matching *graph* — ``GD`` or ``GD+``.

        Callers holding "whichever graph the user passed" (``dcs_greedy``
        accepts either the difference graph or its positive part) use
        this instead of guessing; pairing a graph with the other
        graph's adjacency would poison every kernel downstream.
        Returns None when SciPy is unavailable.
        """
        if graph is self._gd_plus:
            return self.csr_plus()
        if graph is self._gd:
            return self.csr()
        raise InputMismatchError(
            "graph is neither this preparation's GD nor its GD+"
        )

    def require_csr(self, positive: bool = True) -> "CSRAdjacency":
        """Like :meth:`csr_plus`/:meth:`csr` but SciPy absence raises."""
        from repro.graph.sparse import _require_scipy

        _require_scipy()
        found = self.csr_plus() if positive else self.csr()
        assert found is not None  # _require_scipy guarantees availability
        return found

    # ------------------------------------------------------------------
    # shared-memory integration
    # ------------------------------------------------------------------
    @property
    def shm_segment(self) -> Optional["SharedGraphSegment"]:
        """The backing shared segment, if any (diagnostic/accounting)."""
        return self._shared

    @property
    def shared_attached(self) -> bool:
        """True when this preparation *attached* an existing segment.

        The registry charges attached preparations zero cells — the
        owner (exporter) already pays for the host's single copy.
        """
        return self._shared is not None and not self._shared.created

    def adopt_segment(self, segment: "SharedGraphSegment") -> None:
        """Swap the CSR artefacts for zero-copy views on *segment*.

        Called by the exporting owner right after
        :meth:`~repro.engine.shm.SharedGraphStore.export`: the private
        CSR buffers are dropped in favour of the shared copy, so pickling
        this preparation (batch pool workers) ships an attach stub and
        the host holds exactly one copy of the arrays.
        """
        self._shared = segment
        self._csr = segment.csr()
        self._csr_plus = segment.csr_plus()

    def release(self) -> bool:
        """Drop the shared segment mapping (registry eviction hook).

        Decrements the segment refcount; the drain-to-zero closer
        unlinks the name.  Returns True when this release unlinked.
        No-op for private (non-shared) preparations.
        """
        if self._shared is None:
            return False
        segment, self._shared = self._shared, None
        return segment.close()

    def __reduce__(self) -> Tuple[Any, ...]:
        """Shared preparations pickle as an attach stub (segment name).

        Batch pool workers unpickle by mapping the same segment instead
        of deserialising private copies of the buffers.  Private
        preparations reduce to their constructor arguments — the CSR
        caches are derived state the receiver rebuilds on demand.
        """
        if self._shared is not None:
            from repro.engine.shm import _rebuild_prepared

            return (_rebuild_prepared, (self._shared.name,))
        return (
            PreparedGraph,
            (self._gd, self._fingerprint, self._gd_plus),
        )

    # ------------------------------------------------------------------
    # safety
    # ------------------------------------------------------------------
    def check_owns(self, gd: Graph) -> None:
        """Guard against pairing a preparation with a different graph.

        Identity, not content: preparations are shared precisely to
        avoid re-reading the content, and within one process the same
        input *is* the same object.
        """
        if gd is not self._gd and gd is not self._gd_plus:
            raise InputMismatchError(
                "prepared context was built from a different graph object"
            )

    def __repr__(self) -> str:
        plus = "built" if self._gd_plus is not None else "lazy"
        if self._gd is None:
            shared = self._shared.name if self._shared is not None else "?"
            return f"<PreparedGraph shared={shared} gd=lazy gd_plus={plus}>"
        return (
            f"<PreparedGraph n={self._gd.num_vertices} "
            f"m={self._gd.num_edges} gd_plus={plus} "
            f"csr_builds={self.csr_builds}>"
        )
