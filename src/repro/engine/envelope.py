"""SolveRequest / SolveResult — the one typed result envelope.

Every delivery layer used to shape its own answers: the CLI printed
from ``DCSADResult``/``DCSGAResult`` attributes, the batch executor
hand-rolled JSON dicts per query kind, the streaming engine had its
``SolveOutcome`` and the monitor its ``ContrastAlert`` — four shapes
for the same two solvers.  This module is the common envelope:

* :class:`SolveRequest` — *what to solve*: the measure
  (``average_degree`` → DCSGreedy / Algorithm 2, ``affinity`` → NewSEA
  / Algorithm 5), the backend name, ``k``/``strategy`` for top-k, and
  the solver tolerances.  One canonical ``params()`` dict doubles as
  cache-key material.
* :class:`SolveResult` — *what came out*: the answer subset (raw vertex
  objects for in-process consumers, sorted string labels in JSON), the
  headline ``density`` (average-degree contrast or affinity objective),
  the Theorem 2 ``beta`` certificate where it applies, the KKT /
  positive-clique status where *that* applies, measure-specific
  ``detail``, plus ``timings`` and ``provenance`` that are excluded
  from the canonical JSON (so byte-identity across serial / pooled /
  cached executions is a property of the *answer*, not the wall clock).
* :func:`solve` — run a request against a
  :class:`~repro.engine.prepared.PreparedGraph`, reusing its shared
  ``GD+`` and frozen CSR adjacencies.

JSON layout of :meth:`SolveResult.payload` (also the canonical bytes)::

    {"kind": "dcsad" | "dcsga",
     "measure": "average_degree" | "affinity",
     "params": {...},                  # canonical solver parameters
     "vertices": ["a", "b", ...],      # the (best) answer, sorted
     "density": 3.25,                  # headline score
     "beta": 1.08 | null,              # Theorem 2 certificate (DCSAD)
     "kkt": {"is_kkt_point": true,     # DCSGA status (null for DCSAD)
             "is_positive_clique": true} | null,
     "detail": {...}}                  # winner / embedding / top-k ...
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional

from repro.engine.prepared import PreparedGraph
from repro.engine.registry import resolve_backend

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.graph.graph import Vertex

#: Contrast measures and the algorithm each selects.
MEASURES = ("average_degree", "affinity")

#: measure <-> the CLI / batch query-kind vocabulary.
KIND_OF_MEASURE = {"average_degree": "dcsad", "affinity": "dcsga"}
MEASURE_OF_KIND = {kind: measure for measure, kind in KIND_OF_MEASURE.items()}


@dataclass(frozen=True)
class SolveRequest:
    """A typed DCS solve order, independent of delivery layer."""

    measure: str
    backend: str = "python"
    k: int = 1
    strategy: str = "vertices"
    tol_scale: float = 1e-2
    seed: int = 0
    #: report the KKT / positive-clique status of affinity answers
    #: (skipped by per-step streaming solves to keep the hot path lean)
    check_kkt: bool = True

    def __post_init__(self) -> None:
        if self.measure not in MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; expected one of {MEASURES}"
            )
        if self.k <= 0:
            raise ValueError("k must be positive")

    @property
    def kind(self) -> str:
        """The query-kind name (``dcsad``/``dcsga``) of this measure."""
        return KIND_OF_MEASURE[self.measure]

    @classmethod
    def from_params(cls, kind: str, params: Dict[str, Any]) -> "SolveRequest":
        """Build a request from a batch-layer ``solve_params()`` dict."""
        if kind not in MEASURE_OF_KIND:
            raise ValueError(f"unknown query kind {kind!r}")
        return cls(
            measure=MEASURE_OF_KIND[kind],
            backend=params.get("backend", "python"),
            k=params.get("k", 1),
            strategy=params.get("strategy", "vertices"),
            tol_scale=params.get("tol_scale", 1e-2),
        )

    def params(self) -> Dict[str, Any]:
        """Canonical parameter dict (mirrors the batch cache identity)."""
        out: Dict[str, Any] = {
            "kind": self.kind,
            "backend": self.backend,
            "k": self.k,
            "tol_scale": self.tol_scale,
        }
        if self.measure == "average_degree":
            out["strategy"] = self.strategy
        return out


@dataclass
class SolveResult:
    """One solved request: raw objects for callers, canonical JSON out."""

    measure: str
    params: Dict[str, Any]
    subset: FrozenSet["Vertex"]
    density: float
    beta: Optional[float] = None
    kkt: Optional[Dict[str, bool]] = None
    embedding: Optional[Dict["Vertex", float]] = None
    detail: Dict[str, Any] = field(default_factory=dict)
    #: flat ``solve_seconds`` always; ``phases`` (name → self-time
    #: seconds) when the solve ran under a recording tracer
    timings: Dict[str, Any] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return KIND_OF_MEASURE[self.measure]

    @property
    def vertices(self) -> List[str]:
        """The answer's vertex labels, sorted (the JSON form)."""
        return sorted(str(v) for v in self.subset)

    def payload(self) -> Dict[str, Any]:
        """The JSON-ready *answer* — no timings, no provenance."""
        return {
            "kind": self.kind,
            "measure": self.measure,
            "params": dict(self.params),
            "vertices": self.vertices,
            "density": self.density,
            "beta": self.beta,
            "kkt": dict(self.kkt) if self.kkt is not None else None,
            "detail": self.detail,
        }

    def canonical_json(self) -> str:
        """Byte-stable identity of the answer (sorted keys, no noise)."""
        return json.dumps(self.payload(), sort_keys=True)

    def to_record(self) -> Dict[str, Any]:
        """The full record: answer + timings + provenance."""
        record = self.payload()
        record["timings"] = dict(self.timings)
        record["provenance"] = dict(self.provenance)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_record(), sort_keys=True)


def _embedding_json(x: Dict[Any, float]) -> Dict[str, float]:
    return {str(u): w for u, w in sorted(x.items(), key=lambda kv: str(kv[0]))}


def solve(request: SolveRequest, prepared: PreparedGraph) -> SolveResult:
    """Run *request* on a prepared difference graph.

    All preparation flows through *prepared*: the positive part is
    built at most once and the frozen CSR adjacencies are handed to any
    CSR-capable backend — a paired DCSAD+DCSGA workload on one graph
    pays for one ``GD+`` and one CSR freeze, total.

    When a recording tracer is active (``repro --profile``/``--json``,
    the batch workers, the service solve route), the whole call runs
    under a root ``solve`` span and ``timings`` gains the derived
    per-phase breakdown: ``timings["phases"]`` maps phase name →
    self-time seconds (see :func:`repro.obs.trace.phase_totals`), whose
    values sum to the root span's duration.  With the default no-op
    tracer, ``timings`` stays the flat ``{"solve_seconds": ...}``.
    """
    from repro.obs.trace import current_tracer

    tracer = current_tracer()
    backend = resolve_backend(request.backend)
    start = time.perf_counter()
    with tracer.span(
        "solve", kind=request.kind, backend=backend.name
    ) as root:
        if request.measure == "average_degree":
            result = _solve_average_degree(request, prepared)
        else:
            result = _solve_affinity(request, prepared)
    result.timings["solve_seconds"] = time.perf_counter() - start
    if not tracer.is_noop:
        from repro.obs.trace import phase_totals

        # The breakdown rides in timings — out-of-band like
        # solve_seconds, so answer identity (payload/provenance) stays
        # byte-identical between traced and untraced runs.
        result.timings["phases"] = phase_totals([root])
    result.provenance["backend"] = backend.name
    fingerprint = prepared.cached_fingerprint
    if fingerprint is not None:
        result.provenance["fingerprint"] = fingerprint
    return result


def _solve_average_degree(
    request: SolveRequest, prepared: PreparedGraph
) -> SolveResult:
    from repro.core.dcsad import dcs_greedy
    from repro.core.topk import top_k_dcsad

    if request.k <= 1:
        answer = dcs_greedy(
            prepared.gd,
            backend=request.backend,
            seed=request.seed,
            prepared=prepared,
        )
        return SolveResult(
            measure=request.measure,
            params=request.params(),
            subset=frozenset(answer.subset),
            density=answer.density,
            beta=answer.ratio_bound,
            detail={
                "winner": answer.winner,
                "connected": answer.connected,
                "candidate_densities": dict(answer.candidate_densities),
            },
        )
    ranked = top_k_dcsad(
        prepared.gd,
        request.k,
        strategy=request.strategy,
        backend=request.backend,
    )
    best = ranked[0] if ranked else None
    return SolveResult(
        measure=request.measure,
        params=request.params(),
        subset=frozenset(best.subset) if best else frozenset(),
        density=best.objective if best else 0.0,
        detail={
            "results": [
                {
                    "rank": item.rank,
                    "vertices": sorted(str(v) for v in item.subset),
                    "density": item.objective,
                }
                for item in ranked
            ]
        },
    )


def _solve_affinity(
    request: SolveRequest, prepared: PreparedGraph
) -> SolveResult:
    from repro.core.newsea import new_sea
    from repro.core.topk import top_k_dcsga

    backend = resolve_backend(request.backend)
    gd_plus = prepared.gd_plus
    adjacency = (
        prepared.csr_plus() if backend.supports_shared_adjacency else None
    )
    if request.k <= 1:
        answer = new_sea(
            gd_plus,
            tol_scale=request.tol_scale,
            backend=request.backend,
            adjacency=adjacency,
        )
        kkt: Optional[Dict[str, bool]] = None
        if request.check_kkt:
            from repro.core.kkt import is_kkt_point

            kkt = {
                "is_kkt_point": is_kkt_point(
                    gd_plus, answer.x, tol=request.tol_scale
                ),
                "is_positive_clique": answer.is_positive_clique,
            }
        return SolveResult(
            measure=request.measure,
            params=request.params(),
            subset=frozenset(answer.support),
            density=answer.objective,
            kkt=kkt,
            embedding=dict(answer.x),
            detail={
                "embedding": _embedding_json(answer.x),
                "is_positive_clique": answer.is_positive_clique,
                "initializations": answer.initializations,
                "expansion_errors": answer.expansion_errors,
            },
        )
    ranked = top_k_dcsga(
        gd_plus,
        request.k,
        tol_scale=request.tol_scale,
        backend=request.backend,
        adjacency=adjacency,
    )
    best = ranked[0] if ranked else None
    return SolveResult(
        measure=request.measure,
        params=request.params(),
        subset=frozenset(best.subset) if best else frozenset(),
        density=best.objective if best else 0.0,
        embedding=dict(best.embedding) if best and best.embedding else None,
        detail={
            "results": [
                {
                    "rank": item.rank,
                    "vertices": sorted(str(v) for v in item.subset),
                    "density": item.objective,
                    "embedding": _embedding_json(item.embedding or {}),
                }
                for item in ranked
            ]
        },
    )
