"""Zero-copy shared-memory graph store for multi-worker serving.

A prepared difference graph is frozen data: two CSR adjacencies (``GD``
and ``GD+``) whose ``indptr``/``indices``/``data`` arrays never change
after construction.  The multi-worker service topology
(:mod:`repro.service.cluster`) wants N solver processes on one host to
serve the *same* graph without N copies of those buffers and without N
redundant prepare passes.  This module provides that substrate:

* :meth:`SharedGraphStore.export` lays a :class:`PreparedGraph`'s frozen
  arrays out in one ``multiprocessing.shared_memory`` segment, named by
  the graph's content fingerprint — export is idempotent per host (a
  concurrent exporter of the same fingerprint attaches the winner's
  segment instead of failing, waiting for its ready flag — the magic,
  written after every payload byte — so a mid-copy segment is never
  served).
* :meth:`SharedGraphStore.attach` maps an existing segment and wraps the
  arrays back into read-only :class:`CSRAdjacency` views — no copy, no
  rebuild; :func:`shared_prepared` goes one step further and yields a
  :class:`SharedPreparedGraph` that solvers consume exactly like a
  locally-built preparation.
* ``CSRAdjacency.__reduce__`` / ``PreparedGraph.__reduce__`` detect
  shm-backed arrays and pickle as an *attach stub* (segment name only),
  so batch pool workers ride the same segment instead of re-pickling
  megabytes of buffers.

Lifecycle is explicit and counted.  Each segment carries an in-segment
reference count, adjusted under ``flock`` on the mapping's fd (tmpfs-
backed on Linux, so kernel-arbitrated across processes): create sets it
to 1, every attach increments, every :meth:`SharedGraphSegment.close`
decrements and the closer that drains the count to zero unlinks the
name.  POSIX semantics make this safe against in-flight readers —
unlink removes the *name*; existing mappings stay valid until their
processes close.  A supervisor-side sweep (:func:`unlink_segment` over
the announce log) is the crash backstop: workers killed with SIGKILL
never decrement, and the sweep reclaims their segments at shutdown.

Python < 3.13 wrinkle: ``SharedMemory`` registers every mapping (create
*and* attach) with the ``resource_tracker``, which unlinks registered
segments when its client process exits — destroying segments siblings
still serve from.  Refcounted ownership is incompatible with that, so
segments here are never tracker-registered (see :func:`_untrack`); the
explicit lifecycle plus the supervisor sweep replace it entirely.
"""

from __future__ import annotations

import atexit
import json
import pickle
import secrets
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly on import
    import numpy as np
except ImportError:  # pragma: no cover - container ships NumPy
    np = None  # type: ignore[assignment]

try:  # pragma: no cover - platform-gated (POSIX only)
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

try:  # pragma: no cover - exercised implicitly on import
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - stdlib always ships it on 3.8+
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

from repro.engine.prepared import PreparedGraph
from repro.exceptions import BackendUnavailableError
from repro.graph.graph import Graph
from repro.graph.sparse import CSRAdjacency, scipy_available

if shared_memory is not None:

    class _QuietSharedMemory(shared_memory.SharedMemory):
        """SharedMemory whose destructor tolerates live buffer views.

        ``SharedMemory.close`` raises ``BufferError`` while numpy views
        still reference the mapping; the stdlib ``__del__`` lets that
        escape as "Exception ignored" noise at GC / interpreter
        shutdown.  Solver views legitimately outlive a close (POSIX
        keeps the mapping valid), so swallow it — the OS reclaims the
        mapping at process exit either way.
        """

        def __del__(self) -> None:
            try:
                super().__del__()
            except BufferError:
                pass

        def unlink(self) -> None:
            """Destroy the name without touching the resource tracker.

            Our segments are deliberately *not* tracker-registered (see
            :func:`_untrack`); the stdlib ``unlink`` sends an unbalanced
            unregister that the tracker logs as a KeyError.  Go straight
            to ``shm_unlink`` instead.
            """
            if getattr(shared_memory, "_USE_POSIX", False) and self._name:
                shared_memory._posixshmem.shm_unlink(self._name)
            else:  # pragma: no cover - Windows
                super().unlink()

else:  # pragma: no cover - stdlib always ships shared_memory on 3.8+
    _QuietSharedMemory = None  # type: ignore[assignment,misc]

_MAGIC = b"RPSHMG01"
_MAGIC_OFF = 0
_REFCOUNT_OFF = 8
_HEADER_LEN_OFF = 16
_HEADER_OFF = 24
_ALIGN = 64

#: The magic doubles as the segment's *ready flag*: export writes it
#: only after every payload byte (refcount, header, vertices, CSR
#: arrays) has landed, so an attacher that maps the segment mid-copy
#: polls for it instead of silently reading a partially-populated
#: graph.  A segment that never becomes ready within the timeout (a
#: crashed exporter's leftovers) raises ``ValueError`` from ``attach``.
_READY_TIMEOUT = 5.0
_READY_POLL = 0.002


def shm_available() -> bool:
    """Whether zero-copy graph sharing can be used in this environment."""
    return shared_memory is not None and np is not None and scipy_available()


def _require_shm() -> None:
    if not shm_available():
        raise BackendUnavailableError(
            "shared-memory graph store requires multiprocessing."
            "shared_memory, NumPy and SciPy"
        )


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _untrack(name: str) -> None:
    """Drop *name* from this process's resource tracker.

    Before Python 3.13 the tracker unlinks every registered segment when
    its registering process exits — an attacher exiting would tear down
    a segment other processes still serve from, and with refcounted
    ownership even the creator's registration mis-fires (tracker
    processes are shared across forks, so one worker's exit-time cleanup
    clobbers its siblings).  Segments here are therefore *never*
    tracker-registered: create and attach both unregister immediately,
    and the supervisor sweep (:func:`unlink_segment` over the announce
    log) is the crash backstop.
    """
    if resource_tracker is None:  # pragma: no cover - stdlib ships it
        return
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker variance across 3.x
        pass


def _adjust_refcount(shm: "shared_memory.SharedMemory", delta: int) -> int:
    """Atomically add *delta* to the in-segment refcount; return it.

    The lock is ``flock`` on the shared mapping's fd when the platform
    exposes one (Linux tmpfs does); elsewhere the count is still
    maintained but races are tolerated — the supervisor sweep remains
    the authoritative cleanup.
    """
    fd = getattr(shm, "_fd", -1)
    locked = False
    if fcntl is not None and isinstance(fd, int) and fd >= 0:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            locked = True
        except OSError:  # pragma: no cover - exotic filesystems
            pass
    try:
        (count,) = struct.unpack_from("<Q", shm.buf, _REFCOUNT_OFF)
        count = max(0, int(count) + delta)
        struct.pack_into("<Q", shm.buf, _REFCOUNT_OFF, count)
        return count
    finally:
        if locked:
            fcntl.flock(fd, fcntl.LOCK_UN)


def _csr_from_arrays(
    vertices: List[Any],
    indptr: "np.ndarray",
    indices: "np.ndarray",
    data: "np.ndarray",
) -> CSRAdjacency:
    """Wrap raw CSR arrays into a :class:`CSRAdjacency` without copying.

    The scipy constructor is bypassed (attribute assignment on an empty
    matrix) because some versions re-validate or down-cast index arrays,
    which would silently copy the shared views back into private memory.
    """
    from scipy import sparse as scipy_sparse

    n = len(vertices)
    matrix = scipy_sparse.csr_matrix((n, n), dtype=np.float64)
    matrix.data = data
    matrix.indices = indices
    matrix.indptr = indptr
    return CSRAdjacency(vertices, matrix)


class SharedGraphSegment:
    """One mapped shared-memory segment holding a prepared graph.

    Created by :meth:`SharedGraphStore.export` (``created=True``) or
    :meth:`SharedGraphStore.attach`; both hold one unit of the segment's
    refcount until :meth:`close`.
    """

    def __init__(
        self,
        name: str,
        shm: "shared_memory.SharedMemory",
        header: Dict[str, Any],
        created: bool,
    ) -> None:
        self.name = name
        self.shm = shm
        self.header = header
        self.created = created
        self.fingerprint: str = header["fingerprint"]
        self._closed = False
        self._vertices: Optional[List[Any]] = None
        self._csr: Optional[CSRAdjacency] = None
        self._csr_plus: Optional[CSRAdjacency] = None

    # -- views ---------------------------------------------------------
    def _array(self, key: str) -> "np.ndarray":
        spec = self.header["arrays"][key]
        view = np.frombuffer(
            self.shm.buf,
            dtype=np.dtype(spec["dtype"]),
            count=int(spec["count"]),
            offset=int(spec["offset"]),
        )
        view.flags.writeable = False
        return view

    @property
    def vertices(self) -> List[Any]:
        """The shared vertex order (unpickled once per segment)."""
        if self._vertices is None:
            spec = self.header["vertices"]
            start = int(spec["offset"])
            end = start + int(spec["length"])
            self._vertices = pickle.loads(bytes(self.shm.buf[start:end]))
        return self._vertices

    def csr(self) -> CSRAdjacency:
        """Read-only zero-copy ``GD`` adjacency over the segment."""
        if self._csr is None:
            self._csr = _csr_from_arrays(
                self.vertices,
                self._array("gd_indptr"),
                self._array("gd_indices"),
                self._array("gd_data"),
            )
            self._csr.shm_source = (self.name, "gd")
        return self._csr

    def csr_plus(self) -> CSRAdjacency:
        """Read-only zero-copy ``GD+`` adjacency over the segment."""
        if self._csr_plus is None:
            self._csr_plus = _csr_from_arrays(
                self.vertices,
                self._array("plus_indptr"),
                self._array("plus_indices"),
                self._array("plus_data"),
            )
            self._csr_plus.shm_source = (self.name, "plus")
        return self._csr_plus

    def refcount(self) -> int:
        """Current in-segment reference count (diagnostic)."""
        (count,) = struct.unpack_from("<Q", self.shm.buf, _REFCOUNT_OFF)
        return int(count)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> bool:
        """Release this mapping's refcount unit; unlink when drained.

        Returns True when this close unlinked the segment.  Safe to call
        more than once.  The OS mapping itself is released best-effort:
        live numpy views keep the exported buffer alive (``BufferError``
        from ``SharedMemory.close``), in which case the mapping is left
        to the garbage collector — the *name* is already gone, so no
        leak survives the process.
        """
        if self._closed:
            return False
        self._closed = True
        remaining = _adjust_refcount(self.shm, -1)
        unlinked = False
        if remaining == 0:
            try:
                self.shm.unlink()
                unlinked = True
            except FileNotFoundError:  # pragma: no cover - already swept
                pass
        try:
            self.shm.close()
        except BufferError:
            # In-flight solver views still reference the buffer; POSIX
            # keeps the mapping valid after unlink, and GC finishes the
            # close once the views die.
            pass
        return unlinked

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"refs={self.refcount()}"
        return f"<SharedGraphSegment {self.name} {state}>"


class SharedGraphStore:
    """Per-process manager of exported/attached graph segments.

    Segment names are ``{prefix}_{fingerprint[:16]}`` — the prefix keys
    one *cluster* (all workers of one ``repro serve`` share it), so
    leak audits and shutdown sweeps can enumerate exactly their own
    segments in ``/dev/shm`` without touching unrelated tenants.
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        _require_shm()
        self.prefix = prefix if prefix else f"rp{secrets.token_hex(4)}"
        self._lock = threading.Lock()
        self._segments: Dict[str, SharedGraphSegment] = {}
        self.exports = 0
        self.attaches = 0

    def segment_name(self, fingerprint: str) -> str:
        """Deterministic segment name for a content fingerprint."""
        # Short enough for macOS' PSHMNAMLEN (31 incl. the leading /).
        return f"{self.prefix}_{fingerprint[:16]}"

    # -- export --------------------------------------------------------
    def export(self, prepared: PreparedGraph) -> SharedGraphSegment:
        """Lay *prepared*'s frozen arrays out in a shared segment.

        Idempotent per fingerprint: a second export (same process or a
        racing sibling worker) attaches the existing segment.
        """
        fingerprint = prepared.fingerprint
        name = self.segment_name(fingerprint)
        with self._lock:
            cached = self._segments.get(name)
            if cached is not None:
                return cached
        csr = prepared.require_csr(positive=False)
        csr_plus = prepared.require_csr(positive=True)
        vertices_blob = pickle.dumps(csr.vertices, protocol=4)

        arrays: List[Tuple[str, "np.ndarray"]] = [
            ("gd_indptr", csr.indptr),
            ("gd_indices", csr.indices),
            ("gd_data", csr.data),
            ("plus_indptr", csr_plus.indptr),
            ("plus_indices", csr_plus.indices),
            ("plus_data", csr_plus.data),
        ]
        specs: Dict[str, Dict[str, Any]] = {}
        # Header length depends on offsets which depend on header length;
        # compute with placeholder offsets first, then fix the layout.
        header: Dict[str, Any] = {
            "fingerprint": fingerprint,
            "n": len(csr.vertices),
            "vertices": {"offset": 0, "length": len(vertices_blob)},
            "arrays": specs,
        }
        for key, array in arrays:
            specs[key] = {
                "dtype": array.dtype.str,
                "count": int(array.size),
                "offset": 0,
            }
        # Offsets are fixed-width formatted so the serialized header
        # length does not change when the real offsets are patched in.
        blob = json.dumps(header).encode("utf-8")
        pad = 24  # digits reserved per patched offset
        cursor = _align(_HEADER_OFF + len(blob) + (len(arrays) + 1) * pad)
        header["vertices"]["offset"] = cursor
        cursor = _align(cursor + len(vertices_blob))
        for key, array in arrays:
            specs[key]["offset"] = cursor
            cursor = _align(cursor + array.nbytes)
        blob = json.dumps(header).encode("utf-8")
        total = cursor

        try:
            shm = _QuietSharedMemory(name=name, create=True, size=total)
            _untrack(name)
        except FileExistsError:
            # A sibling worker won the race (or a previous generation
            # left the segment); serve from theirs.  ``attach`` waits
            # for the winner's ready flag, so a mid-copy segment is
            # never served — and raises ValueError if it never becomes
            # ready (crashed exporter), which callers treat as
            # "sharing unavailable for this graph".
            return self.attach(name)
        # Payload first, magic (the ready flag) last: a racing attacher
        # of the same fingerprint polls for the magic, so it can never
        # map a partially-populated graph.
        struct.pack_into("<Q", shm.buf, _REFCOUNT_OFF, 1)
        struct.pack_into("<Q", shm.buf, _HEADER_LEN_OFF, len(blob))
        shm.buf[_HEADER_OFF:_HEADER_OFF + len(blob)] = blob
        start = int(header["vertices"]["offset"])
        shm.buf[start:start + len(vertices_blob)] = vertices_blob
        for key, array in arrays:
            spec = specs[key]
            dest = np.frombuffer(
                shm.buf,
                dtype=array.dtype,
                count=int(array.size),
                offset=int(spec["offset"]),
            )
            dest[:] = array
        struct.pack_into("<8s", shm.buf, _MAGIC_OFF, _MAGIC)
        segment = SharedGraphSegment(name, shm, header, created=True)
        with self._lock:
            raced = self._segments.setdefault(name, segment)
            if raced is not segment:  # pragma: no cover - defensive
                segment.close()
                return raced
        self.exports += 1
        return segment

    # -- attach --------------------------------------------------------
    def attach(self, name: str) -> SharedGraphSegment:
        """Map an existing segment by name (cached per store).

        Raises FileNotFoundError when the segment does not exist (the
        owner evicted and unlinked it) and ValueError when it never
        becomes ready (not a graph segment, or a crashed exporter left
        it half-written); callers fall back to a rebuild either way.
        """
        with self._lock:
            cached = self._segments.get(name)
            if cached is not None:
                return cached
        shm = _QuietSharedMemory(name=name)
        _untrack(name)
        # The exporter writes the magic last: poll for it so a racing
        # attach never reads a segment whose arrays are still landing.
        deadline = time.monotonic() + _READY_TIMEOUT
        while bytes(shm.buf[_MAGIC_OFF:_MAGIC_OFF + 8]) != _MAGIC:
            if time.monotonic() >= deadline:
                shm.close()
                raise ValueError(
                    f"segment {name!r} is not a ready repro graph segment"
                )
            time.sleep(_READY_POLL)
        (header_len,) = struct.unpack_from("<Q", shm.buf, _HEADER_LEN_OFF)
        blob = bytes(shm.buf[_HEADER_OFF:_HEADER_OFF + int(header_len)])
        header = json.loads(blob.decode("utf-8"))
        _adjust_refcount(shm, 1)
        segment = SharedGraphSegment(name, shm, header, created=False)
        with self._lock:
            raced = self._segments.setdefault(name, segment)
            if raced is not segment:
                segment.close()
                return raced
        self.attaches += 1
        return segment

    def attach_fingerprint(self, fingerprint: str) -> SharedGraphSegment:
        """Attach by content fingerprint under this store's prefix."""
        return self.attach(self.segment_name(fingerprint))

    # -- lifecycle -----------------------------------------------------
    def release(self, name: str) -> bool:
        """Close and forget one segment; True when that unlinked it."""
        with self._lock:
            segment = self._segments.pop(name, None)
        if segment is None:
            return False
        return segment.close()

    def close_all(self) -> int:
        """Close every held segment; returns how many were unlinked."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
        return sum(1 for segment in segments if segment.close())

    def held(self) -> List[str]:
        """Names of currently mapped segments (diagnostic)."""
        with self._lock:
            return sorted(self._segments)

    def __repr__(self) -> str:
        return (
            f"<SharedGraphStore prefix={self.prefix} "
            f"held={len(self.held())} exports={self.exports} "
            f"attaches={self.attaches}>"
        )


# ----------------------------------------------------------------------
# prepared-graph integration
# ----------------------------------------------------------------------
class SharedPreparedGraph(PreparedGraph):
    """A :class:`PreparedGraph` served from a shared segment.

    CSR artefacts are zero-copy views; the dict-of-dicts ``GD``/``GD+``
    (needed only by the pure-python backend and the average-degree
    baseline) are reconstructed lazily from the CSR arrays — the CSR
    stores weights bit-exact, so the reconstruction fingerprints
    identically to the original graph.
    """

    __slots__ = ()

    def __init__(self, segment: SharedGraphSegment) -> None:
        super().__init__(
            gd=None,  # type: ignore[arg-type]  # materialised lazily
            fingerprint=segment.fingerprint,
        )
        self._shared = segment
        self._csr = segment.csr()
        self._csr_plus = segment.csr_plus()


def shared_prepared(segment: SharedGraphSegment) -> SharedPreparedGraph:
    """Wrap an attached segment as a solver-ready preparation."""
    return SharedPreparedGraph(segment)


def graph_from_csr(csr: CSRAdjacency) -> Graph:
    """Reconstruct the dict-of-dicts :class:`Graph` from a frozen CSR.

    Inverse of :meth:`CSRAdjacency.from_graph` up to edge insertion
    order; weights are bit-exact (float64 both sides), so the result
    fingerprints identically to the graph that was frozen.
    """
    graph = Graph()
    graph.add_vertices(csr.vertices)
    indptr, indices, data = csr.indptr, csr.indices, csr.data
    vertices = csr.vertices
    for i in range(len(vertices)):
        u = vertices[i]
        for position in range(int(indptr[i]), int(indptr[i + 1])):
            j = int(indices[position])
            if j > i:
                graph.add_edge(u, vertices[j], float(data[position]))
    return graph


# ----------------------------------------------------------------------
# pickle-attach support (batch workers riding segments)
# ----------------------------------------------------------------------
_process_store: Optional[SharedGraphStore] = None
_process_store_lock = threading.Lock()


def process_store() -> SharedGraphStore:
    """This process's attach cache for pickled shm stubs.

    Unpickling a shm-backed :class:`CSRAdjacency`/:class:`PreparedGraph`
    attaches through one per-process store so a pool worker maps each
    segment once however many queries reference it.  An ``atexit`` hook
    drains the refcounts on clean worker exit; SIGKILLed processes are
    reclaimed by the supervisor sweep.
    """
    global _process_store
    with _process_store_lock:
        if _process_store is None:
            _process_store = SharedGraphStore(prefix="rp_pickle")
            atexit.register(_drain_process_store)
        return _process_store


def _drain_process_store() -> None:
    global _process_store
    with _process_store_lock:
        store, _process_store = _process_store, None
    if store is not None:
        store.close_all()


def _rebuild_csr(name: str, which: str) -> CSRAdjacency:
    """Unpickle hook: attach *name* and return its GD or GD+ view."""
    segment = process_store().attach(name)
    return segment.csr_plus() if which == "plus" else segment.csr()


def _rebuild_prepared(name: str) -> PreparedGraph:
    """Unpickle hook: attach *name* as a full preparation."""
    return shared_prepared(process_store().attach(name))


# ----------------------------------------------------------------------
# host-level audits
# ----------------------------------------------------------------------
def list_segments(prefix: str) -> List[str]:
    """Names under ``/dev/shm`` starting with *prefix* (Linux audit).

    Returns an empty list on platforms without a visible shm filesystem
    — tests gate on that, production cleanup never depends on it.
    """
    import os

    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return sorted(
        entry for entry in os.listdir(root) if entry.startswith(prefix)
    )


def unlink_segment(name: str) -> bool:
    """Best-effort unlink by name — the supervisor's crash backstop."""
    if shared_memory is None:  # pragma: no cover - stdlib ships it
        return False
    try:
        shm = _QuietSharedMemory(name=name)
    except FileNotFoundError:
        return False
    _untrack(name)
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - concurrent sweep
        return False
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - no views here
            pass
    return True
