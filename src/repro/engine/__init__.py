"""repro.engine — the unified solver engine seam.

Three pieces, consumed by every delivery layer (CLI, batch service,
streaming engine, monitor):

* the **backend registry** (:mod:`repro.engine.registry`): solvers
  dispatch through :func:`resolve_backend` capability lookups instead
  of ``if backend == ...`` ladders; new backends plug in with
  :func:`register_backend`.
* the **prepared-graph context** (:mod:`repro.engine.prepared`):
  :class:`PreparedGraph` owns a difference graph's positive part,
  frozen CSR adjacencies and content fingerprint, built lazily exactly
  once and shared across every query on that graph.
* the **result envelope** (:mod:`repro.engine.envelope`):
  :class:`SolveRequest` / :class:`SolveResult` with one canonical JSON
  layout (measure, params, vertices, density, Theorem 2 ``beta``, KKT
  status) plus out-of-band timings and provenance.

Quickstart::

    from repro.engine import PreparedGraph, SolveRequest, solve

    prepared = PreparedGraph(gd)
    report = solve(SolveRequest(measure="average_degree"), prepared)
    report.vertices, report.density, report.beta
"""

from repro.engine import backends as _backends  # noqa: F401  (registers builtins)
from repro.engine.envelope import (
    KIND_OF_MEASURE,
    MEASURE_OF_KIND,
    MEASURES,
    SolveRequest,
    SolveResult,
    solve,
)
from repro.engine.prepared import PreparedGraph
from repro.engine.registry import (
    Backend,
    BackendLike,
    PeelBackend,
    SolverBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)

__all__ = [
    "Backend",
    "BackendLike",
    "PeelBackend",
    "SolverBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "PreparedGraph",
    "SolveRequest",
    "SolveResult",
    "solve",
    "MEASURES",
    "KIND_OF_MEASURE",
    "MEASURE_OF_KIND",
]
