"""The pluggable backend registry — one dispatch seam for every solver.

Before this module existed, every solver entry point carried its own
``if backend == "sparse": ...`` ladder, and adding a backend (a
numba/JIT kernel set, a sharded remote executor, an instrumented test
double) meant editing ten call sites.  Now a backend is an object:

* subclass :class:`SolverBackend` and override the capabilities you
  provide (``peel``, ``shrink``/``expand`` — the coordinate-descent
  stages — ``seacd``, ``refine``, ``new_sea``, ``vertex_solver``,
  ``initialization_plan``, ``replicator``, ``mean_graph``);
* call :func:`register_backend` with a name (and optional aliases);
* every layer — core solvers, CLI, batch service, streaming engine —
  immediately accepts the new name.

Lookups are dict reads, not string ladders.  Error taxonomy:

* an unregistered name raises
  :class:`~repro.exceptions.UnknownBackendError` (a ``ValueError``);
* a registered backend whose dependency is missing (``"sparse"``
  without SciPy) raises
  :class:`~repro.exceptions.BackendUnavailableError` at lookup time —
  or, with :func:`resolve_backend`'s *fallback*, degrades gracefully to
  the named substitute;
* a backend that lacks the requested capability raises
  :class:`~repro.exceptions.BackendCapabilityError` (a ``ValueError``).

The built-in backends (``python`` with alias ``heap``,
``segment_tree``, ``sparse``, and ``native`` with alias ``numba``) are
registered when :mod:`repro.engine.backends` is imported, which the
package ``__init__`` guarantees.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.exceptions import (
    BackendCapabilityError,
    BackendFallbackWarning,
    BackendUnavailableError,
    InputMismatchError,
    UnknownBackendError,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports (no cycles at runtime)
    from repro.affinity.replicator import ReplicatorResult
    from repro.core.coordinate_descent import CDResult
    from repro.core.expansion import ExpansionStep
    from repro.core.initialization import InitializationPlan
    from repro.core.newsea import DCSGAResult, VertexSolver
    from repro.core.refinement import RefinementResult
    from repro.core.seacd import SEACDResult
    from repro.graph.graph import Graph, Vertex
    from repro.graph.sparse import CSRAdjacency
    from repro.peeling.greedy import PeelResult

from typing import Literal

#: The solver-backend vocabulary shared by every layer that solves
#: (monitor, stream, batch, CLI).  Peeling additionally accepts the
#: priority-structure names of :data:`PeelBackend`.
Backend = Literal["python", "sparse"]
#: Peeling accepts the two pure-Python priority structures by name.
PeelBackend = Literal["python", "heap", "segment_tree", "sparse"]

#: Anything the dispatch seam accepts: a registered name or an instance.
BackendLike = Union[str, "SolverBackend"]


class SolverBackend:
    """Base class / protocol of one compute backend.

    Capabilities default to :class:`BackendCapabilityError`; a backend
    overrides the ones it implements.  ``available()`` gates optional
    dependencies — an unavailable backend stays *registered* (so its
    name is known and the error message is precise) but cannot be
    resolved.

    ``supports_shared_adjacency`` declares that the backend's kernels
    can consume a prebuilt :class:`~repro.graph.sparse.CSRAdjacency`
    (the :class:`~repro.engine.prepared.PreparedGraph` sharing
    contract); on other backends passing ``adjacency=`` is an error,
    enforced centrally by :meth:`check_adjacency`.
    """

    #: Registry name (set on the subclass).
    name: str = ""
    #: Whether ``adjacency=`` / CSR sharing means anything here.
    supports_shared_adjacency: bool = False

    # -- availability --------------------------------------------------
    def available(self) -> bool:
        """Whether the backend's dependencies are importable."""
        return True

    def missing_reason(self) -> str:
        """Why :meth:`available` is False (shown in lookup errors)."""
        return f"backend {self.name!r} is unavailable"

    def require_available(self) -> None:
        """Raise :class:`BackendUnavailableError` if unusable here."""
        if not self.available():
            raise BackendUnavailableError(self.missing_reason())

    def warm(self) -> None:
        """Pay any one-time per-process startup cost now (JIT
        compilation, kernel caches) so queries never do.

        A no-op for the interpreted backends; long-lived hosts — batch
        pool initializers, ``repro serve`` — call this on every backend
        they are about to serve."""

    # -- capability introspection -------------------------------------
    def has_capability(self, capability: str) -> bool:
        """Whether this backend overrides *capability* (vs. the base
        class's raising stub)."""
        mine = getattr(type(self), capability, None)
        return mine is not getattr(SolverBackend, capability, None)

    def require_capabilities(self, *capabilities: str) -> None:
        """Fail fast (at construction time, not mid-stream) when a
        long-lived consumer needs capabilities this backend lacks."""
        for capability in capabilities:
            if not self.has_capability(capability):
                raise BackendCapabilityError(self.name, capability)

    # -- shared-adjacency contract ------------------------------------
    def check_adjacency(self, adjacency: Optional["CSRAdjacency"]) -> None:
        """The one home of the old thrice-duplicated validation:
        ``adjacency=`` is only meaningful on a CSR-capable backend."""
        if adjacency is not None and not self.supports_shared_adjacency:
            raise InputMismatchError(
                "adjacency is only meaningful with a CSR-capable backend "
                f"(backend={self.name!r} does not share adjacencies)"
            )

    # -- capabilities --------------------------------------------------
    def peel(
        self,
        graph: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "PeelResult":
        """Algorithm 1: greedy peeling by minimum induced degree."""
        raise BackendCapabilityError(self.name, "peel")

    def shrink(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        subset: Iterable["Vertex"],
        tol: float,
        max_iterations: int = 100_000,
    ) -> "CDResult":
        """The 2-coordinate-descent shrink stage (Section V-B)."""
        raise BackendCapabilityError(self.name, "shrink")

    def expand(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        objective: Optional[float] = None,
    ) -> "ExpansionStep":
        """The SEA expansion step (add vertices with gradient > lambda)."""
        raise BackendCapabilityError(self.name, "expand")

    def seacd(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        max_cd_iterations: int = 100_000,
    ) -> "SEACDResult":
        """Algorithm 3: shrink/expansion loop to a global KKT point."""
        raise BackendCapabilityError(self.name, "seacd")

    def refine(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_cd_iterations: int = 100_000,
    ) -> "RefinementResult":
        """Algorithm 4: merge to a positive-clique support."""
        raise BackendCapabilityError(self.name, "refine")

    def new_sea(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        plan: Optional["InitializationPlan"] = None,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "DCSGAResult":
        """Algorithm 5: smart-initialised SEACD + refinement."""
        raise BackendCapabilityError(self.name, "new_sea")

    def vertex_solver(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "VertexSolver":
        """A per-vertex SEACD+Refine closure for all-inits drivers."""
        raise BackendCapabilityError(self.name, "vertex_solver")

    def initialization_plan(
        self,
        gd_plus: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "InitializationPlan":
        """Theorem 6 smart-initialisation bounds ``mu_u`` + trial order."""
        raise BackendCapabilityError(self.name, "initialization_plan")

    def replicator(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        rule: str = "objective",
        tol: float = 1e-6,
        max_iterations: int = 100_000,
    ) -> "ReplicatorResult":
        """Replicator dynamics (the original SEA's shrink stage)."""
        raise BackendCapabilityError(self.name, "replicator")

    def mean_graph(self, graphs: List["Graph"]) -> "Graph":
        """Edge-wise mean over the union vertex set (monitor windows)."""
        raise BackendCapabilityError(self.name, "mean_graph")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


# ----------------------------------------------------------------------
# the registry proper
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, SolverBackend] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Idempotently register the built-in backends.

    Importing :mod:`repro.engine.backends` has the side effect of
    registering them; doing it lazily here makes every entry point
    (`get_backend`, `backend_names`) safe whatever import reached the
    registry first.
    """
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        from repro.engine import backends  # noqa: F401  (import = register)


def register_backend(
    backend: SolverBackend,
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> SolverBackend:
    """Register *backend* under ``backend.name`` (plus *aliases*).

    Re-registering a taken name requires ``replace=True`` — accidental
    shadowing of a built-in should be loud.  Returns the backend so the
    call can be used as an expression.
    """
    _ensure_builtins()
    if not backend.name:
        raise ValueError("backend must set a non-empty name")
    names = (backend.name,) + tuple(aliases)
    if not replace:
        taken = [name for name in names if name in _REGISTRY]
        if taken:
            raise ValueError(
                f"backend name(s) already registered: {', '.join(taken)}; "
                "pass replace=True to shadow"
            )
    for name in names:
        _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> SolverBackend:
    """Remove one registry entry (alias-by-alias); returns the backend."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise UnknownBackendError(name, known=tuple(_REGISTRY))
    return _REGISTRY.pop(name)


def backend_names() -> Tuple[str, ...]:
    """Every registered name (aliases included), sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_backend(name: str, require: bool = True) -> SolverBackend:
    """Look up a backend by registered name.

    Unknown names raise :class:`UnknownBackendError`; with *require*
    (the default), an unavailable backend (missing dependency) raises
    :class:`BackendUnavailableError` here rather than deep inside a
    solve.
    """
    _ensure_builtins()
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, known=tuple(_REGISTRY)) from None
    if require:
        backend.require_available()
    return backend


_trace_hook = None


def _instrumented(backend: SolverBackend) -> SolverBackend:
    """Wrap *backend* for tracing iff the ambient tracer records.

    The hook import is deferred and cached: :mod:`repro.obs` depends on
    this module, so the registry cannot import it at module scope, and
    the no-op path must stay cheap — after the first call this is one
    function call plus a :mod:`contextvars` read.
    """
    global _trace_hook
    if _trace_hook is None:
        from repro.obs.backend import maybe_wrap

        _trace_hook = maybe_wrap
    return _trace_hook(backend)


def resolve_backend(
    backend: BackendLike,
    fallback: Optional[str] = None,
) -> SolverBackend:
    """Resolve a name *or* instance to a usable backend.

    *fallback* names the backend to degrade to when the requested one
    is registered but unavailable (e.g. ``"sparse"`` without SciPy →
    ``"python"``); without it, unavailability raises.  Unknown names
    always raise — a typo should never silently fall back.

    When a recording tracer is active in the current context (see
    :func:`repro.obs.trace.recording`), the resolved backend comes back
    wrapped in a :class:`~repro.obs.backend.TracingBackend`, so every
    capability call records a ``backend.<capability>`` span.  With the
    default no-op tracer the backend is returned untouched.
    """
    if isinstance(backend, SolverBackend):
        backend.require_available()
        return _instrumented(backend)
    found = get_backend(backend, require=False)
    if not found.available():
        if fallback is None:
            found.require_available()
        pair = (backend, fallback)
        if pair not in _FALLBACK_WARNED:
            # Warn once per (requested, substitute) pair per process:
            # graceful degradation should be visible, not noisy.
            _FALLBACK_WARNED.add(pair)
            warnings.warn(
                f"backend {backend!r} is unavailable "
                f"({found.missing_reason()}); falling back to "
                f"{fallback!r}",
                BackendFallbackWarning,
                stacklevel=2,
            )
        return _instrumented(get_backend(fallback))
    return _instrumented(found)


#: (requested, fallback) pairs already warned about in this process.
_FALLBACK_WARNED: Set[Tuple[str, Optional[str]]] = set()
