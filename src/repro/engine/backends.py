"""The built-in :class:`~repro.engine.registry.SolverBackend` instances.

Importing this module registers them:

========== ============== =================================================
name       aliases        implementation
========== ============== =================================================
python     heap           the dict-of-dicts reference kernels (ground
                          truth in the test suite; stdlib-only)
segment_tree               Algorithm 1 peeling over a min segment tree —
                          peel capability only
sparse                    the vectorised CSR/NumPy kernels of
                          :mod:`repro.core.sparse_solvers`; available
                          only when SciPy imports
========== ============== =================================================

Every method body is a lazy import of the kernel it wraps — the
registry stays import-light and free of cycles (the core modules import
the registry to dispatch, the backends import the core modules to
implement).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.engine.registry import SolverBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.affinity.replicator import ReplicatorResult
    from repro.core.coordinate_descent import CDResult
    from repro.core.expansion import ExpansionStep
    from repro.core.initialization import InitializationPlan
    from repro.core.newsea import DCSGAResult, VertexSolver
    from repro.core.refinement import RefinementResult
    from repro.core.seacd import SEACDResult
    from repro.graph.graph import Graph, Vertex
    from repro.graph.sparse import CSRAdjacency
    from repro.peeling.greedy import PeelResult


class PythonBackend(SolverBackend):
    """The pure-Python reference implementation of every capability."""

    name = "python"

    def peel(
        self,
        graph: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "PeelResult":
        from repro.peeling.greedy import _peel_heap

        self.check_adjacency(adjacency)
        return _peel_heap(graph)

    def shrink(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        subset: Iterable["Vertex"],
        tol: float,
        max_iterations: int = 100_000,
    ) -> "CDResult":
        from repro.core.coordinate_descent import coordinate_descent

        return coordinate_descent(
            graph, x, subset=subset, tol=tol, max_iterations=max_iterations
        )

    def expand(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        objective: Optional[float] = None,
    ) -> "ExpansionStep":
        from repro.core.expansion import expansion_step

        return expansion_step(graph, x, objective=objective)

    def seacd(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        max_cd_iterations: int = 100_000,
    ) -> "SEACDResult":
        from repro.core.seacd import _seacd_python

        return _seacd_python(
            graph,
            x0,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            max_cd_iterations=max_cd_iterations,
        )

    def refine(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_cd_iterations: int = 100_000,
    ) -> "RefinementResult":
        from repro.core.refinement import _refine_python

        return _refine_python(
            graph,
            x0,
            tol_scale=tol_scale,
            max_cd_iterations=max_cd_iterations,
        )

    def new_sea(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        plan: Optional["InitializationPlan"] = None,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "DCSGAResult":
        from repro.core.newsea import _new_sea_python

        self.check_adjacency(adjacency)
        return _new_sea_python(
            gd_plus,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            plan=plan,
        )

    def vertex_solver(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "VertexSolver":
        from repro.core.newsea import _default_solver

        self.check_adjacency(adjacency)
        return _default_solver(tol_scale, max_expansions)

    def initialization_plan(
        self,
        gd_plus: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "InitializationPlan":
        from repro.core.initialization import _smart_initialization_plan_python

        self.check_adjacency(adjacency)
        return _smart_initialization_plan_python(gd_plus)

    def replicator(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        rule: str = "objective",
        tol: float = 1e-6,
        max_iterations: int = 100_000,
    ) -> "ReplicatorResult":
        from repro.affinity.replicator import _replicator_python

        return _replicator_python(graph, x0, rule, tol, max_iterations)

    def mean_graph(self, graphs: List["Graph"]) -> "Graph":
        from repro.core.monitor import _mean_graph_python

        return _mean_graph_python(graphs)


class SegmentTreeBackend(SolverBackend):
    """Algorithm 1 over a min segment tree — a peel-only backend.

    Exists to keep the paper's suggested priority structure benchmarkable
    (`bench_ablation_peeling_backend.py`); asking it for any other
    capability raises :class:`~repro.exceptions.BackendCapabilityError`.
    """

    name = "segment_tree"

    def peel(
        self,
        graph: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "PeelResult":
        from repro.peeling.greedy import _peel_segment_tree

        self.check_adjacency(adjacency)
        return _peel_segment_tree(graph)


class SparseBackend(SolverBackend):
    """The vectorised CSR/NumPy kernel set; requires SciPy.

    Capabilities accept a prebuilt
    :class:`~repro.graph.sparse.CSRAdjacency` (``adjacency=``) so
    callers running many solves on one graph — the batch layer through
    :class:`~repro.engine.prepared.PreparedGraph` — freeze it once.
    """

    name = "sparse"
    supports_shared_adjacency = True

    def available(self) -> bool:
        from repro.graph.sparse import scipy_available

        return scipy_available()

    def missing_reason(self) -> str:
        return (
            "backend='sparse' requires SciPy, which is not installed; "
            "use the pure-Python backend instead"
        )

    def peel(
        self,
        graph: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "PeelResult":
        from repro.peeling.greedy import _peel_sparse

        return _peel_sparse(graph, adjacency=adjacency)

    def shrink(
        self,
        graph: "Graph",
        x: Dict["Vertex", float],
        subset: Iterable["Vertex"],
        tol: float,
        max_iterations: int = 100_000,
    ) -> "CDResult":
        import numpy as np

        from repro.core.coordinate_descent import CDResult
        from repro.core.sparse_solvers import coordinate_descent_csr
        from repro.graph.sparse import CSRAdjacency

        adj = CSRAdjacency.from_graph(graph)
        vector = adj.embedding_vector(x)
        members = np.fromiter(
            sorted(adj.index[v] for v in subset), dtype=np.int64
        )
        vector, _, objective, iterations, converged = coordinate_descent_csr(
            adj, vector, members, tol, max_iterations, need_dx=False
        )
        return CDResult(
            x=adj.embedding_dict(vector),
            objective=objective,
            iterations=iterations,
            converged=converged,
        )

    def seacd(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        max_cd_iterations: int = 100_000,
    ) -> "SEACDResult":
        from repro.core.sparse_solvers import seacd_csr

        return seacd_csr(
            graph,
            x0,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            max_cd_iterations=max_cd_iterations,
        )

    def refine(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        tol_scale: float = 1e-2,
        max_cd_iterations: int = 100_000,
    ) -> "RefinementResult":
        from repro.core.refinement import RefinementResult
        from repro.core.sparse_solvers import refine_csr

        x, objective, merges, initial = refine_csr(
            graph,
            x0,
            tol_scale=tol_scale,
            max_cd_iterations=max_cd_iterations,
        )
        return RefinementResult(
            x=x,
            objective=objective,
            merges=merges,
            initial_objective=initial,
        )

    def new_sea(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        plan: Optional["InitializationPlan"] = None,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "DCSGAResult":
        from repro.core.sparse_solvers import new_sea_csr

        return new_sea_csr(
            gd_plus,
            tol_scale=tol_scale,
            max_expansions=max_expansions,
            plan=plan,
            adjacency=adjacency,
        )

    def vertex_solver(
        self,
        gd_plus: "Graph",
        tol_scale: float = 1e-2,
        max_expansions: int = 10_000,
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "VertexSolver":
        from repro.core.sparse_solvers import csr_vertex_solver

        return csr_vertex_solver(
            gd_plus, tol_scale, max_expansions, adjacency=adjacency
        )

    def initialization_plan(
        self,
        gd_plus: "Graph",
        adjacency: Optional["CSRAdjacency"] = None,
    ) -> "InitializationPlan":
        from repro.core.initialization import _smart_initialization_plan_sparse

        return _smart_initialization_plan_sparse(gd_plus, adjacency)

    def replicator(
        self,
        graph: "Graph",
        x0: Dict["Vertex", float],
        rule: str = "objective",
        tol: float = 1e-6,
        max_iterations: int = 100_000,
    ) -> "ReplicatorResult":
        from repro.affinity.replicator import _replicator_sparse

        return _replicator_sparse(graph, x0, rule, tol, max_iterations)

    def mean_graph(self, graphs: List["Graph"]) -> "Graph":
        from repro.core.monitor import _mean_graph_sparse

        return _mean_graph_sparse(graphs)


#: The instances the package registers on import.
PYTHON = PythonBackend()
SEGMENT_TREE = SegmentTreeBackend()
SPARSE = SparseBackend()

register_backend(PYTHON, aliases=("heap",))
register_backend(SEGMENT_TREE)
register_backend(SPARSE)
